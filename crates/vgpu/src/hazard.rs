//! Static hazard detection for stream schedules.
//!
//! CUDA orders commands within a stream, but commands in *different* streams
//! run in whatever order the engines allow unless an event edge
//! ([`CommandKind::RecordEvent`] → [`CommandKind::WaitEvent`]) forces one.
//! A pipeline that forgets such an edge usually still "works" in a timing
//! simulator — the bug is silent data corruption, not a crash. This module
//! finds those bugs before simulation.
//!
//! The analysis builds the **happens-before** relation over all commands —
//! the transitive closure of stream program order plus event edges — then
//! audits every named device buffer (see [`Command::reads`] /
//! [`Command::writes`]):
//!
//! * [`Hazard::UseBeforeDef`] — a read with **no** write of the buffer
//!   ordered before it. The classic fission mistake: a compute kernel
//!   launched in one stream while the H2D copy of its input is still in
//!   flight in another.
//! * [`Hazard::WriteRace`] — two writes to the same buffer with no ordering
//!   between them (WAW).
//! * [`Hazard::ReadWriteRace`] — a read that *is* preceded by some write but
//!   races with another, unordered write (RAW/WAR in either resolution).
//!
//! Only buffers with at least one declared writer are audited, so reads of
//! externally initialized buffers (a D2H of a buffer no modelled command
//! produced) never false-positive. The detector is exact for the declared
//! access sets: it flags a pair if and only if no happens-before path
//! orders it.

use crate::des::{CommandKind, Schedule};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Position of a command in a schedule, for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CmdRef {
    /// Stream index.
    pub stream: usize,
    /// Position within the stream.
    pub index: usize,
    /// The command's label.
    pub label: String,
}

impl fmt::Display for CmdRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "`{}` (stream {}, cmd {})", self.label, self.stream, self.index)
    }
}

/// A data race the happens-before analysis found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Hazard {
    /// A read no write of the buffer happens-before.
    UseBeforeDef {
        /// The racing buffer.
        buffer: String,
        /// The reading command.
        read: CmdRef,
        /// The (unordered or later) write that should have fed it.
        write: CmdRef,
    },
    /// Two unordered writes to the same buffer.
    WriteRace {
        /// The racing buffer.
        buffer: String,
        /// One write.
        first: CmdRef,
        /// The other.
        second: CmdRef,
    },
    /// A read ordered after one write but racing with another.
    ReadWriteRace {
        /// The racing buffer.
        buffer: String,
        /// The reading command.
        read: CmdRef,
        /// The unordered write.
        write: CmdRef,
    },
}

impl fmt::Display for Hazard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Hazard::UseBeforeDef { buffer, read, write } => write!(
                f,
                "use-before-def of buffer \"{buffer}\": {read} may run before {write} \
                 completes; add an event edge (record/wait) between their streams"
            ),
            Hazard::WriteRace { buffer, first, second } => write!(
                f,
                "write-write race on buffer \"{buffer}\": {first} and {second} are \
                 unordered"
            ),
            Hazard::ReadWriteRace { buffer, read, write } => write!(
                f,
                "read-write race on buffer \"{buffer}\": {read} is unordered with \
                 {write}"
            ),
        }
    }
}

impl std::error::Error for Hazard {}

/// Bitset of command ids, one word per 64 commands.
struct IdSet(Vec<u64>);

impl IdSet {
    fn new(n: usize) -> Self {
        IdSet(vec![0; n.div_ceil(64)])
    }

    fn insert(&mut self, i: usize) {
        self.0[i / 64] |= 1 << (i % 64);
    }

    fn contains(&self, i: usize) -> bool {
        self.0[i / 64] & (1 << (i % 64)) != 0
    }

    fn union_in(&mut self, other: &IdSet) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a |= b;
        }
    }
}

/// Find every hazard in `schedule`, in deterministic order (by buffer name,
/// then command position). An empty result means the schedule's declared
/// buffer accesses are fully ordered.
///
/// A schedule whose event edges form a cycle cannot execute at all; the
/// analysis returns no hazards for it and leaves the diagnosis to the
/// simulator's deadlock detection.
pub fn find_hazards(schedule: &Schedule) -> Vec<Hazard> {
    // ---- flatten ----------------------------------------------------------
    let mut ids: Vec<(usize, usize)> = Vec::new(); // id -> (stream, index)
    let mut id_of: Vec<Vec<usize>> = Vec::new(); // [stream][index] -> id
    for (s, cmds) in schedule.streams.iter().enumerate() {
        let mut row = Vec::with_capacity(cmds.len());
        for i in 0..cmds.len() {
            row.push(ids.len());
            ids.push((s, i));
        }
        id_of.push(row);
    }
    let n = ids.len();
    let cmd = |id: usize| &schedule.streams[ids[id].0][ids[id].1];
    let cref = |id: usize| {
        let (stream, index) = ids[id];
        CmdRef { stream, index, label: cmd(id).label.clone() }
    };

    // ---- happens-before edges ---------------------------------------------
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg: Vec<usize> = vec![0; n];
    let mut records: HashMap<u32, Vec<usize>> = HashMap::new();
    let mut waits: HashMap<u32, Vec<usize>> = HashMap::new();
    for id in 0..n {
        let (s, i) = ids[id];
        if i + 1 < id_of[s].len() {
            succs[id].push(id_of[s][i + 1]);
            indeg[id_of[s][i + 1]] += 1;
        }
        match &cmd(id).kind {
            CommandKind::RecordEvent(e) => records.entry(e.0).or_default().push(id),
            CommandKind::WaitEvent(e) => waits.entry(e.0).or_default().push(id),
            _ => {}
        }
    }
    for (e, recs) in &records {
        if let Some(ws) = waits.get(e) {
            for &r in recs {
                for &w in ws {
                    succs[r].push(w);
                    indeg[w] += 1;
                }
            }
        }
    }

    // ---- transitive closure in topological order --------------------------
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    while let Some(x) = ready.pop() {
        order.push(x);
        for &y in &succs[x] {
            indeg[y] -= 1;
            if indeg[y] == 0 {
                ready.push(y);
            }
        }
    }
    if order.len() < n {
        return Vec::new(); // cyclic event edges: the simulator reports deadlock
    }
    let mut before: Vec<IdSet> = (0..n).map(|_| IdSet::new(n)).collect();
    for &x in &order {
        for &y in &succs[x] {
            // Split-borrow: x != y in a DAG.
            let (src, dst) = if x < y {
                let (a, b) = before.split_at_mut(y);
                (&a[x], &mut b[0])
            } else {
                let (a, b) = before.split_at_mut(x);
                (&b[0], &mut a[y])
            };
            dst.union_in(src);
            dst.insert(x);
        }
    }
    let hb = |a: usize, b: usize| before[b].contains(a);

    // ---- audit each written buffer ----------------------------------------
    let mut buffers: BTreeMap<&str, (Vec<usize>, Vec<usize>)> = BTreeMap::new();
    for id in 0..n {
        for w in &cmd(id).writes {
            buffers.entry(w.as_str()).or_default().0.push(id);
        }
        for r in &cmd(id).reads {
            buffers.entry(r.as_str()).or_default().1.push(id);
        }
    }
    let mut hazards = Vec::new();
    for (buffer, (writers, readers)) in &buffers {
        if writers.is_empty() {
            continue; // nothing modelled produces it: externally initialized
        }
        for (k, &w1) in writers.iter().enumerate() {
            for &w2 in &writers[k + 1..] {
                if !hb(w1, w2) && !hb(w2, w1) {
                    hazards.push(Hazard::WriteRace {
                        buffer: buffer.to_string(),
                        first: cref(w1),
                        second: cref(w2),
                    });
                }
            }
        }
        for &r in readers {
            if !writers.iter().any(|&w| hb(w, r)) {
                hazards.push(Hazard::UseBeforeDef {
                    buffer: buffer.to_string(),
                    read: cref(r),
                    write: cref(writers[0]),
                });
            } else if let Some(&w) = writers.iter().find(|&&w| !hb(w, r) && !hb(r, w)) {
                hazards.push(Hazard::ReadWriteRace {
                    buffer: buffer.to_string(),
                    read: cref(r),
                    write: cref(w),
                });
            }
        }
    }
    hazards
}

/// [`find_hazards`], as a pass/fail gate returning the first hazard.
pub fn check_schedule(schedule: &Schedule) -> Result<(), Hazard> {
    match find_hazards(schedule).into_iter().next() {
        None => Ok(()),
        Some(h) => Err(h),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::{Command, CommandClass, EventId};
    use crate::device::DeviceSpec;
    use crate::kernel::{KernelProfile, LaunchConfig};
    use crate::pcie::HostMemKind;

    const MB: u64 = 1 << 20;

    fn h2d(label: &str) -> Command {
        Command::h2d(label, CommandClass::InputOutput, MB, HostMemKind::Pinned)
    }

    fn d2h(label: &str) -> Command {
        Command::d2h(label, CommandClass::InputOutput, MB, HostMemKind::Pinned)
    }

    fn kern(name: &str) -> Command {
        let spec = DeviceSpec::tesla_c2070();
        let p = KernelProfile::new(name).instr_per_elem(8.0).bytes_read_per_elem(4.0);
        Command::kernel(p, LaunchConfig::for_elements(1 << 18, &spec), 1 << 18)
    }

    #[test]
    fn serial_stream_has_no_hazards() {
        let sched =
            Schedule::serial(vec![h2d("in"), kern("k").reading("in").writing("out"), d2h("out")]);
        assert_eq!(find_hazards(&sched), Vec::new());
    }

    #[test]
    fn compute_before_h2d_completes_is_use_before_def() {
        // The seeded defect class: the kernel launches in stream 1 with no
        // event ordering it after stream 0's input upload.
        let mut sched = Schedule::new();
        let a = sched.add_stream();
        let b = sched.add_stream();
        sched.push(a, h2d("in"));
        sched.push(b, kern("filter").reading("in"));
        let hs = find_hazards(&sched);
        assert_eq!(hs.len(), 1);
        match &hs[0] {
            Hazard::UseBeforeDef { buffer, read, write } => {
                assert_eq!(buffer, "in");
                assert_eq!((read.stream, read.index), (b, 0));
                assert_eq!((write.stream, write.index), (a, 0));
            }
            other => panic!("expected UseBeforeDef, got {other:?}"),
        }
        // The distinct diagnostic names the buffer and prescribes the fix.
        assert!(hs[0].to_string().contains("use-before-def"));
        assert!(hs[0].to_string().contains("record/wait"));
    }

    #[test]
    fn event_edge_resolves_use_before_def() {
        let e = EventId(0);
        let mut sched = Schedule::new();
        let a = sched.add_stream();
        let b = sched.add_stream();
        sched.push(a, h2d("in"));
        sched.push(a, Command::record(e));
        sched.push(b, Command::wait(e));
        sched.push(b, kern("filter").reading("in"));
        assert_eq!(find_hazards(&sched), Vec::new());
    }

    #[test]
    fn happens_before_is_transitive_across_streams() {
        // a --e0--> b --e1--> c: stream c's read is ordered after stream a's
        // write only through the intermediate stream.
        let mut sched = Schedule::new();
        let a = sched.add_stream();
        let b = sched.add_stream();
        let c = sched.add_stream();
        sched.push(a, h2d("in"));
        sched.push(a, Command::record(EventId(0)));
        sched.push(b, Command::wait(EventId(0)));
        sched.push(b, Command::record(EventId(1)));
        sched.push(c, Command::wait(EventId(1)));
        sched.push(c, kern("k").reading("in"));
        assert_eq!(find_hazards(&sched), Vec::new());
    }

    #[test]
    fn unordered_double_upload_is_a_write_race() {
        let mut sched = Schedule::new();
        let a = sched.add_stream();
        let b = sched.add_stream();
        sched.push(a, h2d("buf"));
        sched.push(b, h2d("buf"));
        let hs = find_hazards(&sched);
        assert!(matches!(&hs[0], Hazard::WriteRace { buffer, .. } if buffer == "buf"), "{hs:?}");
    }

    #[test]
    fn ordered_read_racing_a_second_write_is_a_read_write_race() {
        let e = EventId(0);
        let mut sched = Schedule::new();
        let a = sched.add_stream();
        let b = sched.add_stream();
        let c = sched.add_stream();
        sched.push(a, h2d("buf"));
        sched.push(a, Command::record(e));
        sched.push(b, Command::wait(e));
        sched.push(b, kern("k").reading("buf"));
        // A third stream re-uploads the buffer with no ordering at all
        // against the reader (it does race the first write too).
        sched.push(c, h2d("buf"));
        let hs = find_hazards(&sched);
        assert!(hs.iter().any(|h| matches!(h, Hazard::WriteRace { .. })), "{hs:?}");
        assert!(
            hs.iter().any(|h| matches!(
                h,
                Hazard::ReadWriteRace { buffer, .. } if buffer == "buf"
            )),
            "{hs:?}"
        );
    }

    #[test]
    fn reads_of_unwritten_buffers_are_ignored() {
        // D2H of a buffer no modelled command produced (e.g. device-resident
        // results in a hand-built bench schedule) must not false-positive.
        let mut sched = Schedule::new();
        let a = sched.add_stream();
        let b = sched.add_stream();
        sched.push(a, d2h("out0"));
        sched.push(b, d2h("out1"));
        sched.push(b, kern("k").reading("resident"));
        assert_eq!(find_hazards(&sched), Vec::new());
    }

    #[test]
    fn cyclic_event_edges_defer_to_deadlock_detection() {
        let mut sched = Schedule::new();
        let a = sched.add_stream();
        let b = sched.add_stream();
        sched.push(a, Command::wait(EventId(0)));
        sched.push(a, Command::record(EventId(1)));
        sched.push(b, Command::wait(EventId(1)));
        sched.push(b, Command::record(EventId(0)));
        assert_eq!(find_hazards(&sched), Vec::new());
        let sys = crate::GpuSystem::c2070();
        assert!(matches!(sys.simulate(&sched), Err(crate::SimError::Deadlock { .. })));
    }

    #[test]
    fn simulate_rejects_hazardous_schedules_with_check_on() {
        let mut sched = Schedule::new();
        let a = sched.add_stream();
        let b = sched.add_stream();
        sched.push(a, h2d("in"));
        sched.push(b, kern("filter").reading("in"));
        let sys = crate::GpuSystem::c2070();
        let r = sys.simulate(&sched);
        if cfg!(feature = "check") {
            assert!(matches!(r, Err(crate::SimError::Hazard(Hazard::UseBeforeDef { .. }))));
        } else {
            assert!(r.is_ok());
        }
    }
}
