//! Analytic device models.
//!
//! A [`DeviceSpec`] captures the handful of architectural parameters the
//! fusion/fission cost model depends on. The presets mirror the paper's
//! Table II testbed: one Tesla C2070 and a dual quad-core Xeon E5520 host.
//! The same struct models both the GPU and the CPU baseline — the CPU is
//! simply a device with few, fast, latency-optimized "SMs" and no PCIe link
//! in front of it, which is all Fig. 4(a) needs.

/// Architectural parameters of one (simulated) compute device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Human-readable device name (appears in harness output headers).
    pub name: &'static str,
    /// Number of streaming multiprocessors (GPU) or cores (CPU).
    pub sm_count: u32,
    /// Scalar lanes per SM (GPU) or per-core superscalar width (CPU).
    pub cores_per_sm: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Sustained instructions per lane-cycle (issue efficiency).
    pub ipc: f64,
    /// Device (global/system) memory bandwidth in GB/s.
    pub mem_bw_gbps: f64,
    /// Device memory capacity in bytes.
    pub mem_capacity: u64,
    /// Fixed kernel launch overhead in seconds.
    pub launch_overhead_s: f64,
    /// Resident threads per SM needed to reach peak issue rate (latency
    /// hiding). Below this the device runs proportionally slower.
    pub latency_hiding_threads: u32,
    /// Maximum resident threads per SM (occupancy ceiling).
    pub max_threads_per_sm: u32,
    /// Maximum resident CTAs per SM (the second occupancy ceiling; 8 on
    /// Fermi). Launching small CTAs caps residency at
    /// `max_ctas_per_sm * threads_per_cta`, which is why the paper's
    /// half-thread configuration ("no stream (new)", Fig. 12) is slower even
    /// on huge inputs.
    pub max_ctas_per_sm: u32,
    /// Maximum threads per CTA the device accepts.
    pub max_threads_per_cta: u32,
    /// Register budget per thread before the backend spills to memory.
    pub max_regs_per_thread: u32,
    /// 32-bit registers in each SM's register file. Occupancy is capped at
    /// `regfile_per_sm / regs_per_thread` resident threads per SM — the
    /// second way register pressure costs performance (§III-C): before a
    /// kernel ever spills, heavy bodies already reduce residency below the
    /// latency-hiding requirement.
    pub regfile_per_sm: u32,
    /// Number of DMA copy engines (2 on the C2070: simultaneous H2D + D2H).
    pub copy_engines: u32,
}

impl DeviceSpec {
    /// Bytes of one logical table element (the paper works in 32-bit
    /// integers and floats throughout §V). Reports derive their
    /// `input_bytes` numerator from this when no explicit row width is
    /// known, so throughput figures across benches share one definition.
    pub const ELEMENT_BYTES: f64 = 4.0;

    /// Peak instruction throughput in instructions/second.
    pub fn peak_ips(&self) -> f64 {
        self.sm_count as f64 * self.cores_per_sm as f64 * self.clock_ghz * 1e9 * self.ipc
    }

    /// Peak memory bandwidth in bytes/second.
    pub fn mem_bw_bytes(&self) -> f64 {
        self.mem_bw_gbps * 1e9
    }

    /// Threads across the whole device needed for full throughput.
    pub fn saturation_threads(&self) -> u64 {
        self.sm_count as u64 * self.latency_hiding_threads as u64
    }

    /// The paper's GPU: NVIDIA Tesla C2070 (Fermi GF100).
    ///
    /// 14 SMs × 32 CUDA cores at 1.15 GHz, 144 GB/s GDDR5, 6 GB, two DMA
    /// engines, 63 registers/thread. `ipc` is set below 1.0 to reflect
    /// sustained (not peak) issue rates on memory-heavy database kernels.
    pub fn tesla_c2070() -> Self {
        DeviceSpec {
            name: "NVIDIA Tesla C2070 (simulated)",
            sm_count: 14,
            cores_per_sm: 32,
            clock_ghz: 1.15,
            ipc: 0.85,
            mem_bw_gbps: 144.0,
            // 6 GB raw, ~5.25 GiB usable with ECC enabled — the paper notes
            // the card "can hold less than 1.5 billion 32-bit integers".
            mem_capacity: 5636 * (1 << 20),
            launch_overhead_s: 7e-6,
            latency_hiding_threads: 1280,
            max_threads_per_sm: 1536,
            max_ctas_per_sm: 8,
            max_threads_per_cta: 1024,
            max_regs_per_thread: 63,
            regfile_per_sm: 32 * 1024,
            copy_engines: 2,
        }
    }

    /// The previous-generation Tesla C1060 (GT200): fewer, simpler cores,
    /// a single copy engine (no simultaneous H2D+D2H), and a larger
    /// register file per thread. Used by the device-sensitivity study.
    pub fn tesla_c1060() -> Self {
        DeviceSpec {
            name: "NVIDIA Tesla C1060 (simulated)",
            sm_count: 30,
            cores_per_sm: 8,
            clock_ghz: 1.296,
            ipc: 0.8,
            mem_bw_gbps: 102.0,
            mem_capacity: 4 * (1u64 << 30),
            launch_overhead_s: 10e-6,
            latency_hiding_threads: 768,
            max_threads_per_sm: 1024,
            max_ctas_per_sm: 8,
            max_threads_per_cta: 512,
            max_regs_per_thread: 124,
            regfile_per_sm: 16 * 1024,
            copy_engines: 1,
        }
    }

    /// A consumer Fermi (GTX 580): more bandwidth and clock than the C2070
    /// but a single copy engine and a small 1.5 GB memory — fission becomes
    /// mandatory much earlier.
    pub fn gtx580() -> Self {
        DeviceSpec {
            name: "NVIDIA GTX 580 (simulated)",
            sm_count: 16,
            cores_per_sm: 32,
            clock_ghz: 1.544,
            ipc: 0.85,
            mem_bw_gbps: 192.0,
            mem_capacity: 1536 * (1u64 << 20),
            launch_overhead_s: 6e-6,
            latency_hiding_threads: 1280,
            max_threads_per_sm: 1536,
            max_ctas_per_sm: 8,
            max_threads_per_cta: 1024,
            max_regs_per_thread: 63,
            regfile_per_sm: 32 * 1024,
            copy_engines: 1,
        }
    }

    /// The paper's CPU baseline: two quad-core Xeon E5520 at 2.27 GHz,
    /// 16 hardware threads (Table II), ~20 GB/s sustained memory bandwidth.
    ///
    /// `cores_per_sm` models superscalar + SIMD issue on scalar-integer
    /// filter loops; `latency_hiding_threads` is 2 (SMT).
    pub fn xeon_e5520_pair() -> Self {
        DeviceSpec {
            name: "2x Intel Xeon E5520 (simulated, 16 threads)",
            sm_count: 8,
            cores_per_sm: 3,
            clock_ghz: 2.27,
            ipc: 0.9,
            mem_bw_gbps: 19.0,
            mem_capacity: 48 * (1 << 30),
            launch_overhead_s: 20e-6,
            latency_hiding_threads: 2,
            max_threads_per_sm: 2,
            max_ctas_per_sm: 2,
            max_threads_per_cta: 1,
            max_regs_per_thread: 16,
            // CPUs rename onto a physical register file far larger than the
            // architectural set; residency is never register-bound.
            regfile_per_sm: 1 << 20,
            copy_engines: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c2070_peak_rates_are_plausible() {
        let g = DeviceSpec::tesla_c2070();
        // 448 cores * 1.15 GHz ~= 515 Ginstr/s scaled by ipc.
        let ips = g.peak_ips();
        assert!(ips > 3e11 && ips < 6e11, "peak ips {ips}");
        assert_eq!(g.mem_bw_bytes(), 144.0e9);
        // Usable capacity (ECC on) sits between 5 GiB and 6 GiB.
        assert!(g.mem_capacity > 5 * (1u64 << 30));
        assert!(g.mem_capacity < 6 * (1u64 << 30));
    }

    #[test]
    fn gpu_outmuscles_cpu_on_throughput() {
        let g = DeviceSpec::tesla_c2070();
        let c = DeviceSpec::xeon_e5520_pair();
        assert!(g.peak_ips() > 5.0 * c.peak_ips());
        assert!(g.mem_bw_gbps > 5.0 * c.mem_bw_gbps);
    }

    #[test]
    fn cpu_saturates_with_few_threads() {
        let c = DeviceSpec::xeon_e5520_pair();
        assert_eq!(c.saturation_threads(), 16);
    }

    #[test]
    fn gpu_needs_thousands_of_threads() {
        let g = DeviceSpec::tesla_c2070();
        assert!(g.saturation_threads() > 10_000);
    }
}
