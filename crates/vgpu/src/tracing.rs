//! Bridge from simulated [`Timeline`]s to the `kfusion-trace` layer.
//!
//! Two paths, one vocabulary:
//!
//! * [`timeline_trace`] converts an executed timeline into a standalone
//!   [`Trace`] value — the handle `Report` carries, what the Gantt renderer
//!   draws, and what benches export as `.trace.json` artifacts.
//! * [`des::simulate`] mirrors the same spans (plus PCIe byte counters)
//!   into the process-global recorder as it commits them, so a traced run
//!   interleaves simulator activity with host-side spans from the rest of
//!   the stack.
//!
//! Track names are shared across both paths (and with the Chrome/Gantt
//! exporters' canonical ordering): `H2D`, `compute`, `D2H`, `host`, plus
//! `sync` for zero-duration event bookkeeping.
//!
//! [`des::simulate`]: crate::des::simulate

use crate::des::{Engine, Span, Timeline};
use kfusion_trace::{Clock, Trace};

/// The trace track a simulated engine records on.
pub fn engine_track(engine: Option<Engine>) -> &'static str {
    match engine {
        Some(Engine::CopyH2D) => "H2D",
        Some(Engine::Compute) => "compute",
        Some(Engine::CopyD2H) => "D2H",
        Some(Engine::Host) => "host",
        None => "sync",
    }
}

fn trace_span(s: &Span, scope: &str) -> kfusion_trace::Span {
    kfusion_trace::Span {
        name: s.label.clone(),
        track: engine_track(s.engine).to_string(),
        lane: s.stream as u32,
        clock: Clock::Sim,
        scope: scope.to_string(),
        start: s.start,
        end: s.end,
    }
}

/// Convert an executed timeline into a standalone [`Trace`] on the
/// simulated clock. Streams become lanes; sync pseudo-commands land on the
/// `sync` track (zero duration, so views that draw busy time skip them and
/// the trace total still equals [`Timeline::total`]).
pub fn timeline_trace(timeline: &Timeline) -> Trace {
    let mut t = Trace::default();
    t.spans.extend(timeline.spans.iter().map(|s| trace_span(s, "")));
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::CommandClass;

    #[test]
    fn tracks_lanes_and_totals_carry_over() {
        let mut tl = Timeline::default();
        for (engine, stream, start, end) in [
            (Some(Engine::CopyH2D), 0, 0.0, 1.0),
            (Some(Engine::Compute), 1, 0.5, 2.0),
            (None, 0, 2.0, 2.0),
        ] {
            tl.spans.push(Span {
                stream,
                index: 0,
                label: "c".into(),
                class: CommandClass::Compute,
                engine,
                start,
                end,
            });
        }
        let t = timeline_trace(&tl);
        assert_eq!(t.spans.len(), 3);
        assert_eq!(t.spans[0].track, "H2D");
        assert_eq!(t.spans[1].lane, 1);
        assert_eq!(t.spans[2].track, "sync");
        assert_eq!(t.total(Clock::Sim), tl.total());
    }
}
