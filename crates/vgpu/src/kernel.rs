//! Roofline kernel cost model.
//!
//! A [`KernelProfile`] describes one CUDA-kernel-equivalent in exactly the
//! terms fusion changes: dynamic instructions per element (from the
//! `kfusion-ir` optimizer — fusion + O3 shrinks this), global-memory bytes
//! touched per element (fusion keeps intermediates in registers — this
//! drops), and per-thread register footprint (fusion *raises* this; past the
//! device budget the model charges spill traffic, which is the paper's limit
//! on fusing too many kernels, §III-C).
//!
//! Kernel time is the classic roofline:
//!
//! ```text
//! t = launch + max(instrs / (peak_ips · u), bytes / (mem_bw · u_mem))
//! ```
//!
//! where `u` is the occupancy-derived utilization — a kernel launched with
//! too few resident threads cannot hide latency, which is what makes the
//! paper's half-resource kernels slower (Fig. 12 "no stream (new)").

use crate::device::DeviceSpec;

/// Bytes of spill traffic charged per spilled register per element
/// (store + reload of a 4-byte slot).
const SPILL_BYTES_PER_REG: f64 = 8.0;

/// Launch geometry of a kernel: how many CTAs of how many threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of cooperative thread arrays (thread blocks).
    pub ctas: u32,
    /// Threads per CTA.
    pub threads_per_cta: u32,
}

impl LaunchConfig {
    /// The library's default geometry for an `n`-element data-parallel
    /// kernel: 256-thread CTAs, enough CTAs to give every SM several
    /// resident CTAs (grid-stride loops above that).
    pub fn for_elements(n: u64, spec: &DeviceSpec) -> Self {
        let threads_per_cta = 256.min(spec.max_threads_per_cta);
        let needed = n.div_ceil(threads_per_cta as u64);
        // Cap the grid at 8 waves of maximal residency; beyond that threads
        // loop. Keeps CTA-count effects realistic for small n.
        let resident =
            (spec.sm_count as u64 * spec.max_threads_per_sm as u64) / threads_per_cta as u64;
        let ctas = needed.min(resident.max(1) * 8).max(1) as u32;
        LaunchConfig { ctas, threads_per_cta }
    }

    /// The same geometry but with half the threads and half the CTAs — the
    /// paper's "no stream (new)" configuration used to share the device
    /// between two concurrent kernels (Fig. 12).
    pub fn halved(self) -> Self {
        LaunchConfig {
            ctas: (self.ctas / 2).max(1),
            threads_per_cta: (self.threads_per_cta / 2).max(32),
        }
    }

    /// Total threads in the launch.
    pub fn total_threads(&self) -> u64 {
        self.ctas as u64 * self.threads_per_cta as u64
    }
}

/// Cost description of one kernel launch, per element.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelProfile {
    /// Kernel name, used in timeline spans and harness output.
    pub name: String,
    /// Dynamic instructions executed per element.
    pub instr_per_elem: f64,
    /// Global-memory bytes read per element.
    pub bytes_read_per_elem: f64,
    /// Global-memory bytes written per element.
    pub bytes_written_per_elem: f64,
    /// Fixed instructions per thread (stage prologues: partition math,
    /// buffer bookkeeping). Fused kernels pay these once, not per fused
    /// operator — the "common computation elimination" benefit (Fig. 7(e)).
    pub fixed_instr_per_thread: f64,
    /// Registers per thread the kernel body needs.
    pub regs_per_thread: u32,
    /// Fraction of peak memory bandwidth this kernel's access pattern
    /// achieves (1.0 = perfectly coalesced streaming; compaction/scatter
    /// kernels sit well below).
    pub mem_efficiency: f64,
}

impl KernelProfile {
    /// A new profile with all costs zero.
    pub fn new(name: impl Into<String>) -> Self {
        KernelProfile {
            name: name.into(),
            instr_per_elem: 0.0,
            bytes_read_per_elem: 0.0,
            bytes_written_per_elem: 0.0,
            fixed_instr_per_thread: 0.0,
            regs_per_thread: 16,
            mem_efficiency: 1.0,
        }
    }

    /// Set dynamic instructions per element.
    pub fn instr_per_elem(mut self, v: f64) -> Self {
        self.instr_per_elem = v;
        self
    }

    /// Set global bytes read per element.
    pub fn bytes_read_per_elem(mut self, v: f64) -> Self {
        self.bytes_read_per_elem = v;
        self
    }

    /// Set global bytes written per element.
    pub fn bytes_written_per_elem(mut self, v: f64) -> Self {
        self.bytes_written_per_elem = v;
        self
    }

    /// Set fixed per-thread instructions.
    pub fn fixed_instr_per_thread(mut self, v: f64) -> Self {
        self.fixed_instr_per_thread = v;
        self
    }

    /// Set the per-thread register footprint.
    pub fn regs_per_thread(mut self, v: u32) -> Self {
        self.regs_per_thread = v;
        self
    }

    /// Set the memory-coalescing efficiency (fraction of peak bandwidth).
    pub fn mem_efficiency(mut self, v: f64) -> Self {
        self.mem_efficiency = v;
        self
    }

    /// Total global-memory traffic for `n` elements, including spill traffic
    /// if the body over-subscribes the register file.
    pub fn traffic_bytes(&self, spec: &DeviceSpec, n: u64) -> f64 {
        let spilled = self.regs_per_thread.saturating_sub(spec.max_regs_per_thread) as f64;
        let spill_bytes = spilled * SPILL_BYTES_PER_REG;
        n as f64 * (self.bytes_read_per_elem + self.bytes_written_per_elem + spill_bytes)
    }

    /// Occupancy-derived utilization of the device's issue bandwidth for a
    /// given launch.
    ///
    /// Residency is the binding constraint: an SM hosts at most
    /// `max_ctas_per_sm` CTAs and `max_threads_per_sm` threads, so small
    /// CTAs cap resident threads below the latency-hiding requirement —
    /// launching with half-size CTAs is slower even on huge grids (the
    /// paper's "no stream (new)" line, Fig. 12). The register file is the
    /// third ceiling: at most `regfile_per_sm / regs_per_thread` threads fit
    /// per SM, so register-heavy fused bodies lose occupancy before they
    /// ever spill (§III-C).
    pub fn utilization(&self, spec: &DeviceSpec, launch: &LaunchConfig) -> f64 {
        let ctas_per_sm = spec
            .max_ctas_per_sm
            .min(spec.max_threads_per_sm / launch.threads_per_cta.max(1))
            .max(1);
        let regfile_cap = (spec.regfile_per_sm / self.regs_per_thread.max(1)).max(1) as u64;
        let resident_cap = spec.sm_count as u64
            * (ctas_per_sm as u64 * launch.threads_per_cta as u64)
                .min(spec.max_threads_per_sm as u64)
                .min(regfile_cap);
        let resident = launch.total_threads().min(resident_cap) as f64;
        let sat = spec.saturation_threads() as f64;
        (resident / sat).min(1.0)
    }

    /// Simulated wall time in seconds for this kernel over `n` elements.
    pub fn time(&self, spec: &DeviceSpec, launch: &LaunchConfig, n: u64) -> f64 {
        let u = self.utilization(spec, launch);
        // Memory latency hiding needs fewer threads than issue-rate hiding;
        // use the square root so underpopulated launches still stream
        // reasonably (matches the gentler small-N rolloff of Fig. 4(a)).
        let u_mem = u.sqrt();
        let instrs = n as f64 * self.instr_per_elem
            + launch.total_threads() as f64 * self.fixed_instr_per_thread;
        let t_compute = instrs / (spec.peak_ips() * u.max(1e-9));
        let t_mem = self.traffic_bytes(spec, n)
            / (spec.mem_bw_bytes() * self.mem_efficiency * u_mem.max(1e-9));
        spec.launch_overhead_s + t_compute.max(t_mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> DeviceSpec {
        DeviceSpec::tesla_c2070()
    }

    fn basic() -> KernelProfile {
        KernelProfile::new("k")
            .instr_per_elem(10.0)
            .bytes_read_per_elem(4.0)
            .bytes_written_per_elem(4.0)
    }

    #[test]
    fn time_scales_roughly_linearly_at_scale() {
        let g = gpu();
        let p = basic();
        let l = LaunchConfig::for_elements(1 << 24, &g);
        let t1 = p.time(&g, &l, 1 << 24);
        let t2 = p.time(&g, &LaunchConfig::for_elements(1 << 25, &g), 1 << 25);
        let ratio = t2 / t1;
        assert!((1.8..2.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn memory_bound_kernel_hits_bandwidth_roof() {
        let g = gpu();
        // 1 instruction but 64 bytes per element: memory bound.
        let p = KernelProfile::new("mem").instr_per_elem(1.0).bytes_read_per_elem(64.0);
        let n = 1u64 << 26;
        let l = LaunchConfig::for_elements(n, &g);
        let t = p.time(&g, &l, n) - g.launch_overhead_s;
        let implied_bw = (n as f64 * 64.0) / t / 1e9;
        assert!(implied_bw <= g.mem_bw_gbps * 1.01, "implied {implied_bw} GB/s");
        assert!(implied_bw >= g.mem_bw_gbps * 0.9);
    }

    #[test]
    fn compute_bound_kernel_hits_issue_roof() {
        let g = gpu();
        let p = KernelProfile::new("alu").instr_per_elem(1000.0).bytes_read_per_elem(4.0);
        let n = 1u64 << 24;
        let l = LaunchConfig::for_elements(n, &g);
        let t = p.time(&g, &l, n) - g.launch_overhead_s;
        let implied_ips = n as f64 * 1000.0 / t;
        assert!((implied_ips / g.peak_ips() - 1.0).abs() < 0.05);
    }

    #[test]
    fn small_launches_are_underutilized() {
        let g = gpu();
        let p = basic();
        // 1024 elements: far fewer threads than needed to saturate.
        let small = LaunchConfig::for_elements(1024, &g);
        assert!(p.utilization(&g, &small) < 0.5);
        // 16M elements: saturated.
        let big = LaunchConfig::for_elements(1 << 24, &g);
        assert!((p.utilization(&g, &big) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn halved_launch_is_slower_when_saturated() {
        let g = gpu();
        let p = basic();
        let n = 1u64 << 20;
        let full = LaunchConfig::for_elements(n, &g);
        let half = full.halved();
        assert!(p.time(&g, &half, n) > p.time(&g, &full, n));
    }

    #[test]
    fn register_pressure_costs_occupancy_before_spilling() {
        let g = gpu();
        let n = 1u64 << 24;
        let l = LaunchConfig::for_elements(n, &g);
        let lean = basic().regs_per_thread(16);
        // 63 regs is within budget (no spill traffic), but 32768/63 = 520
        // resident threads/SM is well under the 1280 latency-hiding needs.
        let heavy = basic().regs_per_thread(g.max_regs_per_thread);
        assert!((lean.utilization(&g, &l) - 1.0).abs() < 1e-9);
        assert!(heavy.utilization(&g, &l) < 0.5);
        assert_eq!(heavy.traffic_bytes(&g, n), lean.traffic_bytes(&g, n));
        assert!(heavy.time(&g, &l, n) > lean.time(&g, &l, n));
    }

    #[test]
    fn register_spill_charges_extra_traffic() {
        let g = gpu();
        let n = 1u64 << 22;
        let fit = basic().regs_per_thread(g.max_regs_per_thread);
        let spill = basic().regs_per_thread(g.max_regs_per_thread + 8);
        assert!(spill.traffic_bytes(&g, n) > fit.traffic_bytes(&g, n));
        let l = LaunchConfig::for_elements(n, &g);
        assert!(spill.time(&g, &l, n) > fit.time(&g, &l, n));
    }

    #[test]
    fn fixed_per_thread_cost_penalizes_more_threads() {
        let g = gpu();
        let p = KernelProfile::new("f").fixed_instr_per_thread(100.0).instr_per_elem(1.0);
        let l1 = LaunchConfig { ctas: 100, threads_per_cta: 256 };
        let l2 = LaunchConfig { ctas: 200, threads_per_cta: 256 };
        let n = 1 << 16;
        assert!(p.time(&g, &l2, n) > p.time(&g, &l1, n));
    }

    #[test]
    fn launch_config_caps_grid() {
        let g = gpu();
        let huge = LaunchConfig::for_elements(1 << 34, &g);
        assert!(huge.ctas < 10_000);
        let tiny = LaunchConfig::for_elements(10, &g);
        assert_eq!(tiny.ctas, 1);
    }

    #[test]
    fn cpu_device_works_in_same_model() {
        let c = DeviceSpec::xeon_e5520_pair();
        let p = basic();
        // 16 threads saturate the CPU.
        let l = LaunchConfig { ctas: 16, threads_per_cta: 1 };
        assert!((p.utilization(&c, &l) - 1.0).abs() < 1e-9);
        let n = 1u64 << 24;
        let t = p.time(&c, &l, n);
        let g = gpu();
        let tg = p.time(&g, &LaunchConfig::for_elements(n, &g), n);
        assert!(t > 2.0 * tg, "GPU should be several x faster: cpu {t} gpu {tg}");
    }
}
