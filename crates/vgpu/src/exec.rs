//! Functional CTA execution on host threads.
//!
//! Simulated kernels still compute *real* results: the relational operators
//! partition their input into CTA-sized chunks and run each chunk's work on
//! a scoped thread pool, mirroring the BSP structure of the CUDA
//! implementations the paper builds on (partition → per-CTA work → global
//! sync → gather). Timing comes from the cost model, not from these threads;
//! this module is purely about producing correct outputs fast enough to test
//! at figure scale.

/// Default number of elements each simulated CTA processes.
pub const DEFAULT_CTA_CHUNK: usize = 64 * 1024;

/// Split `n` items into per-CTA ranges of at most `chunk` items.
pub fn cta_ranges(n: usize, chunk: usize) -> Vec<std::ops::Range<usize>> {
    assert!(chunk > 0, "chunk size must be positive");
    let mut out = Vec::with_capacity(n.div_ceil(chunk));
    let mut start = 0;
    while start < n {
        let end = (start + chunk).min(n);
        out.push(start..end);
        start = end;
    }
    out
}

/// Run `work` over every CTA range of `input` in parallel, collecting each
/// CTA's result in CTA order — the "partition, per-CTA compute, buffer"
/// stages of the paper's multi-stage kernels. The final gather is whatever
/// the caller does with the per-CTA outputs.
///
/// Work runs on scoped threads (one logical worker per available core, CTAs
/// distributed round-robin), so `work` only needs `Sync` borrows.
pub fn par_cta_map<T, R, F>(input: &[T], chunk: usize, work: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let ranges = cta_ranges(input.len(), chunk);
    let n_ctas = ranges.len();
    if n_ctas == 0 {
        return Vec::new();
    }
    kfusion_trace::counter("kfusion_host_morsels_total", n_ctas as u64);
    let workers = std::thread::available_parallelism().map_or(4, |p| p.get()).min(n_ctas);
    if workers <= 1 || n_ctas == 1 {
        return ranges.into_iter().enumerate().map(|(i, r)| work(i, &input[r])).collect();
    }
    let mut results: Vec<Option<R>> = (0..n_ctas).map(|_| None).collect();
    let work = &work;
    let ranges = &ranges;
    std::thread::scope(|scope| {
        for (w, mut slot_chunk) in chunked_slots(&mut results, workers).into_iter().enumerate() {
            scope.spawn(move || {
                for (offset, slot) in slot_chunk.iter_mut().enumerate() {
                    let cta = w + offset * workers;
                    let r = ranges[cta].clone();
                    **slot = Some(work(cta, &input[r]));
                }
            });
        }
    });
    results.into_iter().map(|r| r.expect("all CTAs filled")).collect()
}

/// Partition `slots` into `workers` interleaved views: worker `w` owns slots
/// `w, w+workers, w+2*workers, ...`. Interleaving balances load when CTA
/// costs trend with position (e.g. sorted data).
fn chunked_slots<R>(slots: &mut [Option<R>], workers: usize) -> Vec<Vec<&mut Option<R>>> {
    let mut views: Vec<Vec<&mut Option<R>>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, slot) in slots.iter_mut().enumerate() {
        views[i % workers].push(slot);
    }
    views
}

/// Like [`par_cta_map`] but driven by an element *count* instead of a slice,
/// for callers whose data is columnar (several parallel arrays) rather than
/// one slice. `work(cta, range)` receives the CTA index and its index range.
pub fn par_range_map<R, F>(n: usize, chunk: usize, work: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, std::ops::Range<usize>) -> R + Sync,
{
    let ranges = cta_ranges(n, chunk);
    let n_ctas = ranges.len();
    if n_ctas == 0 {
        return Vec::new();
    }
    kfusion_trace::counter("kfusion_host_morsels_total", n_ctas as u64);
    let workers = std::thread::available_parallelism().map_or(4, |p| p.get()).min(n_ctas);
    if workers <= 1 || n_ctas == 1 {
        return ranges.into_iter().enumerate().map(|(i, r)| work(i, r)).collect();
    }
    let mut results: Vec<Option<R>> = (0..n_ctas).map(|_| None).collect();
    let work = &work;
    let ranges = &ranges;
    std::thread::scope(|scope| {
        for (w, mut slot_chunk) in chunked_slots(&mut results, workers).into_iter().enumerate() {
            scope.spawn(move || {
                for (offset, slot) in slot_chunk.iter_mut().enumerate() {
                    let cta = w + offset * workers;
                    **slot = Some(work(cta, ranges[cta].clone()));
                }
            });
        }
    });
    results.into_iter().map(|r| r.expect("all CTAs filled")).collect()
}

/// Parallel map over equal chunks followed by an associative reduction — for
/// the CPU baseline's multi-threaded operators (paper Fig. 4(a) uses 16 CPU
/// threads).
pub fn par_map_reduce<T, A, F, G>(input: &[T], chunk: usize, map: F, reduce: G, identity: A) -> A
where
    T: Sync,
    A: Send,
    F: Fn(&[T]) -> A + Sync,
    G: Fn(A, A) -> A,
{
    let partials = par_cta_map(input, chunk, |_, part| map(part));
    partials.into_iter().fold(identity, reduce)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_cover_exactly() {
        let rs = cta_ranges(10, 3);
        assert_eq!(rs, vec![0..3, 3..6, 6..9, 9..10]);
        assert!(cta_ranges(0, 3).is_empty());
        assert_eq!(cta_ranges(3, 3), vec![0..3]);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_panics() {
        cta_ranges(1, 0);
    }

    #[test]
    fn par_cta_map_preserves_order() {
        let data: Vec<u32> = (0..100_000).collect();
        let sums = par_cta_map(&data, 1024, |_, part| part.iter().map(|&x| x as u64).sum::<u64>());
        assert_eq!(sums.len(), 98);
        let total: u64 = sums.iter().sum();
        assert_eq!(total, (0..100_000u64).sum::<u64>());
        // First CTA must be the first range, not an arbitrary one.
        assert_eq!(sums[0], (0..1024u64).sum::<u64>());
    }

    #[test]
    fn par_cta_map_passes_cta_index() {
        let data = vec![0u8; 10_000];
        let idxs = par_cta_map(&data, 1000, |cta, _| cta);
        assert_eq!(idxs, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_gives_empty_output() {
        let data: Vec<u32> = vec![];
        let out = par_cta_map(&data, 16, |_, part| part.len());
        assert!(out.is_empty());
    }

    #[test]
    fn par_range_map_covers_all_indices() {
        let flags: Vec<std::sync::atomic::AtomicBool> =
            (0..5000).map(|_| std::sync::atomic::AtomicBool::new(false)).collect();
        par_range_map(5000, 64, |_, r| {
            for i in r {
                flags[i].store(true, std::sync::atomic::Ordering::Relaxed);
            }
        });
        assert!(flags.iter().all(|f| f.load(std::sync::atomic::Ordering::Relaxed)));
    }

    #[test]
    fn map_reduce_matches_sequential() {
        let data: Vec<i64> = (1..=1_000_000).collect();
        let sum = par_map_reduce(&data, 4096, |p| p.iter().sum::<i64>(), |a, b| a + b, 0);
        assert_eq!(sum, 500_000_500_000);
    }

    #[test]
    fn single_cta_path_works() {
        let data = [1u32, 2, 3];
        let out = par_cta_map(&data, 100, |_, p| p.to_vec());
        assert_eq!(out, vec![vec![1, 2, 3]]);
    }
}
