//! Deterministic discrete-event scheduler for stream command queues.
//!
//! CUDA semantics, reduced to what the paper's experiments exercise:
//! commands in one stream execute in issue order; commands in different
//! streams may overlap if they occupy different engines. The C2070 has one
//! compute engine and two DMA engines, so "one stream is downloading data to
//! GPU, the other stream is computing and the third stream is uploading
//! result to the CPU" (paper §IV-B) — exactly the overlap kernel fission
//! lives on.
//!
//! The scheduler is list scheduling over engine timelines: repeatedly pick
//! the ready stream-head command with the earliest feasible start. It is
//! fully deterministic (ties break toward the lowest stream index), so every
//! figure the harness regenerates is reproducible bit-for-bit.

use crate::kernel::{KernelProfile, LaunchConfig};
use crate::pcie::{Direction, HostMemKind};
use crate::GpuSystem;
use std::collections::HashMap;

/// Execution engines of the simulated system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// The GPU's kernel execution engine (serial across kernels).
    Compute,
    /// DMA engine for host→device copies.
    CopyH2D,
    /// DMA engine for device→host copies (shared with [`Engine::CopyH2D`]
    /// when the device has a single copy engine).
    CopyD2H,
    /// The host CPU (used for the CPU-side gather after fission).
    Host,
}

/// Why a command exists, for the paper's execution-time breakdowns
/// (Fig. 9 splits *input/output* from *round trip* from *computation*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommandClass {
    /// Transfer of original input or final output.
    InputOutput,
    /// Transfer of intermediate (temporary) data — the traffic fusion kills.
    RoundTrip,
    /// GPU kernel execution.
    Compute,
    /// Host-side work (e.g. the CPU gather kernel fission requires).
    HostWork,
    /// Synchronization bookkeeping (events); zero duration.
    Sync,
}

impl std::fmt::Display for CommandClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommandClass::InputOutput => write!(f, "input/output"),
            CommandClass::RoundTrip => write!(f, "round trip"),
            CommandClass::Compute => write!(f, "computation"),
            CommandClass::HostWork => write!(f, "host work"),
            CommandClass::Sync => write!(f, "sync"),
        }
    }
}

/// Identifier for a cross-stream synchronization event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(pub u32);

/// What a command does.
#[derive(Debug, Clone, PartialEq)]
pub enum CommandKind {
    /// Copy `bytes` from host to device.
    CopyH2D {
        /// Transfer size.
        bytes: u64,
        /// Host memory kind (pinned transfers are faster).
        mem: HostMemKind,
    },
    /// Copy `bytes` from device to host.
    CopyD2H {
        /// Transfer size.
        bytes: u64,
        /// Host memory kind.
        mem: HostMemKind,
    },
    /// Launch a kernel over `elems` elements.
    Kernel {
        /// Cost profile.
        profile: KernelProfile,
        /// Launch geometry.
        launch: LaunchConfig,
        /// Number of elements processed.
        elems: u64,
    },
    /// Occupy the host for a fixed duration.
    HostWork {
        /// Duration in seconds.
        seconds: f64,
    },
    /// Record `EventId` at the current stream position.
    RecordEvent(EventId),
    /// Block this stream until `EventId` has been recorded.
    WaitEvent(EventId),
}

/// A labelled, classified command in a stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Command {
    /// Label shown in timelines (e.g. `"filter[seg3]"`).
    pub label: String,
    /// Breakdown class.
    pub class: CommandClass,
    /// Payload.
    pub kind: CommandKind,
    /// Named device buffers this command reads. H2D copies read nothing on
    /// the device; D2H copies read the buffer named by their label; kernels
    /// declare reads via [`Command::reading`].
    pub reads: Vec<String>,
    /// Named device buffers this command writes. H2D copies write the
    /// buffer named by their label; kernels declare writes via
    /// [`Command::writing`].
    pub writes: Vec<String>,
}

impl Command {
    /// A host→device input copy. Writes the device buffer named `label`.
    pub fn h2d(
        label: impl Into<String>,
        class: CommandClass,
        bytes: u64,
        mem: HostMemKind,
    ) -> Self {
        let label = label.into();
        Command {
            writes: vec![label.clone()],
            label,
            class,
            kind: CommandKind::CopyH2D { bytes, mem },
            reads: Vec::new(),
        }
    }

    /// A device→host output copy. Reads the device buffer named `label`.
    pub fn d2h(
        label: impl Into<String>,
        class: CommandClass,
        bytes: u64,
        mem: HostMemKind,
    ) -> Self {
        let label = label.into();
        Command {
            reads: vec![label.clone()],
            label,
            class,
            kind: CommandKind::CopyD2H { bytes, mem },
            writes: Vec::new(),
        }
    }

    /// A kernel launch. Declares no buffer accesses; chain
    /// [`Command::reading`]/[`Command::writing`] so the hazard detector can
    /// order it against copies.
    pub fn kernel(profile: KernelProfile, launch: LaunchConfig, elems: u64) -> Self {
        Command {
            label: profile.name.clone(),
            class: CommandClass::Compute,
            kind: CommandKind::Kernel { profile, launch, elems },
            reads: Vec::new(),
            writes: Vec::new(),
        }
    }

    /// Host-side work of a fixed duration.
    pub fn host_work(label: impl Into<String>, seconds: f64) -> Self {
        Command {
            label: label.into(),
            class: CommandClass::HostWork,
            kind: CommandKind::HostWork { seconds },
            reads: Vec::new(),
            writes: Vec::new(),
        }
    }

    /// Record an event.
    pub fn record(event: EventId) -> Self {
        Command {
            label: format!("record({})", event.0),
            class: CommandClass::Sync,
            kind: CommandKind::RecordEvent(event),
            reads: Vec::new(),
            writes: Vec::new(),
        }
    }

    /// Wait on an event.
    pub fn wait(event: EventId) -> Self {
        Command {
            label: format!("wait({})", event.0),
            class: CommandClass::Sync,
            kind: CommandKind::WaitEvent(event),
            reads: Vec::new(),
            writes: Vec::new(),
        }
    }

    /// Declare that this command reads the device buffer `buf`.
    pub fn reading(mut self, buf: impl Into<String>) -> Self {
        self.reads.push(buf.into());
        self
    }

    /// Declare that this command writes the device buffer `buf`.
    pub fn writing(mut self, buf: impl Into<String>) -> Self {
        self.writes.push(buf.into());
        self
    }
}

/// A set of FIFO command streams to simulate together.
#[derive(Debug, Clone, Default)]
pub struct Schedule {
    /// Stream queues, executed with CUDA stream semantics.
    pub streams: Vec<Vec<Command>>,
}

impl Schedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an empty stream, returning its index.
    pub fn add_stream(&mut self) -> usize {
        self.streams.push(Vec::new());
        self.streams.len() - 1
    }

    /// Append a command to stream `s`.
    ///
    /// # Panics
    /// If `s` is not a valid stream index.
    pub fn push(&mut self, s: usize, cmd: Command) {
        self.streams[s].push(cmd);
    }

    /// Build a single-stream schedule from a command list — the paper's
    /// "serial" executions.
    pub fn serial(cmds: Vec<Command>) -> Self {
        Schedule { streams: vec![cmds] }
    }
}

/// One executed command in the simulated timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Stream the command came from.
    pub stream: usize,
    /// Position within the stream.
    pub index: usize,
    /// Command label.
    pub label: String,
    /// Breakdown class.
    pub class: CommandClass,
    /// Engine that executed it (`None` for sync pseudo-commands).
    pub engine: Option<Engine>,
    /// Simulated start time (s).
    pub start: f64,
    /// Simulated end time (s).
    pub end: f64,
}

impl Span {
    /// Span duration in seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// The result of simulating a [`Schedule`].
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    /// Executed spans, in completion order.
    pub spans: Vec<Span>,
}

impl Timeline {
    /// Simulated makespan: the latest span end (0 for an empty schedule).
    pub fn total(&self) -> f64 {
        self.spans.iter().map(|s| s.end).fold(0.0, f64::max)
    }

    /// Sum of span durations in `class`. Meaningful as a breakdown for
    /// serial schedules; for overlapped schedules it reports engine-busy
    /// time, which can exceed the makespan.
    pub fn time_in_class(&self, class: CommandClass) -> f64 {
        // `+ 0.0` canonicalizes the -0.0 an empty f64 sum produces.
        self.spans.iter().filter(|s| s.class == class).map(Span::duration).sum::<f64>() + 0.0
    }

    /// Sum of span durations whose label starts with `prefix`.
    pub fn time_with_label_prefix(&self, prefix: &str) -> f64 {
        self.spans.iter().filter(|s| s.label.starts_with(prefix)).map(Span::duration).sum::<f64>()
            + 0.0
    }

    /// Busy time of one engine.
    pub fn busy(&self, engine: Engine) -> f64 {
        self.spans.iter().filter(|s| s.engine == Some(engine)).map(Span::duration).sum::<f64>()
            + 0.0
    }
}

/// Simulation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Every remaining stream head is waiting on an event that will never be
    /// recorded.
    Deadlock {
        /// Streams still holding unexecuted commands.
        blocked_streams: Vec<usize>,
    },
    /// An event was recorded twice.
    DuplicateEvent(u32),
    /// The static hazard detector found a data race in the schedule.
    Hazard(crate::hazard::Hazard),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { blocked_streams } => {
                write!(f, "deadlock: streams {blocked_streams:?} wait on unrecorded events")
            }
            SimError::DuplicateEvent(e) => write!(f, "event {e} recorded twice"),
            SimError::Hazard(h) => write!(f, "schedule hazard: {h}"),
        }
    }
}

impl std::error::Error for SimError {}

fn engine_of(kind: &CommandKind, copy_engines: u32) -> Option<Engine> {
    match kind {
        CommandKind::CopyH2D { .. } => Some(Engine::CopyH2D),
        CommandKind::CopyD2H { .. } => {
            // A single-copy-engine device serializes both directions.
            if copy_engines >= 2 {
                Some(Engine::CopyD2H)
            } else {
                Some(Engine::CopyH2D)
            }
        }
        CommandKind::Kernel { .. } => Some(Engine::Compute),
        CommandKind::HostWork { .. } => Some(Engine::Host),
        CommandKind::RecordEvent(_) | CommandKind::WaitEvent(_) => None,
    }
}

/// Simulate `schedule` on `system`, producing the executed [`Timeline`].
pub fn simulate(system: &GpuSystem, schedule: &Schedule) -> Result<Timeline, SimError> {
    let n_streams = schedule.streams.len();
    let mut head = vec![0usize; n_streams];
    let mut stream_end = vec![0.0f64; n_streams];
    let mut engine_free: HashMap<Engine, f64> = HashMap::new();
    let mut events: HashMap<u32, f64> = HashMap::new();
    let mut timeline = Timeline::default();
    let total_cmds: usize = schedule.streams.iter().map(Vec::len).sum();
    // Async copies that actually overlap other engine activity run below
    // bandwidthTest rates on this hardware generation; the penalty grows
    // with the number of contending streams (a 3+-stream fission pipeline
    // keeps both DMA engines, the kernel engine, and the host gather all
    // fighting for the link and the root complex). A copy is derated when,
    // at its start, some other engine is still busy — an approximation that
    // looks only at already-committed commands, which list scheduling
    // commits in (near) time order.
    let busy_streams = schedule.streams.iter().filter(|s| !s.is_empty()).count();
    let concurrent_derate = match busy_streams {
        0 | 1 => 1.0,
        2 => (1.0 + system.pcie.async_efficiency) / 2.0,
        _ => system.pcie.async_efficiency,
    };

    for _ in 0..total_cmds {
        // Find the ready head with the earliest feasible start.
        let mut best: Option<(f64, usize)> = None;
        for s in 0..n_streams {
            let Some(cmd) = schedule.streams[s].get(head[s]) else { continue };
            let est = match &cmd.kind {
                CommandKind::WaitEvent(e) => match events.get(&e.0) {
                    Some(&t) => stream_end[s].max(t),
                    None => continue, // blocked until another stream records it
                },
                kind => {
                    let engine_t = engine_of(kind, system.spec.copy_engines)
                        .map(|e| *engine_free.get(&e).unwrap_or(&0.0))
                        .unwrap_or(0.0);
                    stream_end[s].max(engine_t)
                }
            };
            if best.is_none_or(|(bt, _)| est < bt) {
                best = Some((est, s));
            }
        }
        let Some((start, s)) = best else {
            let blocked: Vec<usize> =
                (0..n_streams).filter(|&s| head[s] < schedule.streams[s].len()).collect();
            return Err(SimError::Deadlock { blocked_streams: blocked });
        };
        let cmd = &schedule.streams[s][head[s]];
        let engine = engine_of(&cmd.kind, system.spec.copy_engines);
        let copy_derate = {
            // Derate while any *other* stream still has pending or
            // in-flight work; a trailing copy after all streams drain runs
            // at full synchronous bandwidth.
            let others_active = (0..n_streams).any(|s2| {
                s2 != s && (head[s2] < schedule.streams[s2].len() || stream_end[s2] > start + 1e-15)
            });
            if others_active {
                concurrent_derate
            } else {
                1.0
            }
        };
        let duration = match &cmd.kind {
            CommandKind::CopyH2D { bytes, mem } => {
                system.pcie.transfer_time(*bytes, Direction::H2D, *mem) / copy_derate
            }
            CommandKind::CopyD2H { bytes, mem } => {
                system.pcie.transfer_time(*bytes, Direction::D2H, *mem) / copy_derate
            }
            CommandKind::Kernel { profile, launch, elems } => {
                profile.time(&system.spec, launch, *elems)
            }
            CommandKind::HostWork { seconds } => *seconds,
            CommandKind::RecordEvent(e) => {
                if events.insert(e.0, start).is_some() {
                    return Err(SimError::DuplicateEvent(e.0));
                }
                0.0
            }
            CommandKind::WaitEvent(_) => 0.0,
        };
        let end = start + duration;
        stream_end[s] = end;
        if let Some(e) = engine {
            engine_free.insert(e, end);
        }
        if kfusion_trace::enabled() {
            kfusion_trace::sim_span(
                crate::tracing::engine_track(engine),
                s as u32,
                &cmd.label,
                start,
                end,
            );
            kfusion_trace::counter("kfusion_sim_commands_total", 1);
            match &cmd.kind {
                CommandKind::CopyH2D { bytes, .. } => {
                    kfusion_trace::counter("kfusion_sim_pcie_bytes_total{dir=\"h2d\"}", *bytes)
                }
                CommandKind::CopyD2H { bytes, .. } => {
                    kfusion_trace::counter("kfusion_sim_pcie_bytes_total{dir=\"d2h\"}", *bytes)
                }
                _ => {}
            }
        }
        timeline.spans.push(Span {
            stream: s,
            index: head[s],
            label: cmd.label.clone(),
            class: cmd.class,
            engine,
            start,
            end,
        });
        head[s] += 1;
    }
    Ok(timeline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;

    fn sys() -> GpuSystem {
        GpuSystem::c2070()
    }

    fn kern(name: &str, n: u64) -> Command {
        let spec = DeviceSpec::tesla_c2070();
        let p = KernelProfile::new(name)
            .instr_per_elem(8.0)
            .bytes_read_per_elem(4.0)
            .bytes_written_per_elem(4.0);
        Command::kernel(p, LaunchConfig::for_elements(n, &spec), n)
    }

    const MB64: u64 = 64 << 20;

    #[test]
    fn serial_stream_executes_in_order() {
        let s = sys();
        let sched = Schedule::serial(vec![
            Command::h2d("in", CommandClass::InputOutput, MB64, HostMemKind::Pinned),
            kern("k", MB64 / 4),
            Command::d2h("out", CommandClass::InputOutput, MB64, HostMemKind::Pinned),
        ]);
        let t = s.simulate(&sched).unwrap();
        assert_eq!(t.spans.len(), 3);
        assert!(t.spans[0].end <= t.spans[1].start + 1e-12);
        assert!(t.spans[1].end <= t.spans[2].start + 1e-12);
        let sum: f64 = t.spans.iter().map(Span::duration).sum();
        assert!((t.total() - sum).abs() < 1e-9, "serial makespan == sum of parts");
    }

    #[test]
    fn independent_streams_overlap_on_different_engines() {
        let s = sys();
        let mut sched = Schedule::new();
        let a = sched.add_stream();
        let b = sched.add_stream();
        sched.push(a, Command::h2d("inA", CommandClass::InputOutput, MB64, HostMemKind::Pinned));
        sched.push(b, kern("kB", MB64 / 4));
        let t = s.simulate(&sched).unwrap();
        // Copy and kernel both start at 0: full overlap.
        assert_eq!(t.spans[0].start, 0.0);
        assert_eq!(t.spans[1].start, 0.0);
        let serial_sum: f64 = t.spans.iter().map(Span::duration).sum();
        assert!(t.total() < serial_sum);
    }

    #[test]
    fn same_engine_serializes_across_streams() {
        let s = sys();
        let mut sched = Schedule::new();
        let a = sched.add_stream();
        let b = sched.add_stream();
        sched.push(a, kern("k1", MB64));
        sched.push(b, kern("k2", MB64));
        let t = s.simulate(&sched).unwrap();
        // One compute engine: no overlap.
        let (s1, s2) = (&t.spans[0], &t.spans[1]);
        assert!(s1.end <= s2.start + 1e-12 || s2.end <= s1.start + 1e-12);
    }

    #[test]
    fn h2d_and_d2h_overlap_with_two_copy_engines() {
        let s = sys();
        assert_eq!(s.spec.copy_engines, 2);
        let mut sched = Schedule::new();
        let a = sched.add_stream();
        let b = sched.add_stream();
        sched.push(a, Command::h2d("in", CommandClass::InputOutput, MB64, HostMemKind::Pinned));
        sched.push(b, Command::d2h("out", CommandClass::InputOutput, MB64, HostMemKind::Pinned));
        let t = s.simulate(&sched).unwrap();
        assert_eq!(t.spans[0].start, 0.0);
        assert_eq!(t.spans[1].start, 0.0);
    }

    #[test]
    fn single_copy_engine_serializes_directions() {
        let mut s = sys();
        s.spec.copy_engines = 1;
        let mut sched = Schedule::new();
        let a = sched.add_stream();
        let b = sched.add_stream();
        sched.push(a, Command::h2d("in", CommandClass::InputOutput, MB64, HostMemKind::Pinned));
        sched.push(b, Command::d2h("out", CommandClass::InputOutput, MB64, HostMemKind::Pinned));
        let t = s.simulate(&sched).unwrap();
        let (s1, s2) = (&t.spans[0], &t.spans[1]);
        assert!(s1.end <= s2.start + 1e-12 || s2.end <= s1.start + 1e-12);
    }

    #[test]
    fn events_order_across_streams() {
        let s = sys();
        let e = EventId(0);
        let mut sched = Schedule::new();
        let a = sched.add_stream();
        let b = sched.add_stream();
        sched.push(a, kern("producer", MB64));
        sched.push(a, Command::record(e));
        sched.push(b, Command::wait(e));
        sched.push(b, kern("consumer", MB64));
        let t = s.simulate(&sched).unwrap();
        let prod = t.spans.iter().find(|x| x.label == "producer").unwrap();
        let cons = t.spans.iter().find(|x| x.label == "consumer").unwrap();
        assert!(cons.start >= prod.end - 1e-12);
    }

    #[test]
    fn wait_on_never_recorded_event_deadlocks() {
        let s = sys();
        let sched = Schedule::serial(vec![Command::wait(EventId(9)), kern("k", 1024)]);
        assert!(matches!(s.simulate(&sched), Err(SimError::Deadlock { .. })));
    }

    #[test]
    fn duplicate_event_record_is_an_error() {
        let s = sys();
        let sched =
            Schedule::serial(vec![Command::record(EventId(1)), Command::record(EventId(1))]);
        assert!(matches!(s.simulate(&sched), Err(SimError::DuplicateEvent(1))));
    }

    #[test]
    fn pipelined_segments_beat_serial() {
        // The kernel-fission effect in miniature: 4 segments of
        // [H2D, kernel, D2H] on 3 rotating streams vs one serial stream.
        // The kernel is compute-heavy so there is work to hide the derated
        // async transfers behind.
        let kern = |name: &str, n: u64| {
            let spec = DeviceSpec::tesla_c2070();
            let p = KernelProfile::new(name)
                .instr_per_elem(400.0)
                .bytes_read_per_elem(4.0)
                .bytes_written_per_elem(4.0);
            Command::kernel(p, LaunchConfig::for_elements(n, &spec), n)
        };
        let s = sys();
        let seg_bytes = 32u64 << 20;
        let seg_elems = seg_bytes / 4;
        let serial: Vec<Command> = (0..4)
            .flat_map(|i| {
                vec![
                    Command::h2d(
                        format!("in{i}"),
                        CommandClass::InputOutput,
                        seg_bytes,
                        HostMemKind::Pinned,
                    ),
                    kern(&format!("k{i}"), seg_elems),
                    Command::d2h(
                        format!("out{i}"),
                        CommandClass::InputOutput,
                        seg_bytes,
                        HostMemKind::Pinned,
                    ),
                ]
            })
            .collect();
        let t_serial = s.simulate(&Schedule::serial(serial)).unwrap().total();

        let mut pipe = Schedule::new();
        for _ in 0..3 {
            pipe.add_stream();
        }
        for i in 0..4 {
            let st = i % 3;
            pipe.push(
                st,
                Command::h2d(
                    format!("in{i}"),
                    CommandClass::InputOutput,
                    seg_bytes,
                    HostMemKind::Pinned,
                ),
            );
            pipe.push(st, kern(&format!("k{i}"), seg_elems));
            pipe.push(
                st,
                Command::d2h(
                    format!("out{i}"),
                    CommandClass::InputOutput,
                    seg_bytes,
                    HostMemKind::Pinned,
                ),
            );
        }
        let t_pipe = s.simulate(&pipe).unwrap().total();
        assert!(
            t_pipe < 0.8 * t_serial,
            "pipelining should hide transfers: serial {t_serial} vs pipe {t_pipe}"
        );
    }

    #[test]
    fn timeline_breakdown_classes() {
        let s = sys();
        let sched = Schedule::serial(vec![
            Command::h2d("in", CommandClass::InputOutput, MB64, HostMemKind::Pinned),
            Command::d2h("tmp_out", CommandClass::RoundTrip, MB64, HostMemKind::Paged),
            Command::h2d("tmp_in", CommandClass::RoundTrip, MB64, HostMemKind::Paged),
            kern("k", MB64 / 4),
        ]);
        let t = s.simulate(&sched).unwrap();
        assert!(
            t.time_in_class(CommandClass::RoundTrip) > t.time_in_class(CommandClass::InputOutput)
        );
        assert!(t.time_in_class(CommandClass::Compute) > 0.0);
        assert!(t.time_with_label_prefix("tmp_") > 0.0);
    }

    #[test]
    fn empty_class_sums_are_positive_zero() {
        // Rust's empty f64 sum is -0.0; the accessors must canonicalize so
        // reports never print "-0.0%".
        let t = Timeline::default();
        assert!(t.time_in_class(CommandClass::RoundTrip).is_sign_positive());
        assert!(t.time_with_label_prefix("x").is_sign_positive());
        assert!(t.busy(Engine::Host).is_sign_positive());
    }

    #[test]
    fn empty_schedule_is_fine() {
        let s = sys();
        let t = s.simulate(&Schedule::new()).unwrap();
        assert_eq!(t.total(), 0.0);
        assert!(t.spans.is_empty());
    }

    #[test]
    fn host_engine_runs_parallel_to_gpu() {
        let s = sys();
        let mut sched = Schedule::new();
        let a = sched.add_stream();
        let b = sched.add_stream();
        sched.push(a, kern("gpu", MB64));
        sched.push(b, Command::host_work("cpu_gather", 0.01));
        let t = s.simulate(&sched).unwrap();
        assert_eq!(t.spans[0].start, 0.0);
        assert_eq!(t.spans[1].start, 0.0);
    }
}
