//! Fission segmentation: exact partitions of an iteration space.
//!
//! Kernel fission (paper §IV) splits a kernel's element range and its input
//! transfers into `k` segments pipelined over streams. Correctness demands
//! the segments form a *partition* of the unsegmented range — no element
//! computed twice (overlap) and none dropped (gap). [`partition`] produces
//! a balanced exact partition; [`check_partition`] is the validator the
//! fission scheduler and the `fission-segment-overlap` lint call, returning
//! a concrete witness element on failure.

use std::fmt;

/// A half-open segment `[lo, hi)` of an iteration space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegRange {
    /// First element (inclusive).
    pub lo: u64,
    /// One past the last element.
    pub hi: u64,
}

impl SegRange {
    /// Number of elements in the segment.
    pub fn len(&self) -> u64 {
        self.hi.saturating_sub(self.lo)
    }

    /// Whether the segment covers no elements.
    pub fn is_empty(&self) -> bool {
        self.hi <= self.lo
    }
}

impl fmt::Display for SegRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.lo, self.hi)
    }
}

/// Why a segment list fails to partition `[0, total)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentError {
    /// A segment has `hi < lo`.
    Inverted {
        /// Index of the malformed segment.
        seg: usize,
    },
    /// Segment `seg` starts before the previous one ends: `witness` is an
    /// element covered twice.
    Overlap {
        /// Index of the overlapping segment.
        seg: usize,
        /// An element covered by both `seg` and an earlier segment.
        witness: u64,
    },
    /// Segment `seg` starts after the previous one ends (or after 0 for
    /// the first): `witness` is an element never covered.
    Gap {
        /// Index of the segment after the gap (`segs.len()` when the tail
        /// of the range is uncovered).
        seg: usize,
        /// An element no segment covers.
        witness: u64,
    },
    /// The segments run past `total`.
    Overrun {
        /// Index of the segment crossing the end.
        seg: usize,
        /// The claimed end, beyond `total`.
        hi: u64,
    },
}

impl fmt::Display for SegmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegmentError::Inverted { seg } => write!(f, "segment {seg} has hi < lo"),
            SegmentError::Overlap { seg, witness } => {
                write!(
                    f,
                    "segment {seg} overlaps its predecessor: element {witness} is computed twice"
                )
            }
            SegmentError::Gap { seg, witness } => {
                write!(f, "gap before segment {seg}: element {witness} is never computed")
            }
            SegmentError::Overrun { seg, hi } => {
                write!(f, "segment {seg} runs to {hi}, past the iteration space")
            }
        }
    }
}

impl std::error::Error for SegmentError {}

/// Split `[0, total)` into `k` contiguous segments whose lengths differ by
/// at most one and whose union is exactly the input range (the first
/// `total % k` segments take the extra element).
pub fn partition(total: u64, k: u32) -> Vec<SegRange> {
    let k = k.max(1) as u64;
    let base = total / k;
    let rem = total % k;
    let mut lo = 0u64;
    let out: Vec<SegRange> = (0..k)
        .map(|s| {
            let len = base + u64::from(s < rem);
            let seg = SegRange { lo, hi: lo + len };
            lo += len;
            seg
        })
        .collect();
    // Self-check under the validate feature: defense in depth for callers
    // that bypass the scheduler's explicit check.
    #[cfg(feature = "validate")]
    debug_assert!(check_partition(total, &out).is_ok());
    out
}

/// Verify that `segs` partitions `[0, total)` exactly: contiguous, in
/// order, no overlap, no gap, ending at `total`. On failure the error
/// carries a witness element — the concrete counterexample the
/// `fission-segment-overlap` lint renders.
pub fn check_partition(total: u64, segs: &[SegRange]) -> Result<(), SegmentError> {
    let mut expected = 0u64;
    for (i, seg) in segs.iter().enumerate() {
        if seg.hi < seg.lo {
            return Err(SegmentError::Inverted { seg: i });
        }
        if seg.lo < expected {
            return Err(SegmentError::Overlap { seg: i, witness: seg.lo });
        }
        if seg.lo > expected {
            return Err(SegmentError::Gap { seg: i, witness: expected });
        }
        if seg.hi > total {
            return Err(SegmentError::Overrun { seg: i, hi: seg.hi });
        }
        expected = seg.hi;
    }
    if expected < total {
        return Err(SegmentError::Gap { seg: segs.len(), witness: expected });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_exact_and_balanced() {
        for total in [0u64, 1, 7, 8, 9, 10, 1 << 20, (1 << 20) + 3] {
            for k in [1u32, 2, 3, 4, 8] {
                let segs = partition(total, k);
                assert_eq!(segs.len(), k as usize);
                check_partition(total, &segs).unwrap();
                let (min, max) = segs
                    .iter()
                    .fold((u64::MAX, 0), |(lo, hi), s| (lo.min(s.len()), hi.max(s.len())));
                assert!(max - min <= 1, "unbalanced: {segs:?}");
                assert_eq!(segs.iter().map(SegRange::len).sum::<u64>(), total);
            }
        }
    }

    #[test]
    fn rounding_schemes_that_are_not_partitions_are_rejected() {
        // round(n/k) per segment over-covers n=10, k=4 (3+3+3+3 = 12).
        let n = 10u64;
        let per = (n as f64 / 4.0).round() as u64;
        let segs: Vec<SegRange> =
            (0..4).map(|s| SegRange { lo: s * per, hi: (s + 1) * per }).collect();
        assert!(check_partition(n, &segs).is_err());
    }

    #[test]
    fn overlap_names_a_witness_element() {
        let mut segs = partition(100, 4);
        segs[2].lo -= 1; // off-by-one: element 49 computed twice
        match check_partition(100, &segs) {
            Err(SegmentError::Overlap { seg: 2, witness }) => assert_eq!(witness, 49),
            other => panic!("expected overlap, got {other:?}"),
        }
    }

    #[test]
    fn gap_names_the_dropped_element() {
        let mut segs = partition(100, 4);
        segs[1].lo += 1; // element 25 never computed
        match check_partition(100, &segs) {
            Err(SegmentError::Gap { seg: 1, witness }) => assert_eq!(witness, 25),
            other => panic!("expected gap, got {other:?}"),
        }
    }

    #[test]
    fn truncated_tail_is_a_gap() {
        let mut segs = partition(100, 4);
        segs[3].hi -= 1;
        match check_partition(100, &segs) {
            Err(SegmentError::Gap { seg: 4, witness }) => assert_eq!(witness, 99),
            other => panic!("expected tail gap, got {other:?}"),
        }
    }
}
