//! Device-memory capacity accounting.
//!
//! The executor uses this to make the paper's strategy decisions concrete:
//! *with round trip* exists because "there is insufficient space on the GPU
//! for storing the intermediate results" (§III-B), and kernel fission exists
//! because "the data set ... exceeds the size of GPU memory" (§IV-B). The
//! tracker does not store bytes — functional data lives host-side — it
//! enforces the simulated 6 GB budget and reports high-water marks.

use std::collections::HashMap;

/// Handle to one simulated device allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AllocId(u64);

/// Allocation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// The allocation would exceed device capacity.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes currently free.
        free: u64,
    },
    /// The handle was already freed or never allocated.
    BadHandle,
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::OutOfMemory { requested, free } => {
                write!(f, "device OOM: requested {requested} bytes, {free} free")
            }
            MemError::BadHandle => write!(f, "bad device allocation handle"),
        }
    }
}

impl std::error::Error for MemError {}

/// Capacity tracker for one device's global memory.
#[derive(Debug, Clone)]
pub struct DeviceMemory {
    capacity: u64,
    allocated: u64,
    high_water: u64,
    next_id: u64,
    live: HashMap<u64, u64>,
}

impl DeviceMemory {
    /// A tracker for a device with `capacity` bytes of global memory.
    pub fn new(capacity: u64) -> Self {
        DeviceMemory { capacity, allocated: 0, high_water: 0, next_id: 0, live: HashMap::new() }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    /// Bytes currently free.
    pub fn free_bytes(&self) -> u64 {
        self.capacity - self.allocated
    }

    /// Largest `allocated` value ever observed.
    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    /// Whether an allocation of `bytes` would succeed right now.
    pub fn fits(&self, bytes: u64) -> bool {
        bytes <= self.free_bytes()
    }

    /// Allocate `bytes`, failing if capacity would be exceeded.
    pub fn alloc(&mut self, bytes: u64) -> Result<AllocId, MemError> {
        if !self.fits(bytes) {
            return Err(MemError::OutOfMemory { requested: bytes, free: self.free_bytes() });
        }
        self.allocated += bytes;
        self.high_water = self.high_water.max(self.allocated);
        let id = self.next_id;
        self.next_id += 1;
        self.live.insert(id, bytes);
        Ok(AllocId(id))
    }

    /// Release an allocation.
    pub fn release(&mut self, id: AllocId) -> Result<(), MemError> {
        let bytes = self.live.remove(&id.0).ok_or(MemError::BadHandle)?;
        self.allocated -= bytes;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free_roundtrip() {
        let mut m = DeviceMemory::new(1000);
        let a = m.alloc(400).unwrap();
        let b = m.alloc(600).unwrap();
        assert_eq!(m.free_bytes(), 0);
        assert!(!m.fits(1));
        m.release(a).unwrap();
        assert_eq!(m.free_bytes(), 400);
        m.release(b).unwrap();
        assert_eq!(m.allocated(), 0);
        assert_eq!(m.high_water(), 1000);
    }

    #[test]
    fn oom_reports_free_bytes() {
        let mut m = DeviceMemory::new(100);
        m.alloc(80).unwrap();
        match m.alloc(30) {
            Err(MemError::OutOfMemory { requested: 30, free: 20 }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn double_free_is_an_error() {
        let mut m = DeviceMemory::new(100);
        let a = m.alloc(10).unwrap();
        m.release(a).unwrap();
        assert_eq!(m.release(a), Err(MemError::BadHandle));
    }

    #[test]
    fn zero_byte_alloc_is_fine() {
        let mut m = DeviceMemory::new(0);
        let a = m.alloc(0).unwrap();
        m.release(a).unwrap();
    }

    #[test]
    fn c2070_cannot_hold_1_5_billion_ints() {
        // Paper §IV-B: "our GPU's 6GB memory can hold less than 1.5 billion
        // 32-bit integers" (usable capacity with ECC enabled).
        let m = DeviceMemory::new(crate::device::DeviceSpec::tesla_c2070().mem_capacity);
        assert!(!m.fits(1_500_000_000 * 4));
        assert!(m.fits(1_400_000_000 * 4));
    }
}
