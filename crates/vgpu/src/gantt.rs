//! ASCII Gantt rendering of executed timelines.
//!
//! One row per engine, time on the horizontal axis, `#` for busy spans —
//! enough to *see* kernel fission's overlap (the paper's Fig. 13) straight
//! from a terminal:
//!
//! ```text
//! H2D     |####__####__####__                  |
//! compute |____####__####__####                |
//! D2H     |______####__####__####              |
//! ```

use crate::des::Timeline;
use crate::tracing::timeline_trace;
use kfusion_trace::Clock;

/// Render `timeline` as an ASCII Gantt chart `width` characters wide.
///
/// Engines with no spans are omitted. Each cell covers `total/width`
/// seconds and is drawn `#` if any span on that engine overlaps it.
///
/// This is a thin view: the timeline converts to a trace
/// ([`timeline_trace`]) and the shared renderer in `kfusion-trace` draws
/// it, so the terminal Gantt and the Perfetto export always show the same
/// data.
pub fn render(timeline: &Timeline, width: usize) -> String {
    kfusion_trace::gantt::render(&timeline_trace(timeline), Clock::Sim, width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::{Command, CommandClass, Schedule};
    use crate::kernel::{KernelProfile, LaunchConfig};
    use crate::pcie::HostMemKind;
    use crate::{DeviceSpec, GpuSystem};

    fn sample_timeline(pipelined: bool) -> Timeline {
        let sys = GpuSystem::c2070();
        let spec = DeviceSpec::tesla_c2070();
        let kern = |i: usize| {
            let p =
                KernelProfile::new(format!("k{i}")).instr_per_elem(200.0).bytes_read_per_elem(4.0);
            Command::kernel(p, LaunchConfig::for_elements(4 << 20, &spec), 4 << 20)
        };
        let mut sched = Schedule::new();
        let n_streams = if pipelined { 3 } else { 1 };
        for _ in 0..n_streams {
            sched.add_stream();
        }
        for i in 0..6 {
            let s = i % n_streams;
            sched.push(
                s,
                Command::h2d(
                    format!("in{i}"),
                    CommandClass::InputOutput,
                    16 << 20,
                    HostMemKind::Pinned,
                ),
            );
            sched.push(s, kern(i));
            sched.push(
                s,
                Command::d2h(
                    format!("out{i}"),
                    CommandClass::InputOutput,
                    8 << 20,
                    HostMemKind::Pinned,
                ),
            );
        }
        sys.simulate(&sched).unwrap()
    }

    #[test]
    fn renders_rows_for_active_engines() {
        let g = render(&sample_timeline(true), 60);
        assert!(g.contains("H2D"));
        assert!(g.contains("compute"));
        assert!(g.contains("D2H"));
        assert!(!g.contains("host"), "no host work in this schedule");
        assert!(g.contains("total:"));
    }

    #[test]
    fn empty_timeline_renders_placeholder() {
        assert_eq!(render(&Timeline::default(), 40), "(empty timeline)\n");
    }

    #[test]
    fn serial_schedule_never_overlaps_columns() {
        // In a serial timeline, at most one engine is busy per time cell
        // (modulo cell-boundary rounding, hence the generous width).
        let t = sample_timeline(false);
        let g = render(&t, 200);
        let rows: Vec<&str> = g.lines().filter(|l| l.contains('|')).collect();
        let bars: Vec<Vec<u8>> = rows
            .iter()
            .map(|r| {
                let start = r.find('|').unwrap() + 1;
                r[start..r.len() - 1].bytes().collect()
            })
            .collect();
        let width = bars[0].len();
        let mut double_busy = 0;
        for c in 0..width {
            let busy = bars.iter().filter(|b| b[c] == b'#').count();
            if busy > 1 {
                double_busy += 1;
            }
        }
        // Only boundary cells may appear double-busy.
        assert!(
            double_busy <= rows.len() * 12,
            "serial timeline shows {double_busy} overlapping cells:\n{g}"
        );
    }

    #[test]
    fn pipelined_schedule_shows_overlap() {
        let g = render(&sample_timeline(true), 100);
        let rows: Vec<&str> = g.lines().filter(|l| l.contains('|')).collect();
        let bars: Vec<Vec<u8>> = rows
            .iter()
            .map(|r| {
                let start = r.find('|').unwrap() + 1;
                r[start..r.len() - 1].bytes().collect()
            })
            .collect();
        let width = bars[0].len();
        let overlapped =
            (0..width).filter(|&c| bars.iter().filter(|b| b[c] == b'#').count() > 1).count();
        assert!(overlapped > width / 10, "expected visible overlap:\n{g}");
    }

    #[test]
    fn width_is_clamped() {
        let g = render(&sample_timeline(false), 1);
        assert!(g.lines().next().unwrap().len() > 10);
    }
}
