//! Property tests for the discrete-event scheduler: CUDA stream semantics
//! must hold on arbitrary schedules.
//!
//! Schedules are generated from seeded `kfusion-prng` streams; each case
//! index reproduces independently.

use kfusion_prng::Rng;
use kfusion_vgpu::des::{Command, CommandClass, EventId, Schedule};
use kfusion_vgpu::{Engine, GpuSystem, HostMemKind, KernelProfile, LaunchConfig};

const CASES: u64 = 128;

#[derive(Debug, Clone)]
enum Op {
    H2D(u32),
    D2H(u32),
    Kernel(u32),
    Host(u16),
}

fn arb_op(rng: &mut Rng) -> Op {
    match rng.gen_range(0usize..4) {
        0 => Op::H2D(rng.gen_range(1u32..64)),
        1 => Op::D2H(rng.gen_range(1u32..64)),
        2 => Op::Kernel(rng.gen_range(1u32..64)),
        _ => Op::Host(rng.gen_range(1u32..50) as u16),
    }
}

fn arb_streams(rng: &mut Rng, n_streams_max: usize, ops_max: usize) -> Vec<Vec<Op>> {
    let n = rng.gen_range(1..n_streams_max);
    (0..n)
        .map(|_| {
            let len = rng.gen_range(0..ops_max);
            (0..len).map(|_| arb_op(rng)).collect()
        })
        .collect()
}

fn to_command(op: &Op, idx: usize) -> Command {
    match op {
        Op::H2D(mb) => Command::h2d(
            format!("h2d{idx}"),
            CommandClass::InputOutput,
            (*mb as u64) << 20,
            HostMemKind::Pinned,
        ),
        Op::D2H(mb) => Command::d2h(
            format!("d2h{idx}"),
            CommandClass::InputOutput,
            (*mb as u64) << 20,
            HostMemKind::Paged,
        ),
        Op::Kernel(melems) => {
            let spec = kfusion_vgpu::DeviceSpec::tesla_c2070();
            let n = (*melems as u64) << 18;
            let p = KernelProfile::new(format!("k{idx}"))
                .instr_per_elem(12.0)
                .bytes_read_per_elem(4.0)
                .bytes_written_per_elem(2.0);
            Command::kernel(p, LaunchConfig::for_elements(n, &spec), n)
        }
        Op::Host(ms) => Command::host_work(format!("host{idx}"), *ms as f64 * 1e-4),
    }
}

fn build_schedule(streams: &[Vec<Op>]) -> Schedule {
    let mut sched = Schedule::new();
    let mut idx = 0;
    for ops in streams {
        let s = sched.add_stream();
        for op in ops {
            sched.push(s, to_command(op, idx));
            idx += 1;
        }
    }
    sched
}

/// Simulation is deterministic: same schedule, same timeline.
#[test]
fn simulation_is_deterministic() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xD1 << 32 | case);
        let streams = arb_streams(&mut rng, 5, 8);
        let sys = GpuSystem::c2070();
        let sched = build_schedule(&streams);
        let a = sys.simulate(&sched).unwrap();
        let b = sys.simulate(&sched).unwrap();
        assert_eq!(a.spans.len(), b.spans.len(), "case {case}");
        for (x, y) in a.spans.iter().zip(&b.spans) {
            assert_eq!(x, y, "case {case}");
        }
    }
}

/// Commands within one stream execute in issue order (CUDA FIFO
/// semantics), and every command executes exactly once.
#[test]
fn stream_fifo_order_holds() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xD2 << 32 | case);
        let streams = arb_streams(&mut rng, 5, 10);
        let sys = GpuSystem::c2070();
        let sched = build_schedule(&streams);
        let total: usize = streams.iter().map(Vec::len).sum();
        let t = sys.simulate(&sched).unwrap();
        assert_eq!(t.spans.len(), total, "case {case}");
        for (s, ops) in streams.iter().enumerate() {
            let mut spans: Vec<_> = t.spans.iter().filter(|sp| sp.stream == s).collect();
            spans.sort_by_key(|sp| sp.index);
            assert_eq!(spans.len(), ops.len(), "case {case}");
            for w in spans.windows(2) {
                assert!(
                    w[0].end <= w[1].start + 1e-12,
                    "case {case} stream {s}: {:?} overlaps {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }
}

/// No engine ever runs two commands at once.
#[test]
fn engines_never_double_book() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xD3 << 32 | case);
        let streams = arb_streams(&mut rng, 6, 10);
        let sys = GpuSystem::c2070();
        let t = sys.simulate(&build_schedule(&streams)).unwrap();
        for engine in [Engine::Compute, Engine::CopyH2D, Engine::CopyD2H, Engine::Host] {
            let mut spans: Vec<_> = t.spans.iter().filter(|s| s.engine == Some(engine)).collect();
            spans.sort_by(|a, b| a.start.total_cmp(&b.start));
            for w in spans.windows(2) {
                assert!(
                    w[0].end <= w[1].start + 1e-12,
                    "case {case} {engine:?} double-booked: {:?} and {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }
}

/// Makespan is at least every engine's busy time, and at most the sum
/// of all span durations (no time travel either way).
#[test]
fn makespan_bounds() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xD4 << 32 | case);
        let n = rng.gen_range(1usize..5);
        let streams: Vec<Vec<Op>> = (0..n)
            .map(|_| {
                let len = rng.gen_range(1usize..8);
                (0..len).map(|_| arb_op(&mut rng)).collect()
            })
            .collect();
        let sys = GpuSystem::c2070();
        let t = sys.simulate(&build_schedule(&streams)).unwrap();
        let total = t.total();
        for engine in [Engine::Compute, Engine::CopyH2D, Engine::CopyD2H, Engine::Host] {
            assert!(t.busy(engine) <= total + 1e-9, "case {case}");
        }
        let sum: f64 = t.spans.iter().map(|s| s.end - s.start).sum();
        assert!(total <= sum + 1e-9, "case {case}");
    }
}

/// Adding cross-stream event edges never makes the schedule *faster* —
/// on a contention-free link. (With the async-efficiency derate the
/// property is genuinely false: serializing copy-heavy streams can beat
/// derated overlap, which is exactly the effect the model adds.)
#[test]
fn event_edges_only_delay() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xD5 << 32 | case);
        let len_a = rng.gen_range(1usize..6);
        let ops_a: Vec<Op> = (0..len_a).map(|_| arb_op(&mut rng)).collect();
        let len_b = rng.gen_range(1usize..6);
        let ops_b: Vec<Op> = (0..len_b).map(|_| arb_op(&mut rng)).collect();
        let mut sys = GpuSystem::c2070();
        sys.pcie.async_efficiency = 1.0;
        // Free: two independent streams.
        let free = build_schedule(&[ops_a.clone(), ops_b.clone()]);
        let t_free = sys.simulate(&free).unwrap().total();
        // Chained: stream B waits for all of stream A.
        let mut chained = build_schedule(&[ops_a.clone(), vec![]]);
        chained.push(0, Command::record(EventId(0)));
        chained.push(1, Command::wait(EventId(0)));
        for (k, op) in ops_b.iter().enumerate() {
            chained.push(1, to_command(op, 1000 + k));
        }
        let t_chained = sys.simulate(&chained).unwrap().total();
        assert!(
            t_chained >= t_free - 1e-9,
            "case {case}: chaining sped things up: {t_chained} < {t_free}"
        );
    }
}
