//! Property tests for the discrete-event scheduler: CUDA stream semantics
//! must hold on arbitrary schedules.

use kfusion_vgpu::des::{Command, CommandClass, EventId, Schedule};
use kfusion_vgpu::{Engine, GpuSystem, HostMemKind, KernelProfile, LaunchConfig};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    H2D(u32),
    D2H(u32),
    Kernel(u32),
    Host(u16),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u32..64).prop_map(Op::H2D),
        (1u32..64).prop_map(Op::D2H),
        (1u32..64).prop_map(Op::Kernel),
        (1u16..50).prop_map(Op::Host),
    ]
}

fn to_command(op: &Op, idx: usize) -> Command {
    match op {
        Op::H2D(mb) => Command::h2d(
            format!("h2d{idx}"),
            CommandClass::InputOutput,
            (*mb as u64) << 20,
            HostMemKind::Pinned,
        ),
        Op::D2H(mb) => Command::d2h(
            format!("d2h{idx}"),
            CommandClass::InputOutput,
            (*mb as u64) << 20,
            HostMemKind::Paged,
        ),
        Op::Kernel(melems) => {
            let spec = kfusion_vgpu::DeviceSpec::tesla_c2070();
            let n = (*melems as u64) << 18;
            let p = KernelProfile::new(format!("k{idx}"))
                .instr_per_elem(12.0)
                .bytes_read_per_elem(4.0)
                .bytes_written_per_elem(2.0);
            Command::kernel(p, LaunchConfig::for_elements(n, &spec), n)
        }
        Op::Host(ms) => Command::host_work(format!("host{idx}"), *ms as f64 * 1e-4),
    }
}

fn build_schedule(streams: &[Vec<Op>]) -> Schedule {
    let mut sched = Schedule::new();
    let mut idx = 0;
    for ops in streams {
        let s = sched.add_stream();
        for op in ops {
            sched.push(s, to_command(op, idx));
            idx += 1;
        }
    }
    sched
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Simulation is deterministic: same schedule, same timeline.
    #[test]
    fn simulation_is_deterministic(
        streams in proptest::collection::vec(
            proptest::collection::vec(arb_op(), 0..8), 1..5)
    ) {
        let sys = GpuSystem::c2070();
        let sched = build_schedule(&streams);
        let a = sys.simulate(&sched).unwrap();
        let b = sys.simulate(&sched).unwrap();
        prop_assert_eq!(a.spans.len(), b.spans.len());
        for (x, y) in a.spans.iter().zip(&b.spans) {
            prop_assert_eq!(x, y);
        }
    }

    /// Commands within one stream execute in issue order (CUDA FIFO
    /// semantics), and every command executes exactly once.
    #[test]
    fn stream_fifo_order_holds(
        streams in proptest::collection::vec(
            proptest::collection::vec(arb_op(), 0..10), 1..5)
    ) {
        let sys = GpuSystem::c2070();
        let sched = build_schedule(&streams);
        let total: usize = streams.iter().map(Vec::len).sum();
        let t = sys.simulate(&sched).unwrap();
        prop_assert_eq!(t.spans.len(), total);
        for (s, ops) in streams.iter().enumerate() {
            let mut spans: Vec<_> = t.spans.iter().filter(|sp| sp.stream == s).collect();
            spans.sort_by_key(|sp| sp.index);
            prop_assert_eq!(spans.len(), ops.len());
            for w in spans.windows(2) {
                prop_assert!(
                    w[0].end <= w[1].start + 1e-12,
                    "stream {s}: {:?} overlaps {:?}", w[0], w[1]
                );
            }
        }
    }

    /// No engine ever runs two commands at once.
    #[test]
    fn engines_never_double_book(
        streams in proptest::collection::vec(
            proptest::collection::vec(arb_op(), 0..10), 1..6)
    ) {
        let sys = GpuSystem::c2070();
        let t = sys.simulate(&build_schedule(&streams)).unwrap();
        for engine in [Engine::Compute, Engine::CopyH2D, Engine::CopyD2H, Engine::Host] {
            let mut spans: Vec<_> = t
                .spans
                .iter()
                .filter(|s| s.engine == Some(engine))
                .collect();
            spans.sort_by(|a, b| a.start.total_cmp(&b.start));
            for w in spans.windows(2) {
                prop_assert!(
                    w[0].end <= w[1].start + 1e-12,
                    "{engine:?} double-booked: {:?} and {:?}", w[0], w[1]
                );
            }
        }
    }

    /// Makespan is at least every engine's busy time, and at most the sum
    /// of all span durations (no time travel either way).
    #[test]
    fn makespan_bounds(
        streams in proptest::collection::vec(
            proptest::collection::vec(arb_op(), 1..8), 1..5)
    ) {
        let sys = GpuSystem::c2070();
        let t = sys.simulate(&build_schedule(&streams)).unwrap();
        let total = t.total();
        for engine in [Engine::Compute, Engine::CopyH2D, Engine::CopyD2H, Engine::Host] {
            prop_assert!(t.busy(engine) <= total + 1e-9);
        }
        let sum: f64 = t.spans.iter().map(|s| s.end - s.start).sum();
        prop_assert!(total <= sum + 1e-9);
    }

    /// Adding cross-stream event edges never makes the schedule *faster* —
    /// on a contention-free link. (With the async-efficiency derate the
    /// property is genuinely false: serializing copy-heavy streams can beat
    /// derated overlap, which is exactly the effect the model adds.)
    #[test]
    fn event_edges_only_delay(
        ops_a in proptest::collection::vec(arb_op(), 1..6),
        ops_b in proptest::collection::vec(arb_op(), 1..6),
    ) {
        let mut sys = GpuSystem::c2070();
        sys.pcie.async_efficiency = 1.0;
        // Free: two independent streams.
        let free = build_schedule(&[ops_a.clone(), ops_b.clone()]);
        let t_free = sys.simulate(&free).unwrap().total();
        // Chained: stream B waits for all of stream A.
        let mut chained = build_schedule(&[ops_a.clone(), vec![]]);
        chained.push(0, Command::record(EventId(0)));
        chained.push(1, Command::wait(EventId(0)));
        for (k, op) in ops_b.iter().enumerate() {
            chained.push(1, to_command(op, 1000 + k));
        }
        let t_chained = sys.simulate(&chained).unwrap().total();
        prop_assert!(t_chained >= t_free - 1e-9,
            "chaining sped things up: {t_chained} < {t_free}");
    }
}
