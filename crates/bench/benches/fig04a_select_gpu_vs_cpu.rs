//! Figure 4(a): SELECT data throughput, GPU vs. 16-thread CPU, at 10%, 50%
//! and 90% selectivity over random 32-bit integers (PCIe transfer time
//! excluded, as in the paper).
//!
//! Paper headline: the GPU averages 2.88× (10%), 8.80× (50%) and 8.35×
//! (90%) over the CPU, and less-selective filters are faster on both.

use kfusion_bench::{chain, fusion_axis, gbps, print_header, ratio, system, Table};
use kfusion_core::microbench::{run_compute_only, run_cpu};
use kfusion_vgpu::DeviceSpec;

fn main() {
    let _trace = kfusion_bench::trace_session("fig04a_select_gpu_vs_cpu");
    print_header("Fig. 4(a)", "SELECT throughput, GPU vs CPU (compute only)");
    let sys = system();
    let cpu = DeviceSpec::xeon_e5520_pair();
    let sels = [0.1, 0.5, 0.9];

    let mut t = Table::new([
        "elements".to_string(),
        "gpu10 GB/s".into(),
        "gpu50 GB/s".into(),
        "gpu90 GB/s".into(),
        "cpu10 GB/s".into(),
        "cpu50 GB/s".into(),
        "cpu90 GB/s".into(),
    ]);
    let mut ratios = [0.0f64; 3];
    let axis = fusion_axis();
    for &n in &axis {
        let mut cells = vec![n.to_string()];
        let mut gpu_thr = [0.0; 3];
        let mut cpu_thr = [0.0; 3];
        for (k, &s) in sels.iter().enumerate() {
            let c = chain(n, &[s]);
            gpu_thr[k] = run_compute_only(&sys, &c, false).unwrap().throughput_gbps();
            cpu_thr[k] = run_cpu(&cpu, &c).unwrap().throughput_gbps();
        }
        for v in gpu_thr {
            cells.push(gbps(v));
        }
        for v in cpu_thr {
            cells.push(gbps(v));
        }
        for k in 0..3 {
            ratios[k] += gpu_thr[k] / cpu_thr[k];
        }
        t.row(cells);
    }
    t.print();
    println!("average GPU/CPU speedup (paper: 2.88x / 8.80x / 8.35x):");
    for (k, s) in sels.iter().enumerate() {
        println!("  sel {:>3.0}%: {}x", s * 100.0, ratio(ratios[k] / axis.len() as f64));
    }
}
