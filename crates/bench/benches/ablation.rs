//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. **Optimization level** — how much of fusion's gain comes from the
//!    enlarged compiler scope (O0 vs O3 on the fused body)?
//! 2. **Fission segment count** — the pipeline's sweet spot between
//!    per-segment overhead and overlap.
//! 3. **Register budget** — fusion depth under shrinking budgets, showing
//!    the spill cliff the paper warns about (§III-C).
//! 4. **Stream count** — how many streams the fission pipeline needs
//!    (paper: three for the C2070's two copy engines + compute).

use kfusion_bench::{chain, gbps, print_header, ratio, system, Table};
use kfusion_core::cost::{split_select_chain, split_select_chain_summed, FusionBudget};
use kfusion_core::microbench::{run_compute_only, run_with_cards, SelectChain, Strategy};
use kfusion_ir::opt::OptLevel;
use kfusion_relalg::profiles::STAGE_REGS;
use kfusion_vgpu::DeviceSpec;

fn main() {
    let _trace = kfusion_bench::trace_session("ablation");
    let sys = system();

    print_header("Ablation 1", "optimization level x fusion (2x SELECT, compute)");
    let mut t = Table::new(["level", "unfused GB/s", "fused GB/s", "fusion gain"]);
    for level in OptLevel::ALL {
        let mut c = chain(33_554_432, &[0.5, 0.5]);
        c.level = level;
        let unfused = run_compute_only(&sys, &c, false).unwrap().throughput_gbps();
        let fused = run_compute_only(&sys, &c, true).unwrap().throughput_gbps();
        t.row([level.to_string(), gbps(unfused), gbps(fused), ratio(fused / unfused)]);
    }
    t.print();
    println!("the fused kernel gains more from O3 than the separate kernels do");
    println!("(the Table III effect expressed as throughput).\n");

    print_header("Ablation 2", "fission segment count (1 SELECT, 1G elements)");
    let c = chain(1_000_000_000, &[0.5]);
    let cards = c.cardinalities().unwrap();
    let serial = run_with_cards(&sys, &c, Strategy::WithRoundTrip, &cards).unwrap();
    let mut t = Table::new(["segments", "throughput GB/s", "vs serial"]);
    t.row(["serial".to_string(), gbps(serial.throughput_gbps()), ratio(1.0)]);
    for segments in [2u32, 4, 8, 16, 32, 64, 128, 256] {
        let f = run_with_cards(&sys, &c, Strategy::Fission { segments }, &cards).unwrap();
        t.row([
            segments.to_string(),
            gbps(f.throughput_gbps()),
            ratio(f.throughput_gbps() / serial.throughput_gbps()),
        ]);
    }
    t.print();
    println!("few segments: poor overlap; very many: per-segment latency bites.\n");

    print_header("Ablation 3", "register budget vs fusion depth (8x SELECT chain)");
    // Two shapes of chain: thresholds on one key column (the compares
    // collapse when fused — liveness sees ~2 live registers no matter the
    // depth) and predicates on eight distinct columns (every boolean stays
    // live until the final AND). The analyzed splitter
    // (`split_select_chain`, liveness over the fused+O3 body) is compared
    // against the pre-analysis baseline that sums per-predicate counts;
    // rows marked `<- flip` are fusion decisions the dataflow layer changes.
    let same_preds: Vec<_> = (0..8).map(|k| kfusion_relalg::predicates::key_lt(100 + k)).collect();
    let distinct_preds: Vec<_> = (0..8)
        .map(|k| kfusion_relalg::predicates::col_cmp_i64(k, kfusion_ir::CmpOp::Lt, 100 + k as i64))
        .collect();
    let mut t = Table::new([
        "budget (regs)",
        "same-col analyzed",
        "same-col summed",
        "distinct analyzed",
        "distinct summed",
        "",
    ]);
    let mut flips = 0usize;
    for extra in [2u32, 4, 8, 16, 32, 64] {
        let budget = FusionBudget { max_regs_per_thread: STAGE_REGS + extra };
        let kernels = |preds: &[kfusion_ir::KernelBody], summed: bool| {
            let runs = if summed {
                split_select_chain_summed(preds, &budget, OptLevel::O3)
            } else {
                split_select_chain(preds, &budget, OptLevel::O3)
            };
            runs.len()
        };
        let (sa, ss) = (kernels(&same_preds, false), kernels(&same_preds, true));
        let (da, ds) = (kernels(&distinct_preds, false), kernels(&distinct_preds, true));
        let flip = sa != ss || da != ds;
        flips += usize::from(flip);
        t.row([
            (STAGE_REGS + extra).to_string(),
            format!("{sa} kernels"),
            format!("{ss} kernels"),
            format!("{da} kernels"),
            format!("{ds} kernels"),
            if flip { "<- flip".to_string() } else { String::new() },
        ]);
    }
    t.print();
    println!("{flips} budget point(s) where liveness analysis flips the fusion decision:");
    println!("collapsible chains fuse whole where the summed estimate would split them.");
    println!("smaller budgets still split genuinely independent chains — the paper's");
    println!("fusion-depth limit made concrete.\n");

    print_header("Ablation 4", "stream count for the fission pipeline");
    // Vary the device's copy engines to show why 3 streams matter on a
    // 2-engine device: with one engine the H2D/D2H overlap disappears.
    let mut t = Table::new(["copy engines", "fission GB/s"]);
    for engines in [1u32, 2] {
        let mut s2 = system();
        s2.spec.copy_engines = engines;
        let f = run_with_cards(&s2, &c, Strategy::Fission { segments: 32 }, &cards).unwrap();
        t.row([engines.to_string(), gbps(f.throughput_gbps())]);
    }
    t.print();
    println!("two copy engines (the C2070's) let input and output transfers");
    println!("overlap, which is why the paper needs at least three streams.\n");

    print_header("Ablation 5", "heterogeneous CPU+GPU split (the paper's Ocelot direction)");
    let cpu = DeviceSpec::xeon_e5520_pair();
    let hchain = SelectChain::auto(1_000_000_000, &[0.5, 0.5]);
    let mut t = Table::new(["CPU share %", "throughput GB/s"]);
    for pct in [0u32, 5, 10, 15, 20, 30, 40, 50] {
        let r =
            kfusion_core::hetero::run_hetero(&sys, &cpu, &hchain, 20, pct as f64 / 100.0).unwrap();
        t.row([pct.to_string(), gbps(r.throughput_gbps())]);
    }
    t.print();
    let (best_frac, best) = kfusion_core::hetero::best_split(&sys, &cpu, &hchain, 20).unwrap();
    println!(
        "optimal CPU share: {:.0}% -> {} GB/s (GPU pipeline is PCIe-bound, so\nkeeping some segments host-side removes transfer load).\n",
        best_frac * 100.0,
        gbps(best.throughput_gbps())
    );

    print_header("Ablation 6", "cross-query fusion (paper SIII-A: fusing across queries)");
    use kfusion_core::exec::Strategy as XStrategy;
    use kfusion_core::{OpKind, PlanGraph};
    use kfusion_relalg::{gen, predicates};
    let mk_query = |t: u64| {
        let mut g = PlanGraph::new();
        let i = g.input(0);
        g.add(OpKind::Select { pred: predicates::key_lt(t) }, vec![i]);
        g
    };
    let input = gen::random_keys(1 << 22, 99);
    let mut t = Table::new(["queries batched", "speedup vs separate runs"]);
    for k in [2usize, 4, 8] {
        let plans: Vec<PlanGraph> = (0..k).map(|q| mk_query(1 << (28 + q as u64 % 4))).collect();
        let speedup = kfusion_core::multiquery::batching_speedup(
            &sys,
            &plans,
            std::slice::from_ref(&input),
            XStrategy::Fusion,
        )
        .unwrap();
        t.row([k.to_string(), format!("{speedup:.2}x")]);
    }
    t.print();
    println!("queries sharing a scan fuse into one kernel: one upload, one");
    println!("partition/gather skeleton, amortized across the whole batch.");
}
