//! Figure 4(b): measured PCIe 2.0 bandwidth vs. transfer size, for pinned
//! and paged host memory in both directions (the paper's scaled
//! `bandwidthTest`).
//!
//! Paper headlines: effective bandwidth well below the 8 GB/s theoretical
//! peak; pinned ≈ 2× paged; pinned dips at very large sizes because heavy
//! pinning hurts the OS.

use kfusion_bench::{gbps, print_header, system, Table};
use kfusion_vgpu::{Direction, HostMemKind};

fn main() {
    let _trace = kfusion_bench::trace_session("fig04b_pcie_bandwidth");
    print_header("Fig. 4(b)", "PCIe 2.0 x16 effective bandwidth vs transfer size");
    let sys = system();
    let mut t =
        Table::new(["elements(M)", "bytes", "WR pinned", "WR paged", "RD pinned", "RD paged"]);
    // The paper's x-axis is millions of 32-bit elements, 0–400M.
    for m in [1u64, 2, 4, 8, 16, 32, 64, 100, 150, 200, 250, 300, 350, 400] {
        let bytes = m * 1_000_000 * 4;
        let series = [
            (Direction::H2D, HostMemKind::Pinned),
            (Direction::H2D, HostMemKind::Paged),
            (Direction::D2H, HostMemKind::Pinned),
            (Direction::D2H, HostMemKind::Paged),
        ]
        .map(|(d, k)| sys.pcie.bandwidth_gbps(bytes, d, k));
        t.row([
            m.to_string(),
            bytes.to_string(),
            gbps(series[0]),
            gbps(series[1]),
            gbps(series[2]),
            gbps(series[3]),
        ]);
    }
    t.print();
    println!("theoretical peak: 8 GB/s; all measured values sit below it,");
    println!("pinned > paged everywhere, pinned declines at the right edge.");
}
