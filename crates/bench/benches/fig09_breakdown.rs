//! Figure 9: execution-time breakdown of the three §III-B methods into
//! *input/output* transfer, *temporary-data round trip*, and *computation*,
//! normalized to the with-round-trip total, at the paper's three element
//! counts.
//!
//! Paper headlines: PCIe time dominates all three methods; the round-trip
//! share is ~54% of the with-round-trip execution; input/output time is
//! identical across methods.

use kfusion_bench::{chain, print_header, ratio, system, Table};
use kfusion_core::microbench::{run_with_cards, Strategy};
use kfusion_vgpu::CommandClass;

fn main() {
    let _trace = kfusion_bench::trace_session("fig09_breakdown");
    print_header("Fig. 9", "execution-time breakdown (normalized to w/ round trip)");
    let sys = system();
    let mut t =
        Table::new(["elements", "method", "input/output", "round trip", "compute", "total(norm)"]);
    // The paper's three x positions.
    for &n in &[4_194_304u64, 205_520_896, 415_236_096] {
        let c = chain(n, &[0.5, 0.5]);
        let cards = c.cardinalities().unwrap();
        let reports = [
            ("w/ round trip", run_with_cards(&sys, &c, Strategy::WithRoundTrip, &cards).unwrap()),
            (
                "w/o round trip",
                run_with_cards(&sys, &c, Strategy::WithoutRoundTrip, &cards).unwrap(),
            ),
            ("fused", run_with_cards(&sys, &c, Strategy::Fused, &cards).unwrap()),
        ];
        let base = reports[0].1.total();
        for (name, r) in &reports {
            t.row([
                n.to_string(),
                (*name).to_string(),
                ratio(r.class_time(CommandClass::InputOutput) / base),
                ratio(r.class_time(CommandClass::RoundTrip) / base),
                ratio(r.class_time(CommandClass::Compute) / base),
                ratio(r.total() / base),
            ]);
        }
    }
    t.print();
    let c = chain(205_520_896, &[0.5, 0.5]);
    let cards = c.cardinalities().unwrap();
    let rt = run_with_cards(&sys, &c, Strategy::WithRoundTrip, &cards).unwrap();
    println!(
        "round-trip share of w/ round trip at 205M: {:.1}%  (paper: 54.0%)",
        100.0 * rt.class_time(CommandClass::RoundTrip) / rt.total()
    );
}
