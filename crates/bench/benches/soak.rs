//! Soak: sustained mixed TPC-H load through the query service, reported as
//! end-to-end latency percentiles (EXPERIMENTS.md Note 11).
//!
//! Barrier-synced closed-loop clients cycle three real query shapes — Q6
//! (fully fusable aggregation), Q1 (SORT-barrier group-by), Q21 (the
//! paper's join-heavy worst case) — through one [`QueryService`] over a
//! combined table registry, then an open-loop burst submits Q6 via
//! [`QueryTicket::wait_timeout`] polling. Every answer is checked against a
//! standalone execution of the same plan, and the run's observability
//! surface is the product under test:
//!
//! * per-stage latency percentiles from `server_stats()` — queue wait,
//!   batch formation, compile, execute, reply on the host clock; H2D /
//!   compute / D2H engine-time shares on the simulated clock,
//! * the flight recorder and slow-query log,
//! * the `kfusion_server_stage_{host,sim}_seconds` histogram families in
//!   the exported metrics (`kfusion-trace-check --require-histogram`).
//!
//! Writes `BENCH_soak.json` plus the standard `.trace.json` /
//! `.metrics.txt` artifacts. Exits nonzero when any gate fails:
//! p50 ≤ p95 ≤ p99 per stage, the counting invariant
//! `completed == submitted - shed - failed`, stage counts matching the
//! completed count, and the batched simulated-total p99 beating the
//! serial (one-query-at-a-time) baseline p99.
//!
//! ```sh
//! cargo bench --bench soak -- [--scale F] [--clients N] [--rounds R] \
//!     [--open M] [--out PATH]
//! ```

use kfusion_bench::{ratio, system, Table};
use kfusion_core::exec::{execute, ExecConfig, Strategy};
use kfusion_core::graph::{OpKind, PlanGraph};
use kfusion_server::{
    HostStage, QueryService, ServerConfig, ServerError, ServerStats, SimStage, StageSummary,
    HOST_STAGES, SIM_STAGES,
};
use kfusion_tpch::gen::{generate, TpchConfig};
use kfusion_tpch::{q1, q21, q6};
use kfusion_trace::hist::Hist;
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// Q21's nation parameter ("SAUDI ARABIA" in the spec's ordering).
const NATION: i64 = 20;

/// Input offsets of each query's tables in the combined registry:
/// Q1 columns at 0..7, Q6 columns at 7..11, Q21 relations at 11..14.
const Q1_OFF: usize = 0;
const Q6_OFF: usize = 7;
const Q21_OFF: usize = 11;

/// Shift every `Input` node by `offset` — the plan builders number their
/// inputs from zero, the service serves them all from one registry.
fn offset_inputs(mut g: PlanGraph, offset: usize) -> PlanGraph {
    for node in &mut g.nodes {
        if let OpKind::Input { input } = &mut node.kind {
            *input += offset;
        }
    }
    g
}

/// The workload mix, by shape index.
const SHAPE_NAMES: [&str; 3] = ["q6", "q1", "q21"];

fn shape(i: usize) -> PlanGraph {
    match i % 3 {
        0 => offset_inputs(q6::q6_plan(), Q6_OFF),
        1 => offset_inputs(q1::q1_plan(), Q1_OFF),
        _ => offset_inputs(q21::q21_plan(NATION), Q21_OFF),
    }
}

struct GateFailures(Vec<String>);

impl GateFailures {
    fn check(&mut self, ok: bool, msg: String) {
        if !ok {
            self.0.push(msg);
        }
    }
}

fn stage_rows(
    label: &str,
    stages: &[(&'static str, StageSummary)],
    table: &mut Table,
    gates: &mut GateFailures,
    completed: u64,
) -> String {
    let mut json = Vec::new();
    for (name, s) in stages {
        table.row([
            format!("{label}/{name}"),
            s.count.to_string(),
            format!("{:.6}", s.p50),
            format!("{:.6}", s.p95),
            format!("{:.6}", s.p99),
        ]);
        gates.check(
            s.p50 <= s.p95 && s.p95 <= s.p99,
            format!("{label}/{name}: percentiles not monotone ({} / {} / {})", s.p50, s.p95, s.p99),
        );
        gates.check(
            s.count == completed,
            format!("{label}/{name}: stage count {} != completed {completed}", s.count),
        );
        json.push(format!(
            "    {{\"stage\": \"{name}\", \"count\": {}, \"p50_s\": {:.9}, \"p95_s\": {:.9}, \"p99_s\": {:.9}}}",
            s.count, s.p50, s.p95, s.p99
        ));
    }
    json.join(",\n")
}

fn main() {
    let mut sf = 0.05f64;
    let mut clients = 4usize;
    let mut rounds = 12usize;
    let mut open = 8usize;
    let mut out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_soak.json").to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => sf = args.next().and_then(|v| v.parse().ok()).expect("--scale F"),
            "--clients" => clients = args.next().and_then(|v| v.parse().ok()).expect("--clients N"),
            "--rounds" => rounds = args.next().and_then(|v| v.parse().ok()).expect("--rounds R"),
            "--open" => open = args.next().and_then(|v| v.parse().ok()).expect("--open M"),
            "--out" => out_path = args.next().expect("--out PATH"),
            "--bench" => {}
            other => {
                eprintln!(
                    "unknown arg {other:?} (try --scale F, --clients N, --rounds R, --open M, --out PATH)"
                );
                std::process::exit(2);
            }
        }
    }
    assert!(clients >= 2, "soak needs at least 2 clients to batch");

    println!("== soak: mixed TPC-H load, latency percentiles end-to-end ==");
    println!("scale {sf}; {clients} closed-loop clients x {rounds} rounds; {open} open-loop\n");
    let _trace = kfusion_bench::trace_session("soak");

    let sys = system();
    let db = generate(TpchConfig::scale(sf));
    let mut tables = q1::q1_inputs(&db);
    tables.extend(q6::q6_inputs(&db));
    tables.extend(q21::q21_inputs(&db));
    assert_eq!(tables.len(), Q21_OFF + 3);
    let exec_cfg = ExecConfig::new(Strategy::Fusion, &sys);

    // Standalone ground truth per shape: the expected answer and the
    // simulated cost a one-query-at-a-time server would pay.
    let mut expected = Vec::new();
    let mut per_shape_sim = Vec::new();
    for i in 0..3 {
        let r = execute(&sys, &shape(i), &tables, &exec_cfg).expect("standalone execution");
        per_shape_sim.push(r.report.total());
        expected.push(r.output);
    }

    let mut cfg = ServerConfig::new(exec_cfg);
    cfg.workers = 2;
    cfg.max_batch = clients;
    cfg.window = Duration::from_millis(20);
    cfg.submit_timeout = Duration::from_secs(10);
    cfg.slow_query_threshold = Some(Duration::from_millis(1));

    let t0 = Instant::now();
    let barrier = Barrier::new(clients);
    let (shapes_run, timeout_polls, stats) = QueryService::serve(&sys, &tables, &cfg, |client| {
        // Closed loop: every round, all clients submit the same shape at a
        // barrier, so each window batches `clients` structurally identical
        // queries (the cross-query fusion case the service exists for).
        let per_client: Vec<Vec<usize>> = std::thread::scope(|s| {
            (0..clients)
                .map(|_| {
                    s.spawn(|| {
                        let mut ran = Vec::with_capacity(rounds);
                        for round in 0..rounds {
                            let i = round % 3;
                            barrier.wait();
                            let out = client.query(shape(i)).expect("closed-loop query");
                            assert_eq!(
                                out.output, expected[i],
                                "served answer diverged from standalone ({})",
                                SHAPE_NAMES[i]
                            );
                            ran.push(i);
                        }
                        ran
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .collect()
        });

        // Open loop: burst-submit Q6 tickets, then poll each with a short
        // wait_timeout — the non-consuming timeout path under real load.
        let tickets: Vec<_> =
            (0..open).map(|_| client.submit(shape(0)).expect("open-loop submit")).collect();
        let mut polls = 0u64;
        for t in tickets {
            let out = loop {
                match t.wait_timeout(Duration::from_micros(200)) {
                    Ok(out) => break out,
                    Err(ServerError::WaitTimedOut) => polls += 1,
                    Err(e) => panic!("open-loop query failed: {e}"),
                }
            };
            assert_eq!(out.output, expected[0], "open-loop answer diverged from standalone");
        }

        let shapes_run: Vec<usize> =
            per_client.into_iter().flatten().chain(std::iter::repeat_n(0, open)).collect();
        (shapes_run, polls, client.server_stats())
    });
    let wall = t0.elapsed().as_secs_f64();

    report(
        &stats,
        &shapes_run,
        &per_shape_sim,
        timeout_polls,
        sf,
        clients,
        rounds,
        open,
        wall,
        &out_path,
    );
}

#[allow(clippy::too_many_arguments)]
fn report(
    stats: &ServerStats,
    shapes_run: &[usize],
    per_shape_sim: &[f64],
    timeout_polls: u64,
    sf: f64,
    clients: usize,
    rounds: usize,
    open: usize,
    wall: f64,
    out_path: &str,
) {
    let mut gates = GateFailures(Vec::new());

    // The serial baseline distribution: what each completed query would
    // have cost executed alone, through the same histogram quantization as
    // the service's batched sim-total stage.
    let mut serial = Hist::new();
    for &i in shapes_run {
        serial.record(per_shape_sim[i]);
    }
    let serial_p99 = serial.quantile(0.99);
    let batched = stats.sim_stage(SimStage::Total);
    let mean_batch = if stats.recent.is_empty() {
        0.0
    } else {
        stats.recent.iter().map(|r| r.batch_size as f64).sum::<f64>() / stats.recent.len() as f64
    };

    let mut table = Table::new(["stage", "count", "p50 (s)", "p95 (s)", "p99 (s)"]);
    let host: Vec<(&'static str, StageSummary)> =
        HOST_STAGES.iter().map(|&s| (s.as_str(), stats.host_stage(s))).collect();
    let sim: Vec<(&'static str, StageSummary)> =
        SIM_STAGES.iter().map(|&s| (s.as_str(), stats.sim_stage(s))).collect();
    let host_json = stage_rows("host", &host, &mut table, &mut gates, stats.completed);
    let sim_json = stage_rows("sim", &sim, &mut table, &mut gates, stats.completed);
    table.print();
    println!();
    println!(
        "submitted {} completed {} shed_overload {} shed_deadline {} failed {}",
        stats.submitted, stats.completed, stats.shed_overload, stats.shed_deadline, stats.failed
    );
    println!(
        "cache hit rate {:.3} ({} hits / {} misses); mean batch {:.2}",
        stats.cache_hit_rate, stats.cache.hits, stats.cache.misses, mean_batch
    );
    println!(
        "sim total p99: batched {:.6}s vs serial {:.6}s ({}x); {} slow-log entries; {} flight records; {} wait_timeout polls",
        batched.p99,
        serial_p99,
        ratio(serial_p99 / batched.p99),
        stats.slow.len(),
        stats.recent.len(),
        timeout_polls
    );

    let total = stats.completed + stats.shed_overload + stats.shed_deadline + stats.failed;
    gates.check(
        stats.submitted == total,
        format!("counting invariant broken: submitted {} != accounted {total}", stats.submitted),
    );
    gates.check(
        stats.completed == shapes_run.len() as u64,
        format!("completed {} != queries run {}", stats.completed, shapes_run.len()),
    );
    gates.check(
        batched.p99 < serial_p99,
        format!("batched sim p99 {:.6}s not below serial baseline {:.6}s", batched.p99, serial_p99),
    );
    gates.check(mean_batch > 1.0, format!("no cross-query batching (mean batch {mean_batch:.2})"));
    // The slow log must have seen the expensive shapes (threshold 1 ms host
    // total is far under a batched Q21 at any soak scale).
    gates.check(!stats.slow.is_empty(), "slow-query log is empty".to_string());
    gates.check(
        stats.host_stage(HostStage::Total).count == stats.completed,
        "host total count != completed".to_string(),
    );

    let json = format!(
        "{{\n  \"bench\": \"soak\",\n  \"scale\": {sf},\n  \"clients\": {clients},\n  \"rounds\": {rounds},\n  \"open_loop\": {open},\n  \"submitted\": {},\n  \"completed\": {},\n  \"shed_overload\": {},\n  \"shed_deadline\": {},\n  \"failed\": {},\n  \"cache_hits\": {},\n  \"cache_misses\": {},\n  \"plan_compiles\": {},\n  \"cache_hit_rate\": {:.4},\n  \"mean_batch\": {:.3},\n  \"wait_timeout_polls\": {timeout_polls},\n  \"slow_log_entries\": {},\n  \"flight_records\": {},\n  \"serial_sim_p99_s\": {:.9},\n  \"batched_sim_total_p99_s\": {:.9},\n  \"host_stages\": [\n{host_json}\n  ],\n  \"sim_stages\": [\n{sim_json}\n  ],\n  \"wall_s\": {wall:.3}\n}}\n",
        stats.submitted,
        stats.completed,
        stats.shed_overload,
        stats.shed_deadline,
        stats.failed,
        stats.cache.hits,
        stats.cache.misses,
        stats.cache.compiles,
        stats.cache_hit_rate,
        mean_batch,
        stats.slow.len(),
        stats.recent.len(),
        serial.quantile(0.99),
        batched.p99,
    );
    std::fs::write(out_path, json).expect("write JSON artifact");
    println!("\nwrote {out_path}");

    if !gates.0.is_empty() {
        for g in &gates.0 {
            eprintln!("FAIL: {g}");
        }
        std::process::exit(1);
    }
    println!("all soak gates passed");
}
