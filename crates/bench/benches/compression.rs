//! Extension study: transfer compression (Fang, He & Luo VLDB'10 — the
//! approach the paper's related work contrasts with) combined with kernel
//! fusion.
//!
//! Four ways to run one 50% SELECT over compressible 20-bit keys:
//!
//! 1. plain — raw 4 B/element over PCIe, filter, gather, out;
//! 2. compressed — bit-packed transfer, decompress kernel to global
//!    memory, then the same SELECT;
//! 3. comp+fused — the decompress stage FUSES into the filter: packed
//!    bytes in, expanded values live only in registers (the paper's
//!    Fig. 7(c) benefit applied to the decompressor);
//! 4. comp+fused+fission — and pipelined over three streams.
//!
//! Compression attacks the same bottleneck as fusion/fission (PCIe), and
//! the three compose.

use kfusion_bench::{gbps, print_header, system, Table};
use kfusion_core::microbench::{SelectChain, CPU_GATHER_BW, FISSION_STREAMS};
use kfusion_prng::Rng;
use kfusion_relalg::compress::{best_for, decompress_kernel};
use kfusion_relalg::profiles;
use kfusion_vgpu::{Command, CommandClass, HostMemKind, LaunchConfig, Schedule};

fn main() {
    let _trace = kfusion_bench::trace_session("compression");
    print_header("Extension", "transfer compression x kernel fusion (1x SELECT, 50%)");
    let sys = system();
    let n: usize = 1 << 24;
    // 20-bit keys: realistically compressible dictionary-coded data.
    let mut rng = Rng::seed_from_u64(77);
    let keys: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1u64 << 20)).collect();
    let block = best_for(&keys);
    println!(
        "column: {} elements, scheme {}, {} bits/elem, wire {:.1} MB vs raw {:.1} MB ({:.2}x)\n",
        n,
        block.scheme,
        block.bits,
        block.wire_bytes() as f64 / 1e6,
        n as f64 * 4.0 / 1e6,
        block.ratio_vs_u32()
    );

    let chain = SelectChain::auto(n as u64, &[0.5]);
    let cards = chain.cardinalities().unwrap();
    let sel = cards[1] as f64 / cards[0] as f64;
    let row = 4.0f64;
    let out_bytes = (cards[1] as f64 * row) as u64;
    let pred = chain.predicate(0);
    let launch_n = |elems: u64| LaunchConfig::for_elements(elems.max(1), &sys.spec);

    let filter = profiles::select_filter("filter", &pred, chain.level, row, sel);
    let gather = profiles::select_gather("gather", row);

    // 1. plain
    let plain = Schedule::serial(vec![
        Command::h2d("in", CommandClass::InputOutput, (n as f64 * row) as u64, HostMemKind::Paged),
        Command::kernel(filter.clone(), launch_n(n as u64), n as u64),
        Command::kernel(gather.clone(), launch_n(cards[1]), cards[1]),
        Command::d2h("out", CommandClass::InputOutput, out_bytes, HostMemKind::Paged),
    ]);

    // 2. compressed transfer + separate decompress kernel
    let decomp = decompress_kernel(&block, row, false);
    let compressed = Schedule::serial(vec![
        Command::h2d(
            "in_packed",
            CommandClass::InputOutput,
            block.wire_bytes(),
            HostMemKind::Paged,
        ),
        Command::kernel(decomp, launch_n(n as u64), n as u64),
        Command::kernel(filter.clone(), launch_n(n as u64), n as u64),
        Command::kernel(gather.clone(), launch_n(cards[1]), cards[1]),
        Command::d2h("out", CommandClass::InputOutput, out_bytes, HostMemKind::Paged),
    ]);

    // 3. decompress fused into the filter: packed bytes in, registers out.
    let fused_decomp = decompress_kernel(&block, row, true);
    let fused_filter = profiles::select_filter("fused_dfilter", &pred, chain.level, 0.0, sel)
        .instr_per_elem(fused_decomp.instr_per_elem + filter.instr_per_elem)
        .bytes_read_per_elem(fused_decomp.bytes_read_per_elem);
    let comp_fused = Schedule::serial(vec![
        Command::h2d(
            "in_packed",
            CommandClass::InputOutput,
            block.wire_bytes(),
            HostMemKind::Paged,
        ),
        Command::kernel(fused_filter.clone(), launch_n(n as u64), n as u64),
        Command::kernel(gather.clone(), launch_n(cards[1]), cards[1]),
        Command::d2h("out", CommandClass::InputOutput, out_bytes, HostMemKind::Paged),
    ]);

    // 4. ...and fissioned over three streams.
    let segments = 8u64;
    let mut pipe = Schedule::new();
    for _ in 0..FISSION_STREAMS {
        pipe.add_stream();
    }
    let host = pipe.add_stream();
    for s in 0..segments {
        let st = (s % FISSION_STREAMS as u64) as usize;
        let seg_n = n as u64 / segments;
        let seg_out = cards[1] / segments;
        pipe.push(
            st,
            Command::h2d(
                format!("in_packed[{s}]"),
                CommandClass::InputOutput,
                block.wire_bytes() / segments,
                HostMemKind::Pinned,
            ),
        );
        let mut f = fused_filter.clone();
        f.name = format!("fused_dfilter[{s}]");
        pipe.push(st, Command::kernel(f, launch_n(seg_n), seg_n));
        let mut g = gather.clone();
        g.name = format!("gather[{s}]");
        pipe.push(st, Command::kernel(g, launch_n(seg_out), seg_out));
        pipe.push(
            st,
            Command::d2h(
                format!("out[{s}]"),
                CommandClass::InputOutput,
                out_bytes / segments,
                HostMemKind::Pinned,
            ),
        );
        let ev = kfusion_vgpu::des::EventId(s as u32);
        pipe.push(st, Command::record(ev));
        pipe.push(host, Command::wait(ev));
        pipe.push(
            host,
            Command::host_work(
                format!("cpu_gather[{s}]"),
                (out_bytes / segments) as f64 / CPU_GATHER_BW,
            ),
        );
    }

    let mut t = Table::new(["method", "throughput GB/s", "vs plain"]);
    let base = sys.simulate(&plain).unwrap().total();
    for (name, sched) in [
        ("plain", plain),
        ("compressed", compressed),
        ("compressed+fused", comp_fused),
        ("compressed+fused+fission", pipe),
    ] {
        let total = sys.simulate(&sched).unwrap().total();
        t.row([
            name.to_string(),
            gbps(n as f64 * row / total / 1e9),
            format!("{:.2}x", base / total),
        ]);
    }
    t.print();
    println!("compression shrinks the PCIe term; fusing the decompressor removes");
    println!("its global-memory round trip; fission hides what transfer remains.");
}
