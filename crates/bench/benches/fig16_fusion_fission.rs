//! Figure 16: two back-to-back 50% SELECTs on very large data under four
//! methods — serial, fusion only, fission only, and fusion+fission
//! (Fig. 15's combined pipeline with the CPU-side gather).
//!
//! Paper headlines: fusion+fission beats serial by 41.4%, fusion-only by
//! 31.3%, and fission-only by 10.1% on average.

use kfusion_bench::{chain, fission_axis, gbps, print_header, system, Table};
use kfusion_core::microbench::{run_with_cards, Strategy};

fn main() {
    let _trace = kfusion_bench::trace_session("fig16_fusion_fission");
    print_header("Fig. 16", "serial vs fusion vs fission vs fusion+fission (2x SELECT)");
    let sys = system();
    let mut t = Table::new([
        "elements(M)",
        "fusion+fission GB/s",
        "fission GB/s",
        "fusion GB/s",
        "serial GB/s",
    ]);
    let (mut vs_serial, mut vs_fusion, mut vs_fission) = (0.0, 0.0, 0.0);
    let axis = fission_axis();
    for &n in &axis {
        let c = chain(n, &[0.5, 0.5]);
        let cards = c.cardinalities().unwrap();
        let segments = (n / 64_000_000).max(8) as u32;
        let serial = run_with_cards(&sys, &c, Strategy::WithoutRoundTrip, &cards).unwrap();
        let fusion = run_with_cards(&sys, &c, Strategy::Fused, &cards).unwrap();
        let fission = run_with_cards(&sys, &c, Strategy::Fission { segments }, &cards).unwrap();
        let both = run_with_cards(&sys, &c, Strategy::FusedFission { segments }, &cards).unwrap();
        vs_serial += both.throughput_gbps() / serial.throughput_gbps();
        vs_fusion += both.throughput_gbps() / fusion.throughput_gbps();
        vs_fission += both.throughput_gbps() / fission.throughput_gbps();
        t.row([
            (n / 1_000_000).to_string(),
            gbps(both.throughput_gbps()),
            gbps(fission.throughput_gbps()),
            gbps(fusion.throughput_gbps()),
            gbps(serial.throughput_gbps()),
        ]);
    }
    t.print();
    let k = axis.len() as f64;
    println!("fusion+fission vs serial : +{:.1}%  (paper: +41.4%)", (vs_serial / k - 1.0) * 100.0);
    println!("fusion+fission vs fusion : +{:.1}%  (paper: +31.3%)", (vs_fusion / k - 1.0) * 100.0);
    println!("fusion+fission vs fission: +{:.1}%  (paper: +10.1%)", (vs_fission / k - 1.0) * 100.0);
}
