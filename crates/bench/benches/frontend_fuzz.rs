//! Differential fuzz harness for the SQL front end — the CI
//! `frontend-fuzz-smoke` gate.
//!
//! Drives [`kfusion_frontend::fuzz::fuzz`]: seeded random well-typed
//! queries over random catalogs, each executed across the full engine ×
//! strategy × opt-level matrix (scalar vs batch engine; serial, fusion,
//! fusion+fission; O1–O3) and compared **bit for bit** against the scalar
//! serial O1 oracle. A mismatch is minimized to a replayable SQL string +
//! seed and printed; the harness then exits nonzero.
//!
//! Writes `BENCH_frontend_fuzz.json` at the repo root (override with
//! `--out`): `{queries, executions, mismatches, seed0, rows}`.
//!
//! ```sh
//! cargo bench --bench frontend_fuzz -- [--queries N] [--rows N] [--seed0 N] [--out PATH]
//! ```

use kfusion_frontend::fuzz::fuzz;
use kfusion_vgpu::GpuSystem;
use std::time::Instant;

fn main() {
    let mut queries = 500usize;
    let mut rows = 96usize;
    let mut seed0 = 0u64;
    let mut out_path =
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_frontend_fuzz.json").to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--queries" => queries = args.next().and_then(|v| v.parse().ok()).expect("--queries N"),
            "--rows" => rows = args.next().and_then(|v| v.parse().ok()).expect("--rows N"),
            "--seed0" => seed0 = args.next().and_then(|v| v.parse().ok()).expect("--seed0 N"),
            "--out" => out_path = args.next().expect("--out PATH"),
            "--bench" => {}
            other => {
                eprintln!(
                    "unknown arg {other:?} (try --queries N, --rows N, --seed0 N, --out PATH)"
                );
                std::process::exit(2);
            }
        }
    }

    println!("== frontend_fuzz: SQL front end vs scalar oracle ==");
    println!("{queries} queries, tables up to {rows} rows, seeds from {seed0}\n");

    let system = GpuSystem::c2070();
    let start = Instant::now();
    let report = fuzz(&system, queries, rows, seed0);
    let wall = start.elapsed().as_secs_f64();

    println!(
        "{} queries compiled, {} differential executions, {} mismatches in {:.2}s",
        report.queries,
        report.executions,
        report.failures.len(),
        wall
    );

    let json = format!(
        "{{\n  \"bench\": \"frontend_fuzz\",\n  \"queries\": {},\n  \"executions\": {},\n  \"mismatches\": {},\n  \"seed0\": {seed0},\n  \"rows\": {rows},\n  \"wall_s\": {wall:.3}\n}}\n",
        report.queries,
        report.executions,
        report.failures.len()
    );
    std::fs::write(&out_path, json).expect("write JSON artifact");
    println!("wrote {out_path}");

    if !report.failures.is_empty() {
        for f in &report.failures {
            eprintln!("\n{f}");
        }
        eprintln!(
            "\nFAIL: {} of {} fuzzed queries diverged from the scalar oracle",
            report.failures.len(),
            report.queries
        );
        std::process::exit(1);
    }
}
