//! Figure 11: sensitivity of kernel fusion.
//!
//! (a) to the number of fused kernels: GPU throughput of 3-SELECT vs
//! 2-SELECT chains, fused vs unfused. Paper: fusing three achieves 2.35×
//! (vs unfused), fusing two 1.80×.
//!
//! (b) to the data selection rate: fused vs unfused 2-chains at 10% and
//! 90% selectivity. Paper: fusion's benefit grows with the fraction of
//! data selected, because more data movement is eliminated.

use kfusion_bench::{chain, fusion_axis, gbps, print_header, ratio, system, Table};
use kfusion_core::microbench::run_compute_only;

fn main() {
    let _trace = kfusion_bench::trace_session("fig11_sensitivity");
    print_header("Fig. 11(a)", "sensitivity to the number of fused SELECTs (compute)");
    let sys = system();
    let axis = fusion_axis();

    let mut t = Table::new([
        "elements",
        "fusion 3 GB/s",
        "no fusion 3 GB/s",
        "fusion 2 GB/s",
        "no fusion 2 GB/s",
    ]);
    let (mut g2, mut g3) = (0.0, 0.0);
    for &n in &axis {
        let c2 = chain(n, &[0.5, 0.5]);
        let c3 = chain(n, &[0.5, 0.5, 0.5]);
        let f3 = run_compute_only(&sys, &c3, true).unwrap().throughput_gbps();
        let u3 = run_compute_only(&sys, &c3, false).unwrap().throughput_gbps();
        let f2 = run_compute_only(&sys, &c2, true).unwrap().throughput_gbps();
        let u2 = run_compute_only(&sys, &c2, false).unwrap().throughput_gbps();
        g3 += f3 / u3;
        g2 += f2 / u2;
        t.row([n.to_string(), gbps(f3), gbps(u3), gbps(f2), gbps(u2)]);
    }
    t.print();
    let k = axis.len() as f64;
    println!("average fusion gain, 3 SELECTs: {}x  (paper: 2.35x)", ratio(g3 / k));
    println!("average fusion gain, 2 SELECTs: {}x  (paper: 1.80x)", ratio(g2 / k));
    println!();

    print_header("Fig. 11(b)", "sensitivity to the data selection rate (compute)");
    let mut t = Table::new([
        "elements",
        "fusion(10%) GB/s",
        "no fusion(10%) GB/s",
        "fusion(90%) GB/s",
        "no fusion(90%) GB/s",
    ]);
    let (mut lo, mut hi) = (0.0, 0.0);
    for &n in &axis {
        let c10 = chain(n, &[0.1, 0.1]);
        let c90 = chain(n, &[0.9, 0.9]);
        let f10 = run_compute_only(&sys, &c10, true).unwrap().throughput_gbps();
        let u10 = run_compute_only(&sys, &c10, false).unwrap().throughput_gbps();
        let f90 = run_compute_only(&sys, &c90, true).unwrap().throughput_gbps();
        let u90 = run_compute_only(&sys, &c90, false).unwrap().throughput_gbps();
        lo += f10 / u10;
        hi += f90 / u90;
        t.row([n.to_string(), gbps(f10), gbps(u10), gbps(f90), gbps(u90)]);
    }
    t.print();
    println!("average fusion gain at 10% selected: {}x", ratio(lo / k));
    println!("average fusion gain at 90% selected: {}x", ratio(hi / k));
    println!("paper: the benefit increases with the fraction of data selected.");
}
