//! Figure 2: the common operator combinations the paper identifies in
//! TPC-H as fusion candidates. This harness runs each pattern (a)–(h)
//! through the fusion pass, reports the resulting kernel-group structure,
//! and compares serial vs fused execution on a synthetic workload —
//! demonstrating that every pattern fuses and benefits.

use kfusion_bench::{ms, print_header, ratio, system, Table};
use kfusion_core::exec::{execute, ExecConfig, Strategy};
use kfusion_core::fusion::fuse_plan;
use kfusion_core::{patterns, FusionBudget, OpKind};
use kfusion_ir::opt::OptLevel;
use kfusion_relalg::{gen, Column, Relation};

fn inputs_for(g: &kfusion_core::PlanGraph, rows: usize) -> Vec<Relation> {
    let n_inputs = g.nodes.iter().filter(|n| matches!(n.kind, OpKind::Input { .. })).count();
    (0..n_inputs)
        .map(|k| {
            let mut t = gen::sorted_table(rows, 2, k as u64);
            t.cols[0] = Column::F64((0..rows).map(|i| (i % 1000) as f64).collect());
            t.cols[1] = Column::F64((0..rows).map(|i| (i % 90) as f64 * 0.01).collect());
            t
        })
        .collect()
}

fn main() {
    let _trace = kfusion_bench::trace_session("fig02_patterns");
    print_header("Fig. 2", "fusable operator patterns: structure and benefit");
    let sys = system();
    let budget = FusionBudget::for_device(&sys.spec);
    let mut t = Table::new([
        "pattern",
        "operators",
        "fused kernels",
        "serial (ms)",
        "fused (ms)",
        "speedup",
    ]);
    for (name, g) in patterns::all() {
        let plan = fuse_plan(&g, &budget, OptLevel::O3);
        let n_ops = g.nodes.iter().filter(|n| !matches!(n.kind, OpKind::Input { .. })).count();
        let inputs = inputs_for(&g, 400_000);
        let serial = execute(&sys, &g, &inputs, &ExecConfig::new(Strategy::Serial, &sys)).unwrap();
        let fused = execute(&sys, &g, &inputs, &ExecConfig::new(Strategy::Fusion, &sys)).unwrap();
        t.row([
            name.to_string(),
            n_ops.to_string(),
            plan.groups.len().to_string(),
            ms(serial.report.total()),
            ms(fused.report.total()),
            ratio(serial.report.total() / fused.report.total()),
        ]);
    }
    t.print();
    println!("every pattern collapses to a single fused kernel and speeds up.");
}
