//! Concurrent query-service load: admission batching vs one-at-a-time.
//!
//! Closed-loop clients hammer a [`kfusion_server::QueryService`] with a
//! small mix of selection-chain shapes over one shared table. At each
//! concurrency level the harness reports
//!
//! * the **serial** baseline — the exact simulated cost of executing every
//!   submitted plan alone, summed (what a one-query-at-a-time server pays),
//! * the **batched** simulated total — `sum(sim_batch_total / batch_size)`
//!   over the outcomes, which reproduces the aggregate simulated time of
//!   the windows the service actually dispatched,
//! * the resulting speedup, the mean batch size, and the plan-cache
//!   counters.
//!
//! Every answer is checked against the standalone ground truth, so the
//! numbers only count executions that stayed byte-identical.
//!
//! Writes `BENCH_server_load.json` at the repo root (override with
//! `--out`) plus the standard `BENCH_server_load.trace.json` /
//! `.metrics.txt` artifacts — the trace carries the service's `server`
//! track (queue_wait / batch_form / execute spans) for
//! `kfusion-trace-check --require-tracks server`. Exits nonzero if the
//! top concurrency level fails to beat the serial baseline — the CI
//! server-load-smoke gate.
//!
//! ```sh
//! cargo bench --bench server_load -- [--rows N] [--queries M] [--out PATH]
//! ```

use kfusion_bench::{ratio, Table};
use kfusion_core::exec::{execute, ExecConfig, Strategy};
use kfusion_core::graph::{OpKind, PlanGraph};
use kfusion_relalg::{gen, predicates, Relation};
use kfusion_server::{QueryService, ServerConfig};
use kfusion_vgpu::GpuSystem;
use std::time::{Duration, Instant};

const SHAPES: usize = 4;

/// Selection chains of varying depth/constants — distinct plan shapes that
/// all scan the one shared table, so any two can batch.
fn shape(i: usize) -> PlanGraph {
    let mut g = PlanGraph::new();
    let mut cur = g.input(0);
    for d in 0..(1 + i % SHAPES) {
        cur = g.add(
            OpKind::Select { pred: predicates::key_lt(1 << (28 + i % SHAPES + d)) },
            vec![cur],
        );
    }
    g
}

struct Level {
    clients: usize,
    queries: usize,
    serial_sim: f64,
    batched_sim: f64,
    mean_batch: f64,
    hits: u64,
    misses: u64,
    compiles: u64,
    wall: f64,
}

fn run_level(
    system: &GpuSystem,
    tables: &[Relation],
    exec_cfg: &ExecConfig,
    expected: &[Relation],
    per_shape_sim: &[f64],
    clients: usize,
    queries_per_client: usize,
) -> Level {
    let mut cfg = ServerConfig::new(*exec_cfg);
    cfg.workers = 2;
    cfg.max_batch = clients.max(2);
    cfg.window = Duration::from_millis(20);
    cfg.submit_timeout = Duration::from_secs(5);

    let t0 = Instant::now();
    let (outcomes, stats) = QueryService::serve(system, tables, &cfg, |client| {
        let per_client: Vec<Vec<(usize, kfusion_server::QueryOutcome)>> = std::thread::scope(|s| {
            (0..clients)
                .map(|t| {
                    s.spawn(move || {
                        (0..queries_per_client)
                            .map(|r| {
                                let i = (t + r) % SHAPES;
                                (i, client.query(shape(i)).expect("query succeeds"))
                            })
                            .collect()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .collect()
        });
        (per_client, client.cache_stats())
    });
    let wall = t0.elapsed().as_secs_f64();

    let mut serial_sim = 0.0;
    let mut batched_sim = 0.0;
    let mut batch_sum = 0usize;
    let mut n = 0usize;
    for (i, out) in outcomes.iter().flatten() {
        assert_eq!(
            out.output, expected[*i],
            "served answer diverged from standalone execution (shape {i})"
        );
        serial_sim += per_shape_sim[*i];
        batched_sim += out.sim_batch_total / out.batch_size as f64;
        batch_sum += out.batch_size;
        n += 1;
    }
    assert_eq!(n, clients * queries_per_client);
    Level {
        clients,
        queries: n,
        serial_sim,
        batched_sim,
        mean_batch: batch_sum as f64 / n as f64,
        hits: stats.hits,
        misses: stats.misses,
        compiles: stats.compiles,
        wall,
    }
}

fn main() {
    let mut rows = 1usize << 20;
    let mut queries_per_client = 6usize;
    let mut out_path =
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_server_load.json").to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--rows" => rows = args.next().and_then(|v| v.parse().ok()).expect("--rows N"),
            "--queries" => {
                queries_per_client = args.next().and_then(|v| v.parse().ok()).expect("--queries M")
            }
            "--out" => out_path = args.next().expect("--out PATH"),
            "--bench" => {}
            other => {
                eprintln!("unknown arg {other:?} (try --rows N, --queries M, --out PATH)");
                std::process::exit(2);
            }
        }
    }

    println!("== server_load: admission batching vs one-at-a-time ==");
    println!("shared table: {rows} rows; {queries_per_client} queries per client\n");
    let _trace = kfusion_bench::trace_session("server_load");

    let system = GpuSystem::c2070();
    let tables = [gen::random_keys(rows, 23)];
    let exec_cfg = ExecConfig::new(Strategy::Fusion, &system);

    // Standalone ground truth and per-shape simulated cost, once per shape.
    let mut expected = Vec::with_capacity(SHAPES);
    let mut per_shape_sim = Vec::with_capacity(SHAPES);
    for i in 0..SHAPES {
        let r = execute(&system, &shape(i), &tables, &exec_cfg).expect("standalone execution");
        per_shape_sim.push(r.report.total());
        expected.push(r.output);
    }

    let mut table = Table::new([
        "clients",
        "queries",
        "serial_sim_ms",
        "batched_sim_ms",
        "speedup",
        "mean_batch",
        "cache_hits",
        "compiles",
        "wall_ms",
    ]);
    let mut levels = Vec::new();
    for clients in [2usize, 4, 8] {
        let l = run_level(
            &system,
            &tables,
            &exec_cfg,
            &expected,
            &per_shape_sim,
            clients,
            queries_per_client,
        );
        table.row([
            l.clients.to_string(),
            l.queries.to_string(),
            format!("{:.3}", l.serial_sim * 1e3),
            format!("{:.3}", l.batched_sim * 1e3),
            ratio(l.serial_sim / l.batched_sim),
            format!("{:.2}", l.mean_batch),
            l.hits.to_string(),
            l.compiles.to_string(),
            format!("{:.1}", l.wall * 1e3),
        ]);
        levels.push(l);
    }
    table.print();

    let body: Vec<String> = levels
        .iter()
        .map(|l| {
            format!(
                "    {{\"clients\": {}, \"queries\": {}, \"serial_sim_s\": {:.6}, \"batched_sim_s\": {:.6}, \"speedup\": {:.3}, \"mean_batch\": {:.3}, \"cache_hits\": {}, \"cache_misses\": {}, \"plan_compiles\": {}, \"wall_s\": {:.3}}}",
                l.clients,
                l.queries,
                l.serial_sim,
                l.batched_sim,
                l.serial_sim / l.batched_sim,
                l.mean_batch,
                l.hits,
                l.misses,
                l.compiles,
                l.wall
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"server_load\",\n  \"rows\": {rows},\n  \"queries_per_client\": {queries_per_client},\n  \"levels\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write JSON artifact");
    println!("\nwrote {out_path}");

    // CI gate: at the top concurrency level, batched execution must beat
    // one-at-a-time on simulated time (deterministic, unlike wall-clock).
    let top = levels.last().expect("levels");
    if top.batched_sim >= top.serial_sim {
        eprintln!(
            "FAIL: batched sim time {:.6}s not below serial {:.6}s at {} clients (mean batch {:.2})",
            top.batched_sim, top.serial_sim, top.clients, top.mean_batch
        );
        std::process::exit(1);
    }
    // Sanity: with closed-loop concurrent clients the windows must actually
    // have batched something.
    if top.mean_batch <= 1.0 + f64::EPSILON {
        eprintln!("FAIL: no cross-query batching occurred at {} clients", top.clients);
        std::process::exit(1);
    }
}
