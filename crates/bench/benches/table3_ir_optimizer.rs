//! Table III: the impact of kernel fusion on compiler optimization.
//!
//! The paper compiles two threshold predicates (`if (d < THRESHOLD1)`,
//! `if (d < THRESHOLD2)`) separately and fused, at `-O0` and `-O3`, and
//! counts PTX instructions: 5×2 / 3×2 unfused, 10 / 3 fused — i.e. -O3
//! removes 40% of the unfused code but 70% of the fused code, because only
//! the fused body exposes the two compares to range-check merging.

use kfusion_bench::{print_header, Table};
use kfusion_ir::builder::BodyBuilder;
use kfusion_ir::cost::{distinct_regs, instruction_count, max_live_regs};
use kfusion_ir::fuse::fuse_predicate_chain;
use kfusion_ir::opt::{optimize, OptLevel};

fn main() {
    let _trace = kfusion_bench::trace_session("table3_ir_optimizer");
    print_header("Table III", "instruction counts: fusion x optimization level");
    let a = BodyBuilder::threshold_lt(0, 100).build();
    let b = BodyBuilder::threshold_lt(0, 70).build();
    let fused = fuse_predicate_chain(&[a.clone(), b.clone()]);

    let count = |body: &kfusion_ir::KernelBody, l: OptLevel| instruction_count(&optimize(body, l));
    // Register pressure, both ways: the naive distinct-register count and
    // the liveness-precise simultaneous maximum occupancy depends on.
    let regs = |body: &kfusion_ir::KernelBody, l: OptLevel| {
        let o = optimize(body, l);
        (distinct_regs(&o), max_live_regs(&o))
    };

    let unfused_o0 = count(&a, OptLevel::O0) + count(&b, OptLevel::O0);
    let unfused_o3 = count(&a, OptLevel::O3) + count(&b, OptLevel::O3);
    let fused_o0 = count(&fused, OptLevel::O0);
    let fused_o3 = count(&fused, OptLevel::O3);

    let reg_cell = |(d, m): (usize, usize)| format!("{d} / {m}");
    let mut t =
        Table::new(["statement", "inst # (O0)", "inst # (O3)", "regs d/l (O0)", "regs d/l (O3)"]);
    t.row([
        "if (d<T1) ; if (d<T2)  [not fused]".to_string(),
        format!("{}x2={}", unfused_o0 / 2, unfused_o0),
        format!("{}x2={}", unfused_o3 / 2, unfused_o3),
        reg_cell(regs(&a, OptLevel::O0)),
        reg_cell(regs(&a, OptLevel::O3)),
    ]);
    t.row([
        "if (d<T1 && d<T2)      [fused]".to_string(),
        fused_o0.to_string(),
        fused_o3.to_string(),
        reg_cell(regs(&fused, OptLevel::O0)),
        reg_cell(regs(&fused, OptLevel::O3)),
    ]);
    t.print();
    println!("regs d/l = distinct registers / liveness max simultaneously live.");

    println!(
        "O3 reduction unfused: {:.0}%   (paper: 40%)",
        100.0 * (1.0 - unfused_o3 as f64 / unfused_o0 as f64)
    );
    println!(
        "O3 reduction fused  : {:.0}%   (paper: 70%)",
        100.0 * (1.0 - fused_o3 as f64 / fused_o0 as f64)
    );
    println!("paper counts: unfused 5x2 -> 3x2, fused 10 -> 3.");
    println!();
    println!("full optimization-level sweep of the fused body:");
    let mut sweep = Table::new(["level", "instructions"]);
    for l in OptLevel::ALL {
        sweep.row([l.to_string(), count(&fused, l).to_string()]);
    }
    sweep.print();
}
