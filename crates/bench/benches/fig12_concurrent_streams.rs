//! Figure 12: concurrently executing two SELECTs with the Stream Pool vs.
//! one SELECT with the full or halved launch configuration.
//!
//! * "no stream (old)" — one SELECT, full threads/CTAs.
//! * "no stream (new)" — the same, but half threads and CTAs (the sharing
//!   configuration).
//! * "stream" — two independent SELECTs (n/2 each) with the halved
//!   configuration, run concurrently on two pool streams.
//!
//! Paper headlines: stream always beats (new); (new) is always below
//! (old). Modeling note (EXPERIMENTS.md): our serial compute engine
//! reproduces the stream benefit via copy/compute overlap, so unlike the
//! paper's measurement the stream line does not cross below (old) at large
//! element counts.

use kfusion_bench::{fusion_axis, gbps, print_header, system, Table};
use kfusion_core::microbench::{run_concurrent, ConcurrentVariant};

fn main() {
    let _trace = kfusion_bench::trace_session("fig12_concurrent_streams");
    print_header("Fig. 12", "two concurrent SELECTs vs full/halved serial (end-to-end)");
    let sys = system();
    let mut t =
        Table::new(["elements", "stream GB/s", "no stream (new) GB/s", "no stream (old) GB/s"]);
    // The paper's lower panel zooms into 4–34M; include those points.
    let mut axis: Vec<u64> = vec![4_194_304, 8_388_608, 16_777_216, 33_554_432];
    axis.extend(fusion_axis().into_iter().filter(|&n| n > 33_554_432));
    for &n in &axis {
        let stream = run_concurrent(&sys, n, 0.5, ConcurrentVariant::Stream).unwrap();
        let new = run_concurrent(&sys, n, 0.5, ConcurrentVariant::NoStreamNew).unwrap();
        let old = run_concurrent(&sys, n, 0.5, ConcurrentVariant::NoStreamOld).unwrap();
        t.row([
            n.to_string(),
            gbps(stream.throughput_gbps()),
            gbps(new.throughput_gbps()),
            gbps(old.throughput_gbps()),
        ]);
    }
    t.print();
    println!("expected shape: stream > new everywhere; new < old everywhere");
    println!("(the paper additionally observed stream dropping below old past ~8M;");
    println!(" see EXPERIMENTS.md for why the analytic compute model keeps them ordered).");
}
