//! Micro-benchmarks of the library's own hot paths (real wall time, not
//! simulated): the IR optimizer, the per-row interpreter, the functional
//! SELECT, the discrete-event scheduler, the sorts, and the codecs.
//!
//! The shared timing harness (warmup + median-of-samples) lives in
//! `kfusion_bench::time_median`, keeping the workspace dependency-free;
//! throughput rows print in the same aligned style as the figure
//! harnesses.

use kfusion_bench::{print_header, system, time_median as time_it, Table};
use kfusion_core::microbench::{run_with_cards, SelectChain, Strategy};
use kfusion_ir::builder::BodyBuilder;
use kfusion_ir::fuse::fuse_predicate_chain;
use kfusion_ir::interp::Machine;
use kfusion_ir::opt::{optimize, OptLevel};
use kfusion_ir::Value;
use kfusion_relalg::{gen, ops, predicates};

fn row(t: &mut Table, name: &str, secs: f64, elems: Option<u64>) {
    let per = match elems {
        Some(n) => format!("{:.1} Melem/s", n as f64 / secs / 1e6),
        None => "-".to_string(),
    };
    t.row([name.to_string(), format!("{:.3} us", secs * 1e6), per]);
}

fn main() {
    print_header("Micro", "wall-clock hot paths (median of samples)");
    let _trace = kfusion_bench::trace_session("micro");
    let mut t = Table::new(["path", "time/call", "throughput"]);

    // IR optimizer on a 6-deep fused predicate chain.
    let preds: Vec<_> = (0..6).map(|k| BodyBuilder::threshold_lt(0, 100 + k).build()).collect();
    let fused = fuse_predicate_chain(&preds);
    let secs = time_it(9, 200, || optimize(std::hint::black_box(&fused), OptLevel::O3));
    row(&mut t, "ir_optimize_o3_fused6", secs, None);

    // Per-row interpreter on the optimized fused predicate.
    let body = optimize(
        &fuse_predicate_chain(&[
            BodyBuilder::threshold_lt(0, 1000).build(),
            BodyBuilder::threshold_lt(0, 500).build(),
        ]),
        OptLevel::O3,
    );
    let mut m = Machine::new();
    let mut k = 0i64;
    let secs = time_it(9, 100_000, || {
        k = k.wrapping_add(700) & 0x7FF;
        m.run_predicate(&body, &[Value::I64(k)]).unwrap()
    });
    row(&mut t, "fused_predicate_per_row", secs, Some(1));

    // Functional SELECT over 1 M rows.
    let input = gen::random_keys(1 << 20, 7);
    let pred = predicates::key_lt(gen::threshold_for_selectivity(0.5));
    let secs = time_it(5, 3, || ops::select(std::hint::black_box(&input), &pred).unwrap());
    row(&mut t, "select_1m_rows", secs, Some(input.len() as u64));

    // DES scheduling of a 64-segment fission pipeline (synthetic: no data).
    let sys = system();
    let chain = SelectChain::auto(1 << 30, &[0.5, 0.5]);
    let cards = chain.cardinalities().unwrap();
    let secs = time_it(9, 20, || {
        run_with_cards(&sys, &chain, Strategy::FusedFission { segments: 64 }, &cards).unwrap()
    });
    row(&mut t, "des_fused_fission_64seg", secs, None);

    // Sorts over 64 K keys.
    let n = 1usize << 16;
    let key: Vec<u64> = (0..n as u64).map(|i| (i * 2_654_435_761) % 100_000).collect();
    let r = kfusion_relalg::Relation::from_keys(key);
    let secs = time_it(5, 5, || ops::sort(std::hint::black_box(&r), ops::SortBy::Key).unwrap());
    row(&mut t, "merge_sort_64k", secs, Some(n as u64));
    let secs =
        time_it(5, 5, || ops::bitonic_sort(std::hint::black_box(&r), ops::SortBy::Key).unwrap());
    row(&mut t, "bitonic_network_64k", secs, Some(n as u64));

    // Codecs over 256 K values.
    {
        use kfusion_relalg::compress::{compress, decompress, Scheme};
        let n = 1usize << 18;
        let vals: Vec<u64> = (0..n as u64).map(|i| (i * 48_271) % (1 << 20)).collect();
        let block = compress(&vals, Scheme::BitPack).unwrap();
        let secs =
            time_it(5, 10, || compress(std::hint::black_box(&vals), Scheme::BitPack).unwrap());
        row(&mut t, "bitpack_compress_256k", secs, Some(n as u64));
        let secs = time_it(5, 10, || decompress(std::hint::black_box(&block)));
        row(&mut t, "bitpack_decompress_256k", secs, Some(n as u64));
    }

    t.print();
}
