//! Criterion micro-benchmarks of the library's own hot paths (real wall
//! time, not simulated): the IR optimizer, the per-row interpreter, the
//! functional SELECT, and the discrete-event scheduler.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use kfusion_core::microbench::{run_with_cards, SelectChain, Strategy};
use kfusion_ir::builder::BodyBuilder;
use kfusion_ir::fuse::fuse_predicate_chain;
use kfusion_ir::interp::Machine;
use kfusion_ir::opt::{optimize, OptLevel};
use kfusion_ir::Value;
use kfusion_relalg::{gen, ops, predicates};
use kfusion_vgpu::GpuSystem;

fn bench_optimizer(c: &mut Criterion) {
    let preds: Vec<_> = (0..6)
        .map(|k| BodyBuilder::threshold_lt(0, 100 + k).build())
        .collect();
    let fused = fuse_predicate_chain(&preds);
    c.bench_function("ir_optimize_o3_fused6", |b| {
        b.iter(|| optimize(std::hint::black_box(&fused), OptLevel::O3))
    });
}

fn bench_interpreter(c: &mut Criterion) {
    let body = optimize(
        &fuse_predicate_chain(&[
            BodyBuilder::threshold_lt(0, 1000).build(),
            BodyBuilder::threshold_lt(0, 500).build(),
        ]),
        OptLevel::O3,
    );
    let mut group = c.benchmark_group("ir_interpreter");
    group.throughput(Throughput::Elements(1));
    group.bench_function("fused_predicate_per_row", |b| {
        let mut m = Machine::new();
        let mut k = 0i64;
        b.iter(|| {
            k = k.wrapping_add(700) & 0x7FF;
            m.run_predicate(&body, &[Value::I64(k)]).unwrap()
        })
    });
    group.finish();
}

fn bench_functional_select(c: &mut Criterion) {
    let input = gen::random_keys(1 << 20, 7);
    let pred = predicates::key_lt(gen::threshold_for_selectivity(0.5));
    let mut group = c.benchmark_group("functional_select");
    group.throughput(Throughput::Elements(input.len() as u64));
    group.sample_size(10);
    group.bench_function("select_1m_rows", |b| {
        b.iter(|| ops::select(std::hint::black_box(&input), &pred).unwrap())
    });
    group.finish();
}

fn bench_des(c: &mut Criterion) {
    let sys = GpuSystem::c2070();
    let chain = SelectChain::auto(1 << 30, &[0.5, 0.5]); // synthetic: no data
    let cards = chain.cardinalities().unwrap();
    c.bench_function("des_fused_fission_schedule_64seg", |b| {
        b.iter_batched(
            || (),
            |_| {
                run_with_cards(
                    &sys,
                    &chain,
                    Strategy::FusedFission { segments: 64 },
                    &cards,
                )
                .unwrap()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_sorts(c: &mut Criterion) {
    let n = 1usize << 16;
    let key: Vec<u64> = (0..n as u64).map(|i| (i * 2_654_435_761) % 100_000).collect();
    let r = kfusion_relalg::Relation::from_keys(key);
    let mut group = c.benchmark_group("functional_sorts");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(10);
    group.bench_function("merge_sort_64k", |b| {
        b.iter(|| ops::sort(std::hint::black_box(&r), ops::SortBy::Key).unwrap())
    });
    group.bench_function("bitonic_network_64k", |b| {
        b.iter(|| ops::bitonic_sort(std::hint::black_box(&r), ops::SortBy::Key).unwrap())
    });
    group.finish();
}

fn bench_codecs(c: &mut Criterion) {
    use kfusion_relalg::compress::{compress, decompress, Scheme};
    let n = 1usize << 18;
    let vals: Vec<u64> = (0..n as u64).map(|i| (i * 48_271) % (1 << 20)).collect();
    let block = compress(&vals, Scheme::BitPack).unwrap();
    let mut group = c.benchmark_group("compression_codecs");
    group.throughput(Throughput::Elements(n as u64));
    group.sample_size(20);
    group.bench_function("bitpack_compress_256k", |b| {
        b.iter(|| compress(std::hint::black_box(&vals), Scheme::BitPack).unwrap())
    });
    group.bench_function("bitpack_decompress_256k", |b| {
        b.iter(|| decompress(std::hint::black_box(&block)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_optimizer,
    bench_interpreter,
    bench_functional_select,
    bench_des,
    bench_sorts,
    bench_codecs
);
criterion_main!(benches);
