//! Hardware sensitivity studies: how the paper's optimizations scale beyond
//! its Table II testbed.
//!
//! 1. **PCIe generation** — the paper's motivation is the PCIe bottleneck
//!    (Fig. 1). Sweeping the link from gen-1 to gen-3 shows how much of
//!    fusion's and fission's benefit is transfer-bound: faster links shrink
//!    the round-trip penalty fusion removes, while the GPU-side gains
//!    (registers, shared skeleton, compiler scope) persist.
//! 2. **Device generation** — C1060 (single copy engine, GT200), the
//!    paper's C2070, and a consumer GTX 580 (fast but 1.5 GB, one engine).
//!    One copy engine halves the pipeline's overlap options; small memory
//!    forces the round-trip strategy earlier.

use kfusion_bench::{chain, gbps, print_header, ratio, system, Table};
use kfusion_core::microbench::{run_compute_only, run_with_cards, Strategy};
use kfusion_vgpu::{DeviceSpec, GpuSystem, PcieModel};

fn main() {
    let _trace = kfusion_bench::trace_session("sensitivity");
    print_header("Sensitivity 1", "fusion/fission benefit vs PCIe generation");
    let links = [
        ("PCIe 1.1 x16", PcieModel::pcie1_x16()),
        ("PCIe 2.0 x16 (paper)", PcieModel::pcie2_x16()),
        ("PCIe 3.0 x16", PcieModel::pcie3_x16()),
    ];
    let mut t =
        Table::new(["link", "fused vs round-trip", "fission vs serial", "compute-only fusion"]);
    for (name, pcie) in links {
        let sys = GpuSystem { spec: DeviceSpec::tesla_c2070(), pcie };
        // Fusion benefit (Fig. 8 shape) at 16M elements.
        let c = chain(1 << 24, &[0.5, 0.5]);
        let cards = c.cardinalities().unwrap();
        let rt = run_with_cards(&sys, &c, Strategy::WithRoundTrip, &cards).unwrap();
        let fused = run_with_cards(&sys, &c, Strategy::Fused, &cards).unwrap();
        // Fission benefit (Fig. 14 shape) at 1G elements.
        let big = chain(1_000_000_000, &[0.5]);
        let bcards = big.cardinalities().unwrap();
        let serial = run_with_cards(&sys, &big, Strategy::WithoutRoundTrip, &bcards).unwrap();
        let fission =
            run_with_cards(&sys, &big, Strategy::Fission { segments: 16 }, &bcards).unwrap();
        // Compute-only gain is link-independent by construction.
        let cu = run_compute_only(&sys, &c, false).unwrap();
        let cf = run_compute_only(&sys, &c, true).unwrap();
        t.row([
            name.to_string(),
            format!("{}x", ratio(fused.throughput_gbps() / rt.throughput_gbps())),
            format!("{}x", ratio(fission.throughput_gbps() / serial.throughput_gbps())),
            format!("{}x", ratio(cf.throughput_gbps() / cu.throughput_gbps())),
        ]);
    }
    t.print();
    println!("faster links shrink the transfer-bound gains; the compute-side");
    println!("fusion gain (registers + shared skeleton + compiler scope) stays.\n");

    print_header("Sensitivity 2", "devices: C1060 / C2070 / GTX 580");
    let devices = [DeviceSpec::tesla_c1060(), DeviceSpec::tesla_c2070(), DeviceSpec::gtx580()];
    let mut t =
        Table::new(["device", "copy engines", "SELECT GB/s (compute)", "fission vs serial"]);
    for spec in devices {
        let sys = GpuSystem { spec: spec.clone(), pcie: PcieModel::pcie2_x16() };
        let c = chain(1 << 24, &[0.5]);
        let comp = run_compute_only(&sys, &c, false).unwrap();
        let big = chain(1_000_000_000, &[0.5]);
        let bcards = big.cardinalities().unwrap();
        let serial = run_with_cards(&sys, &big, Strategy::WithoutRoundTrip, &bcards).unwrap();
        let fission =
            run_with_cards(&sys, &big, Strategy::Fission { segments: 16 }, &bcards).unwrap();
        t.row([
            spec.name.to_string(),
            spec.copy_engines.to_string(),
            gbps(comp.throughput_gbps()),
            format!("{}x", ratio(fission.throughput_gbps() / serial.throughput_gbps())),
        ]);
    }
    t.print();
    println!("a single copy engine (C1060, GTX 580) serializes H2D and D2H,");
    println!("cutting the pipeline's overlap — the C2070's dual engines are");
    println!("why the paper says three streams saturate it.");
    let _ = system();
}
