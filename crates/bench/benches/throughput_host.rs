//! Host execution-engine throughput: scalar interpreter vs vectorized
//! batch engine (`kfusion_ir::batch`).
//!
//! Unlike the fig/table benches, which report *simulated* GPU time, this
//! harness measures real host wall-clock — the first perf-trajectory
//! artifact for the functional layer. Five cases:
//!
//! 1. `fused_q1_predicate` — rows/sec evaluating the O3-optimized Q1
//!    date-range predicate (the body inside the fused JOIN+SELECT block)
//!    over a shipdate column, single-threaded, both engines.
//! 2. `tpch_q1_functional` / `tpch_q6_functional` — wall-clock of the full
//!    functional phase (`execute`, serial strategy) with the batch engine
//!    toggled off/on. Simulated timings are engine-independent by
//!    construction; only the host clock moves.
//! 3. `recorder_overhead_disabled` — the batch inner loop with trace
//!    instrumentation (`BatchMachine::run`, whose counters short-circuit
//!    on a relaxed atomic when the recorder is off) against the bare
//!    `run_uncounted` baseline. The CI gate pins the disabled-recorder
//!    overhead below [`MAX_OVERHEAD_FRAC`].
//! 4. `steady_state_allocs` — allocations per batch on a warm batch-engine
//!    Q1 run, counted by the installed [`CountingAlloc`]: whole-run
//!    allocations in the `scalar` column, steady-state-region allocations
//!    (the per-batch loops, DESIGN.md §14) in the `batch` column. The
//!    steady state must allocate *nothing*.
//!
//! Writes `BENCH_host_throughput.json` at the repo root (override with
//! `--out`) plus the standard `BENCH_host_throughput.trace.json` /
//! `.metrics.txt` artifacts, and exits nonzero on any perf-smoke gate:
//! batch slower than scalar on the predicate or Q1 functional cases, the
//! recorder overhead above its pin, or a nonzero steady-state allocation
//! count.
//!
//! ```sh
//! cargo bench --bench throughput_host -- [--rows N] [--scale SF] [--out PATH]
//! ```

use kfusion_bench::time_best;
use kfusion_core::exec::{execute, ExecConfig, Strategy};
use kfusion_ir::batch::{BatchMachine, CompiledKernel, BATCH_ROWS};
use kfusion_ir::fuse::fuse_predicate_chain;
use kfusion_ir::interp::Machine;
use kfusion_ir::opt::{optimize, OptLevel};
use kfusion_ir::{CmpOp, KernelBody, Value};
use kfusion_relalg::{engine, predicates, Column, Relation};
use kfusion_tpch::gen::{generate, TpchConfig, MAX_DAY, Q1_CUTOFF_DAY};
use kfusion_tpch::{q1, q6};
use kfusion_trace::allocwatch;
use kfusion_vgpu::GpuSystem;

/// Every allocation in this process ticks [`allocwatch`]'s counters while
/// counting is enabled — the measurement behind `steady_state_allocs`.
#[global_allocator]
static ALLOC: allocwatch::CountingAlloc = allocwatch::CountingAlloc;

const REPS: usize = 3;

/// Reps for the recorder-overhead case: the two loops differ by one atomic
/// load per batch, so more reps squeeze out scheduler noise.
const OVERHEAD_REPS: usize = 7;

/// Maximum tolerated disabled-recorder overhead (fraction) on the batch
/// inner loop. Pinned by CI.
const MAX_OVERHEAD_FRAC: f64 = 0.02;

/// The Q1 date-range predicate as the fused SELECT block evaluates it:
/// fused (trivially, Q1 has one predicate) and O3-optimized.
fn fused_q1_predicate() -> KernelBody {
    let pred = predicates::col_cmp_i64(0, CmpOp::Le, Q1_CUTOFF_DAY);
    optimize(&fuse_predicate_chain(std::slice::from_ref(&pred)), OptLevel::O3)
}

/// A key + shipdate relation with the generator's date distribution.
fn shipdate_relation(rows: usize) -> Relation {
    let mut rng = kfusion_prng::Rng::seed_from_u64(0x51ED47E);
    let col = (0..rows).map(|_| rng.gen_range(0..MAX_DAY + 1)).collect();
    Relation::new((0..rows as u64).collect(), vec![Column::I64(col)]).unwrap()
}

/// Scalar engine: one `Machine`, one row at a time — exactly the per-tuple
/// loop SELECT ran before the batch engine existed.
fn scalar_count(body: &KernelBody, rel: &Relation) -> u64 {
    let mut m = Machine::for_body(body);
    let mut row: Vec<Value> = Vec::with_capacity(1 + rel.n_cols());
    let mut count = 0u64;
    for i in 0..rel.len() {
        rel.ir_inputs(i, &mut row);
        count += m.run_predicate(body, &row).expect("well-typed predicate") as u64;
    }
    count
}

/// Batch engine: compiled kernel over 1024-row batches, popcounting the
/// selection bitmask. `counted` picks the instrumented `run` (counter per
/// batch) or the bare `run_uncounted` baseline the overhead gate compares
/// against.
fn batch_count_impl(body: &KernelBody, rel: &Relation, counted: bool) -> u64 {
    let k = CompiledKernel::compile(body, &rel.ir_slot_types()).expect("predicate compiles");
    let cols = rel.ir_cols();
    let mut bm = BatchMachine::new(&k);
    let mut count = 0u64;
    let mut base = 0;
    while base < rel.len() {
        let n = (rel.len() - base).min(BATCH_ROWS);
        if counted {
            bm.run(&k, &cols, base, n);
        } else {
            bm.run_uncounted(&k, &cols, base, n);
        }
        let mask = bm.selection_mask(&k);
        for (w, &word) in mask.iter().enumerate().take(n.div_ceil(64)) {
            let lo = w * 64;
            let mut m = word;
            if n - lo < 64 {
                m &= (1u64 << (n - lo)) - 1;
            }
            count += m.count_ones() as u64;
        }
        base += n;
    }
    count
}

fn batch_count(body: &KernelBody, rel: &Relation) -> u64 {
    batch_count_impl(body, rel, true)
}

struct Case {
    name: &'static str,
    unit: &'static str,
    scalar: f64,
    batch: f64,
    speedup: f64,
}

/// Wall-clock a full functional-phase execution under both engines.
fn functional_case(
    name: &'static str,
    run: impl Fn() -> f64, // returns simulated total, for the invariance check
) -> Case {
    engine::set_batch_enabled(false);
    let (sim_scalar, t_scalar) = time_best(REPS, &run);
    engine::set_batch_enabled(true);
    let (sim_batch, t_batch) = time_best(REPS, &run);
    assert_eq!(sim_scalar, sim_batch, "{name}: engine choice changed simulated time");
    Case {
        name,
        unit: "wall_ms",
        scalar: t_scalar * 1e3,
        batch: t_batch * 1e3,
        speedup: t_scalar / t_batch,
    }
}

fn main() {
    let mut rows = 1usize << 22;
    let mut scale = 0.2f64;
    let mut out_path =
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_host_throughput.json").to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--rows" => rows = args.next().and_then(|v| v.parse().ok()).expect("--rows N"),
            "--scale" => scale = args.next().and_then(|v| v.parse().ok()).expect("--scale SF"),
            "--out" => out_path = args.next().expect("--out PATH"),
            "--bench" => {} // cargo bench appends this; ignore
            other => {
                eprintln!("unknown arg {other:?} (try --rows N, --scale SF, --out PATH)");
                std::process::exit(2);
            }
        }
    }

    println!("== throughput_host: scalar interpreter vs batch engine ==");
    println!("predicate rows: {rows}; TPC-H scale factor: {scale}\n");
    let _trace = kfusion_bench::trace_session("host_throughput");
    let mut cases = Vec::new();

    // Case 1: the fused Q1 predicate, single-threaded rows/sec.
    let body = fused_q1_predicate();
    let rel = shipdate_relation(rows);
    let (n_scalar, t_scalar) = time_best(REPS, || scalar_count(&body, &rel));
    let (n_batch, t_batch) = time_best(REPS, || batch_count(&body, &rel));
    assert_eq!(n_scalar, n_batch, "engines disagree on selectivity");
    cases.push(Case {
        name: "fused_q1_predicate",
        unit: "rows_per_sec",
        scalar: rows as f64 / t_scalar,
        batch: rows as f64 / t_batch,
        speedup: t_scalar / t_batch,
    });

    // Cases 2–3: whole functional phases, wall-clock.
    let db = generate(TpchConfig::scale(scale));
    let sys = GpuSystem::c2070();
    let q1_plan = q1::q1_plan();
    let q1_inputs = q1::q1_inputs(&db);
    let q6_plan = q6::q6_plan();
    let q6_inputs = q6::q6_inputs(&db);
    let cfg = ExecConfig::new(Strategy::Serial, &sys);
    cases.push(functional_case("tpch_q1_functional", || {
        execute(&sys, &q1_plan, &q1_inputs, &cfg).unwrap().report.total()
    }));
    cases.push(functional_case("tpch_q6_functional", || {
        execute(&sys, &q6_plan, &q6_inputs, &cfg).unwrap().report.total()
    }));

    // Case 4: disabled-recorder overhead on the fused-Q1 predicate batch
    // loop. Collection off, so the instrumented loop pays exactly the
    // per-batch relaxed atomic load the fast path promises to keep free.
    kfusion_trace::set_enabled(false);
    let (n_base, t_base) = time_best(OVERHEAD_REPS, || batch_count_impl(&body, &rel, false));
    let (n_instr, t_instr) = time_best(OVERHEAD_REPS, || batch_count_impl(&body, &rel, true));
    kfusion_trace::set_enabled(true);
    assert_eq!(n_base, n_instr, "instrumentation changed the answer");
    let overhead = (t_instr / t_base - 1.0).max(0.0);
    cases.push(Case {
        name: "recorder_overhead_disabled",
        unit: "wall_ms",
        scalar: t_base * 1e3,
        batch: t_instr * 1e3,
        speedup: t_base / t_instr,
    });
    println!(
        "disabled-recorder overhead: {:.2}% (gate: {:.0}%)\n",
        overhead * 100.0,
        MAX_OVERHEAD_FRAC * 100.0
    );

    // Case 5: steady-state allocations per batch on a warm batch-engine Q1
    // functional phase. The first execution warms every reusable buffer
    // (scratch machines, trace counter keys, thread-local arenas); the
    // second runs with allocation counting on. Allocations inside the
    // operators' steady-state regions — the per-batch loops — must be zero;
    // whole-run allocations (per-morsel setup, output materialization) are
    // reported alongside as the denominator's context.
    engine::set_batch_enabled(true);
    execute(&sys, &q1_plan, &q1_inputs, &cfg).unwrap();
    let batches_before = kfusion_trace::snapshot().counter("kfusion_batch_batches_total");
    allocwatch::reset();
    allocwatch::set_enabled(true);
    execute(&sys, &q1_plan, &q1_inputs, &cfg).unwrap();
    allocwatch::set_enabled(false);
    let batches = kfusion_trace::snapshot().counter("kfusion_batch_batches_total") - batches_before;
    let (steady_allocs, steady_bytes) = allocwatch::region_counts();
    let (run_allocs, _) = allocwatch::total_counts();
    allocwatch::export_counters();
    assert!(batches > 0, "batch engine processed no batches");
    let run_per_batch = run_allocs as f64 / batches as f64;
    let steady_per_batch = steady_allocs as f64 / batches as f64;
    cases.push(Case {
        name: "steady_state_allocs",
        unit: "allocs_per_batch",
        scalar: run_per_batch,
        batch: steady_per_batch,
        speedup: (run_per_batch + 1.0) / (steady_per_batch + 1.0),
    });

    for c in &cases {
        println!(
            "{:24} scalar {:>14.1} {u}   batch {:>14.1} {u}   speedup {:.2}x",
            c.name,
            c.scalar,
            c.batch,
            c.speedup,
            u = c.unit
        );
    }

    let body: Vec<String> = cases
        .iter()
        .map(|c| {
            format!(
                "    {{\"name\": \"{}\", \"unit\": \"{}\", \"scalar\": {:.3}, \"batch\": {:.3}, \"speedup\": {:.3}}}",
                c.name, c.unit, c.scalar, c.batch, c.speedup
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"throughput_host\",\n  \"predicate_rows\": {rows},\n  \"tpch_scale\": {scale},\n  \"cases\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write JSON artifact");
    println!("\nwrote {out_path}");

    // CI gate: vectorization must pay for itself on the predicate case.
    let pred = &cases[0];
    if pred.batch <= pred.scalar {
        eprintln!(
            "FAIL: batch engine ({:.0} rows/s) not faster than scalar ({:.0} rows/s)",
            pred.batch, pred.scalar
        );
        std::process::exit(1);
    }
    // CI gate: the disabled recorder must stay within the pinned overhead.
    if overhead > MAX_OVERHEAD_FRAC {
        eprintln!(
            "FAIL: disabled-recorder overhead {:.2}% exceeds the {:.0}% gate ({:.3} ms instrumented vs {:.3} ms bare)",
            overhead * 100.0,
            MAX_OVERHEAD_FRAC * 100.0,
            t_instr * 1e3,
            t_base * 1e3
        );
        std::process::exit(1);
    }
    // CI gate: the batch engine must beat the scalar interpreter on the
    // whole Q1 functional phase, not just the predicate microbenchmark.
    let q1_case = cases.iter().find(|c| c.name == "tpch_q1_functional").expect("case exists");
    if q1_case.batch >= q1_case.scalar {
        eprintln!(
            "FAIL: batch Q1 functional phase ({:.1} ms) not faster than scalar ({:.1} ms)",
            q1_case.batch, q1_case.scalar
        );
        std::process::exit(1);
    }
    // CI gate: the steady state allocates nothing once warm.
    if steady_allocs != 0 {
        eprintln!(
            "FAIL: steady-state regions allocated {steady_allocs} times ({steady_bytes} bytes) \
             across {batches} batches; the per-batch loops must not allocate"
        );
        std::process::exit(1);
    }
}
