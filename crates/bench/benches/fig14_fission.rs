//! Figure 14: kernel fission vs. serial execution of one 50% SELECT over
//! data sets far exceeding GPU memory (0.5–4 billion 32-bit elements; the
//! C2070 holds < 1.5 billion).
//!
//! Serial execution processes the data in GPU-memory-sized batches with
//! synchronous transfers; fission segments the input and pipelines
//! H2D / compute / D2H over three streams (Fig. 13), hiding transfer time.
//! Paper: fission averages +36.9% throughput.

use kfusion_bench::{chain, fission_axis, gbps, print_header, system, Table};
use kfusion_core::microbench::{run_with_cards, Strategy};

fn main() {
    let _trace = kfusion_bench::trace_session("fig14_fission");
    print_header("Fig. 14", "kernel fission vs serial, data >> GPU memory");
    let sys = system();
    println!(
        "GPU memory holds {} M 32-bit elements; every point below exceeds it.\n",
        sys.spec.mem_capacity / 4 / 1_000_000
    );
    let mut t = Table::new(["elements(M)", "fission GB/s", "no fission GB/s", "gain %"]);
    let mut gain = 0.0;
    let axis = fission_axis();
    for &n in &axis {
        let c = chain(n, &[0.5]);
        let cards = c.cardinalities().unwrap();
        // Serial = memory-sized batches with synchronous transfers; batch
        // intermediates fit on the device, so no round trip is paid.
        let serial = run_with_cards(&sys, &c, Strategy::WithoutRoundTrip, &cards).unwrap();
        let segments = (n / 64_000_000).max(8) as u32;
        let fission = run_with_cards(&sys, &c, Strategy::Fission { segments }, &cards).unwrap();
        let g = fission.throughput_gbps() / serial.throughput_gbps() - 1.0;
        gain += g;
        t.row([
            (n / 1_000_000).to_string(),
            gbps(fission.throughput_gbps()),
            gbps(serial.throughput_gbps()),
            format!("{:.1}", g * 100.0),
        ]);
    }
    t.print();
    println!("average fission gain: +{:.1}%  (paper: +36.9%)", 100.0 * gain / axis.len() as f64);
}
