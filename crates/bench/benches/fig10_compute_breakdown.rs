//! Figure 10: the computation part of two back-to-back SELECTs broken into
//! its CUDA kernels — filter (partition+filter+buffer) and gather — for the
//! unfused and fused versions, normalized to the unfused compute total.
//!
//! Paper headlines: the fused filter is 1.57× faster than the two separate
//! filters; the fused gather is 3.03× faster than the two separate gathers
//! (only one gather remains and it reads the already-halved data once).

use kfusion_bench::{chain, print_header, ratio, system, Table};
use kfusion_core::microbench::run_compute_only;

fn main() {
    let _trace = kfusion_bench::trace_session("fig10_compute_breakdown");
    print_header("Fig. 10", "compute breakdown: filter vs gather, fused vs unfused");
    let sys = system();
    let mut t = Table::new(["elements", "version", "filter(norm)", "gather(norm)", "total(norm)"]);
    let (mut f_gain, mut g_gain, mut k) = (0.0, 0.0, 0.0);
    for &n in &[4_194_304u64, 205_520_896, 415_236_096] {
        let c = chain(n, &[0.5, 0.5]);
        let unfused = run_compute_only(&sys, &c, false).unwrap();
        let fused = run_compute_only(&sys, &c, true).unwrap();
        let base = unfused.total();
        let uf_f = unfused.label_time("filter");
        let uf_g = unfused.label_time("gather");
        let f_f = fused.label_time("fused_filter");
        let f_g = fused.label_time("fused_gather");
        t.row([
            n.to_string(),
            "UNFUSED".to_string(),
            ratio(uf_f / base),
            ratio(uf_g / base),
            ratio(unfused.total() / base),
        ]);
        t.row([
            n.to_string(),
            "FUSED".to_string(),
            ratio(f_f / base),
            ratio(f_g / base),
            ratio(fused.total() / base),
        ]);
        f_gain += uf_f / f_f;
        g_gain += uf_g / f_g;
        k += 1.0;
    }
    t.print();
    println!("average filter speedup from fusion: {}x  (paper: 1.57x)", ratio(f_gain / k));
    println!("average gather speedup from fusion: {}x  (paper: 3.03x)", ratio(g_gain / k));
}
