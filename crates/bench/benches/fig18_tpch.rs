//! Figure 18: TPC-H Q1 and Q21 under "not optimized", "fusion", and
//! "fusion + fission", normalized to the unoptimized execution.
//!
//! Paper headlines:
//! * Q1 — fusion contributes a 1.25× speedup, fission another ~1% (total
//!   ≈ 26.5% improvement); SORT, which cannot be optimized, is ~71% of the
//!   baseline; fusing 6 JOINs + 1 SELECT speeds that block up 3.18×.
//! * Q21 — 13.2% total improvement (more unfusable operators); fusion
//!   achieves 1.22× across the fusable blocks.

use kfusion_bench::{ms, print_header, ratio, system, Table};
use kfusion_core::exec::Strategy;
use kfusion_tpch::gen::{generate, TpchConfig};
use kfusion_tpch::{q1, q21};

fn scale() -> f64 {
    std::env::var("KFUSION_TPCH_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(0.02)
}

fn main() {
    let _trace = kfusion_bench::trace_session("fig18_tpch");
    let sf = scale();
    let db = generate(TpchConfig::scale(sf));
    let sys = system();
    let strategies = [
        ("not optimized", Strategy::Serial),
        ("fusion", Strategy::Fusion),
        ("fusion+fission", Strategy::FusionFission { segments: 8 }),
    ];

    print_header("Fig. 18(a)", &format!("TPC-H Q1, scale factor {sf}"));
    let expect1 = q1::reference_q1(&db);
    let mut t = Table::new(["method", "time (ms)", "normalized", "answer ok"]);
    let mut base = 0.0;
    let mut q1_times = Vec::new();
    for (name, strat) in strategies {
        let r = q1::run_q1(&sys, &db, strat).unwrap();
        let total = r.report.total();
        if base == 0.0 {
            base = total;
        }
        let ok = q1::q1_matches_reference(&r.output, &expect1, 1e-9);
        t.row([name.to_string(), ms(total), ratio(total / base), ok.to_string()]);
        q1_times.push((name, r));
    }
    t.print();
    let serial = &q1_times[0].1;
    let fused = &q1_times[1].1;
    let both = &q1_times[2].1;
    println!(
        "SORT share of baseline: {:.1}%  (paper: ~71%)",
        100.0 * serial.report.label_time("sort") / serial.report.total()
    );
    println!(
        "fusion speedup: {}x (paper: 1.25x); fusion+fission total improvement: {:.1}% (paper: 26.5%)",
        ratio(serial.report.total() / fused.report.total()),
        100.0 * (1.0 - both.report.total() / serial.report.total())
    );
    // Fused-block speedup: the joins+select block, compute time only.
    let unfused_block: f64 = ["col_join", "filter", "gather", "project", "rekey", "arith"]
        .iter()
        .map(|p| serial.report.label_time(p))
        .sum();
    let fused_block: f64 = fused.report.label_time("fused_");
    println!(
        "fused-block speedup (joins+select etc.): {}x  (paper: 3.18x)",
        ratio(unfused_block / fused_block)
    );
    println!();

    print_header("Fig. 18(b)", &format!("TPC-H Q21, scale factor {sf}"));
    const NATION: i64 = 20; // "SAUDI ARABIA" in the spec's ordering
    let expect21 = q21::reference_q21(&db, NATION);
    let mut t = Table::new(["method", "time (ms)", "normalized", "answer ok"]);
    let mut base = 0.0;
    let mut q21_times = Vec::new();
    for (name, strat) in strategies {
        let r = q21::run_q21(&sys, &db, NATION, strat).unwrap();
        let total = r.report.total();
        if base == 0.0 {
            base = total;
        }
        let ok = r.output == expect21;
        t.row([name.to_string(), ms(total), ratio(total / base), ok.to_string()]);
        q21_times.push((name, r));
    }
    t.print();
    let serial = &q21_times[0].1;
    let both = &q21_times[2].1;
    println!(
        "fusion+fission total improvement: {:.1}%  (paper: 13.2%)",
        100.0 * (1.0 - both.report.total() / serial.report.total())
    );
    let unfused_block: f64 =
        ["filter", "gather", "project", "rekey", "setop", "join_match", "join_gather"]
            .iter()
            .map(|p| serial.report.label_time(p))
            .sum();
    let fused_block: f64 = q21_times[1].1.report.label_time("fused_");
    if fused_block > 0.0 {
        println!(
            "fused-block speedup: {}x  (paper: 1.22x across fusable blocks)",
            ratio(unfused_block / fused_block)
        );
    }
}
