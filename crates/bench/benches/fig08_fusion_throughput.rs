//! Figure 8: two back-to-back 50% SELECTs under the three §III-B methods.
//!
//! (a) end-to-end data throughput of *with round trip* (intermediate
//! bounced through the CPU), *without round trip* (intermediate resident),
//! and *fused* (one kernel). Paper: fused is +49.9% over with-round-trip
//! and +6.2% over without-round-trip on average.
//!
//! (b) GPU-computation-only comparison of *without round trip* vs *fused*.
//! Paper: fused is +79.9% on the compute part.

use kfusion_bench::{chain, fusion_axis, gbps, print_header, ratio, system, Table};
use kfusion_core::microbench::{run_compute_only, run_with_cards, Strategy};

fn main() {
    let _trace = kfusion_bench::trace_session("fig08_fusion_throughput");
    print_header("Fig. 8", "2x back-to-back SELECT (50%): round trip vs fused");
    let sys = system();
    let mut t = Table::new([
        "elements",
        "w/ round trip GB/s",
        "w/o round trip GB/s",
        "fused GB/s",
        "fused compute GB/s",
        "unfused compute GB/s",
    ]);
    let (mut g_rt, mut g_wo, mut g_comp) = (0.0, 0.0, 0.0);
    let axis = fusion_axis();
    for &n in &axis {
        let c = chain(n, &[0.5, 0.5]);
        let cards = c.cardinalities().unwrap();
        let with_rt = run_with_cards(&sys, &c, Strategy::WithRoundTrip, &cards).unwrap();
        let without = run_with_cards(&sys, &c, Strategy::WithoutRoundTrip, &cards).unwrap();
        let fused = run_with_cards(&sys, &c, Strategy::Fused, &cards).unwrap();
        let comp_unfused = run_compute_only(&sys, &c, false).unwrap();
        let comp_fused = run_compute_only(&sys, &c, true).unwrap();
        g_rt += fused.throughput_gbps() / with_rt.throughput_gbps();
        g_wo += fused.throughput_gbps() / without.throughput_gbps();
        g_comp += comp_fused.throughput_gbps() / comp_unfused.throughput_gbps();
        t.row([
            n.to_string(),
            gbps(with_rt.throughput_gbps()),
            gbps(without.throughput_gbps()),
            gbps(fused.throughput_gbps()),
            gbps(comp_fused.throughput_gbps()),
            gbps(comp_unfused.throughput_gbps()),
        ]);
    }
    t.print();
    let k = axis.len() as f64;
    println!(
        "average fused gain over with-round-trip : +{:.1}%  (paper: +49.9%)",
        (g_rt / k - 1.0) * 100.0
    );
    println!(
        "average fused gain over w/o round trip  : +{:.1}%  (paper: +6.2%)",
        (g_wo / k - 1.0) * 100.0
    );
    println!(
        "average compute-only fusion gain        : +{:.1}%  (paper: +79.9%)",
        (g_comp / k - 1.0) * 100.0
    );
    println!(
        "(ratio columns derived from throughput: {}x / {}x / {}x)",
        ratio(g_rt / k),
        ratio(g_wo / k),
        ratio(g_comp / k)
    );
}
