//! Shared harness utilities for the figure/table reproduction benches.
//!
//! Every bench target in `benches/` regenerates one table or figure of the
//! paper: it prints the same rows/series the paper plots, as an aligned
//! text table plus a TSV block that plotting scripts can consume. This
//! module holds the shared formatting, the Table II environment header,
//! the element-count axes the paper sweeps, the shared wall-clock timers,
//! and the [`trace_session`] guard every bench uses to emit its Perfetto
//! trace + metrics artifacts.

use kfusion_vgpu::{DeviceSpec, GpuSystem};
use std::path::PathBuf;
use std::time::Instant;

/// Print the experiment banner with the simulated environment — the
/// reproduction's version of the paper's Table II.
pub fn print_header(experiment: &str, what: &str) {
    let gpu = DeviceSpec::tesla_c2070();
    let cpu = DeviceSpec::xeon_e5520_pair();
    println!("================================================================");
    println!("{experiment}: {what}");
    println!("----------------------------------------------------------------");
    println!("environment (simulated; paper Table II):");
    println!("  CPU   : {}", cpu.name);
    println!(
        "  GPU   : {} — {} SMs x {} cores @ {} GHz, {:.0} GB/s, {:.2} GiB",
        gpu.name,
        gpu.sm_count,
        gpu.cores_per_sm,
        gpu.clock_ghz,
        gpu.mem_bw_gbps,
        gpu.mem_capacity as f64 / (1u64 << 30) as f64
    );
    println!("  PCIe  : 2.0 x16 (see Fig. 4(b) harness for measured curves)");
    println!("================================================================");
}

/// A simple aligned table that also emits TSV.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append one row (stringified cells).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Print aligned text followed by a TSV block.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let parts: Vec<String> =
                cells.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}", w = w)).collect();
            println!("  {}", parts.join("  "));
        };
        line(&self.headers);
        println!("  {}", widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "));
        for row in &self.rows {
            line(row);
        }
        println!();
        println!("#TSV");
        println!("{}", self.headers.join("\t"));
        for row in &self.rows {
            println!("{}", row.join("\t"));
        }
        println!("#END");
    }
}

/// Format GB/s with three decimals.
pub fn gbps(v: f64) -> String {
    // `v + 0.0` canonicalizes -0.0 so tables never print "-0.000".
    let v = v + 0.0;
    format!("{v:.3}")
}

/// Format seconds in engineering-friendly milliseconds.
pub fn ms(v: f64) -> String {
    format!("{:.3}", v * 1e3 + 0.0)
}

/// Format a ratio.
pub fn ratio(v: f64) -> String {
    let v = v + 0.0;
    format!("{v:.3}")
}

/// The element-count axis of the fusion figures (paper Figs. 8–11 run to
/// ~415 M elements; cardinalities above [`real_limit`] come from the
/// synthetic path as documented in DESIGN.md §2).
pub fn fusion_axis() -> Vec<u64> {
    vec![
        4_194_304,
        16_777_216,
        33_554_432,
        67_108_864,
        134_217_728,
        205_520_896,
        268_435_456,
        415_236_096,
    ]
}

/// The element-count axis of the fission figures (paper Figs. 14/16 run
/// 0.5–4 billion elements, beyond GPU memory).
pub fn fission_axis() -> Vec<u64> {
    vec![
        500_000_000,
        1_000_000_000,
        1_500_000_000,
        2_000_000_000,
        2_500_000_000,
        3_000_000_000,
        3_500_000_000,
        4_000_000_000,
    ]
}

/// Largest element count the harnesses materialize for real; can be raised
/// with `KFUSION_REAL_LIMIT` (elements).
pub fn real_limit() -> u64 {
    std::env::var("KFUSION_REAL_LIMIT").ok().and_then(|v| v.parse().ok()).unwrap_or(1 << 24)
}

/// The paper's shared GPU system.
pub fn system() -> GpuSystem {
    GpuSystem::c2070()
}

/// Best-of-`reps` wall-clock seconds for `f`, after one warmup call. The
/// returned value is the last call's result.
pub fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> (R, f64) {
    let mut out = f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        out = f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    (out, best)
}

/// Median seconds per call of `f` over `samples` timed runs of `iters`
/// calls each (after one warmup call).
pub fn time_median<R>(samples: usize, iters: u32, mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f());
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            t0.elapsed().as_secs_f64() / iters as f64
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Where bench artifacts go: `KFUSION_TRACE_DIR` if set, else the repo
/// root.
pub fn artifact_dir() -> PathBuf {
    match std::env::var("KFUSION_TRACE_DIR") {
        Ok(d) if !d.is_empty() => PathBuf::from(d),
        _ => PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")),
    }
}

/// RAII guard that turns the global trace recorder on for the duration of
/// a bench run and, on drop, writes `BENCH_<name>.trace.json` (Chrome
/// trace-event JSON, Perfetto-loadable) and `BENCH_<name>.metrics.txt`
/// (Prometheus text counters) to [`artifact_dir`].
pub struct TraceSession {
    name: String,
}

/// Start a traced bench session. See [`TraceSession`].
pub fn trace_session(name: &str) -> TraceSession {
    kfusion_trace::reset();
    kfusion_trace::set_enabled(true);
    TraceSession { name: name.to_string() }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        kfusion_trace::set_enabled(false);
        let trace = kfusion_trace::take();
        let dir = artifact_dir();
        for (suffix, content) in [
            (".trace.json", kfusion_trace::chrome::export(&trace)),
            (".metrics.txt", kfusion_trace::metrics::export(&trace)),
        ] {
            let path = dir.join(format!("BENCH_{}{suffix}", self.name));
            match std::fs::write(&path, content) {
                Ok(()) => println!("wrote {}", path.display()),
                Err(e) => eprintln!("failed to write {}: {e}", path.display()),
            }
        }
    }
}

/// A [`SelectChain`](kfusion_core::microbench::SelectChain) whose data mode
/// respects the harness [`real_limit`].
pub fn chain(n: u64, sels: &[f64]) -> kfusion_core::microbench::SelectChain {
    use kfusion_core::microbench::{DataMode, SelectChain};
    let mut c = SelectChain::auto(n, sels);
    c.mode = if n <= real_limit() { DataMode::Real } else { DataMode::Synthetic };
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_formats_and_checks_arity() {
        let mut t = Table::new(["a", "long-header"]);
        t.row(["1", "2"]);
        t.print();
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(["a"]);
        t.row(["1", "2"]);
    }

    #[test]
    fn axes_are_ascending() {
        assert!(fusion_axis().windows(2).all(|w| w[0] < w[1]));
        assert!(fission_axis().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn formatters() {
        assert_eq!(gbps(1.23456), "1.235");
        assert_eq!(ms(0.001), "1.000");
        assert_eq!(ratio(2.0), "2.000");
    }

    #[test]
    fn timers_measure_something() {
        let (v, best) = time_best(2, || 41 + 1);
        assert_eq!(v, 42);
        assert!(best >= 0.0 && best.is_finite());
        let med = time_median(3, 10, || std::hint::black_box(1 + 1));
        assert!(med >= 0.0 && med.is_finite());
    }

    #[test]
    fn trace_session_writes_artifacts() {
        let dir = std::env::temp_dir().join(format!("kfusion-bench-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("KFUSION_TRACE_DIR", &dir);
        {
            let _s = trace_session("selftest");
            kfusion_trace::counter("kfusion_selftest_total", 1);
            kfusion_trace::sim_span("compute", 0, "k", 0.0, 1.0);
        }
        std::env::remove_var("KFUSION_TRACE_DIR");
        let trace = std::fs::read_to_string(dir.join("BENCH_selftest.trace.json")).unwrap();
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("\"k\""));
        let metrics = std::fs::read_to_string(dir.join("BENCH_selftest.metrics.txt")).unwrap();
        assert!(metrics.contains("kfusion_selftest_total 1"));
        assert!(!kfusion_trace::enabled(), "session must disable the recorder on drop");
        std::fs::remove_dir_all(&dir).ok();
    }
}
