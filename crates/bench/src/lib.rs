//! Shared harness utilities for the figure/table reproduction benches.
//!
//! Every bench target in `benches/` regenerates one table or figure of the
//! paper: it prints the same rows/series the paper plots, as an aligned
//! text table plus a TSV block that plotting scripts can consume. This
//! module holds the shared formatting, the Table II environment header, and
//! the element-count axes the paper sweeps.

use kfusion_vgpu::{DeviceSpec, GpuSystem};

/// Print the experiment banner with the simulated environment — the
/// reproduction's version of the paper's Table II.
pub fn print_header(experiment: &str, what: &str) {
    let gpu = DeviceSpec::tesla_c2070();
    let cpu = DeviceSpec::xeon_e5520_pair();
    println!("================================================================");
    println!("{experiment}: {what}");
    println!("----------------------------------------------------------------");
    println!("environment (simulated; paper Table II):");
    println!("  CPU   : {}", cpu.name);
    println!(
        "  GPU   : {} — {} SMs x {} cores @ {} GHz, {:.0} GB/s, {:.2} GiB",
        gpu.name,
        gpu.sm_count,
        gpu.cores_per_sm,
        gpu.clock_ghz,
        gpu.mem_bw_gbps,
        gpu.mem_capacity as f64 / (1u64 << 30) as f64
    );
    println!("  PCIe  : 2.0 x16 (see Fig. 4(b) harness for measured curves)");
    println!("================================================================");
}

/// A simple aligned table that also emits TSV.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append one row (stringified cells).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Print aligned text followed by a TSV block.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let parts: Vec<String> =
                cells.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}", w = w)).collect();
            println!("  {}", parts.join("  "));
        };
        line(&self.headers);
        println!("  {}", widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "));
        for row in &self.rows {
            line(row);
        }
        println!();
        println!("#TSV");
        println!("{}", self.headers.join("\t"));
        for row in &self.rows {
            println!("{}", row.join("\t"));
        }
        println!("#END");
    }
}

/// Format GB/s with three decimals.
pub fn gbps(v: f64) -> String {
    // `v + 0.0` canonicalizes -0.0 so tables never print "-0.000".
    let v = v + 0.0;
    format!("{v:.3}")
}

/// Format seconds in engineering-friendly milliseconds.
pub fn ms(v: f64) -> String {
    format!("{:.3}", v * 1e3 + 0.0)
}

/// Format a ratio.
pub fn ratio(v: f64) -> String {
    let v = v + 0.0;
    format!("{v:.3}")
}

/// The element-count axis of the fusion figures (paper Figs. 8–11 run to
/// ~415 M elements; cardinalities above [`real_limit`] come from the
/// synthetic path as documented in DESIGN.md §2).
pub fn fusion_axis() -> Vec<u64> {
    vec![
        4_194_304,
        16_777_216,
        33_554_432,
        67_108_864,
        134_217_728,
        205_520_896,
        268_435_456,
        415_236_096,
    ]
}

/// The element-count axis of the fission figures (paper Figs. 14/16 run
/// 0.5–4 billion elements, beyond GPU memory).
pub fn fission_axis() -> Vec<u64> {
    vec![
        500_000_000,
        1_000_000_000,
        1_500_000_000,
        2_000_000_000,
        2_500_000_000,
        3_000_000_000,
        3_500_000_000,
        4_000_000_000,
    ]
}

/// Largest element count the harnesses materialize for real; can be raised
/// with `KFUSION_REAL_LIMIT` (elements).
pub fn real_limit() -> u64 {
    std::env::var("KFUSION_REAL_LIMIT").ok().and_then(|v| v.parse().ok()).unwrap_or(1 << 24)
}

/// The paper's shared GPU system.
pub fn system() -> GpuSystem {
    GpuSystem::c2070()
}

/// A [`SelectChain`](kfusion_core::microbench::SelectChain) whose data mode
/// respects the harness [`real_limit`].
pub fn chain(n: u64, sels: &[f64]) -> kfusion_core::microbench::SelectChain {
    use kfusion_core::microbench::{DataMode, SelectChain};
    let mut c = SelectChain::auto(n, sels);
    c.mode = if n <= real_limit() { DataMode::Real } else { DataMode::Synthetic };
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_formats_and_checks_arity() {
        let mut t = Table::new(["a", "long-header"]);
        t.row(["1", "2"]);
        t.print();
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(["a"]);
        t.row(["1", "2"]);
    }

    #[test]
    fn axes_are_ascending() {
        assert!(fusion_axis().windows(2).all(|w| w[0] < w[1]));
        assert!(fission_axis().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn formatters() {
        assert_eq!(gbps(1.23456), "1.235");
        assert_eq!(ms(0.001), "1.000");
        assert_eq!(ratio(2.0), "2.000");
    }
}
