//! Lowering: AST → [`PlanGraph`].
//!
//! The lowering is deliberately *naive* — each WHERE conjunct becomes its
//! own SELECT operator and every computed expression its own arithmetic
//! stage — because producing chains of small operators is exactly what
//! gives the fusion pass something to do. The front end plays the role of
//! the paper's query-plan generator; the optimizer, not the lowering, is
//! responsible for making the result fast.

use crate::ast::{self, AggFunc, Expr, Item, OrderTarget, Query};
use crate::catalog::{Catalog, ColType, TableSchema};
use kfusion_core::{OpKind, PlanGraph};
use kfusion_ir::builder::{BodyBuilder, Expr as IrExpr};
use kfusion_ir::{CmpOp, Ty};
use kfusion_relalg::ops::{Agg, SortBy};
use std::fmt;

/// Lowering errors.
#[derive(Debug, Clone, PartialEq)]
pub enum LowerError {
    /// The query names a table the catalog does not know.
    UnknownTable(String),
    /// The query references an unknown column.
    UnknownColumn(String),
    /// SELECT mixes aggregates with non-aggregate items.
    MixedAggregates,
    /// `ORDER BY <col>` names a column absent from the output.
    BadOrderBy(String),
    /// `ORDER BY <col>` names a column that appears more than once in the
    /// output (duplicate explicit aliases).
    AmbiguousOrderBy(String),
    /// An expression mixes types in an unsupported way.
    TypeError(String),
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::UnknownTable(t) => write!(f, "unknown table {t:?}"),
            LowerError::UnknownColumn(c) => write!(f, "unknown column {c:?}"),
            LowerError::MixedAggregates => {
                write!(f, "SELECT list mixes aggregates with plain expressions")
            }
            LowerError::BadOrderBy(c) => write!(f, "cannot ORDER BY {c:?}"),
            LowerError::AmbiguousOrderBy(c) => {
                write!(f, "ORDER BY {c:?} is ambiguous: multiple output columns share that name")
            }
            LowerError::TypeError(m) => write!(f, "type error: {m}"),
        }
    }
}

impl std::error::Error for LowerError {}

/// A compiled query: the plan plus its output column names and types.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    /// The plan; its single input (index 0) is the FROM table's relation.
    pub plan: PlanGraph,
    /// Output payload column names, in order.
    pub output_names: Vec<String>,
    /// Output payload column types, parallel to `output_names`.
    pub output_tys: Vec<ColType>,
}

/// Compile `sql` against `catalog`.
pub fn compile(sql: &str, catalog: &Catalog) -> Result<CompiledQuery, CompileError> {
    let query = crate::parser::parse(sql)?;
    lower(&query, catalog).map_err(CompileError::Lower)
}

/// Either phase's failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// Tokenizer/parser failure.
    Parse(crate::parser::ParseError),
    /// Semantic/lowering failure.
    Lower(LowerError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "{e}"),
            CompileError::Lower(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<crate::parser::ParseError> for CompileError {
    fn from(e: crate::parser::ParseError) -> Self {
        CompileError::Parse(e)
    }
}

/// Inferred expression type during lowering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ETy {
    I64,
    F64,
    /// An integer literal: adopts the type of whatever it meets.
    IntLit,
}

fn unify(a: ETy, b: ETy) -> ETy {
    match (a, b) {
        (ETy::F64, _) | (_, ETy::F64) => ETy::F64,
        (ETy::I64, _) | (_, ETy::I64) => ETy::I64,
        _ => ETy::IntLit,
    }
}

fn expr_ty(e: &Expr, schema: &TableSchema) -> Result<ETy, LowerError> {
    Ok(match e {
        Expr::Key => ETy::I64,
        Expr::Int(_) => ETy::IntLit,
        Expr::Float(_) => ETy::F64,
        Expr::Column(name) => match schema.column(name) {
            Some((_, ColType::I64)) => ETy::I64,
            Some((_, ColType::F64)) => ETy::F64,
            None => return Err(LowerError::UnknownColumn(name.clone())),
        },
        Expr::Binary { lhs, rhs, .. } => unify(expr_ty(lhs, schema)?, expr_ty(rhs, schema)?),
        Expr::Neg(inner) => expr_ty(inner, schema)?,
    })
}

/// Lower an AST expression to an IR expression of type `want`, inserting
/// casts where an integer subexpression meets a float context.
fn lower_expr(e: &Expr, schema: &TableSchema, want: ETy) -> Result<IrExpr, LowerError> {
    let own = expr_ty(e, schema)?;
    let base = match e {
        Expr::Key => IrExpr::input(0),
        Expr::Column(name) => {
            let (idx, _) =
                schema.column(name).ok_or_else(|| LowerError::UnknownColumn(name.clone()))?;
            IrExpr::input(idx as u32 + 1)
        }
        Expr::Int(v) => {
            // Literals lower directly at the wanted type.
            return Ok(if want == ETy::F64 { IrExpr::lit(*v as f64) } else { IrExpr::lit(*v) });
        }
        Expr::Float(v) => IrExpr::lit(*v),
        Expr::Binary { op, lhs, rhs } => {
            let sub_want = unify(own, want);
            let l = lower_expr(lhs, schema, sub_want)?;
            let r = lower_expr(rhs, schema, sub_want)?;
            return Ok(match op {
                ast::BinOp::Add => l.add(r),
                ast::BinOp::Sub => l.sub(r),
                ast::BinOp::Mul => l.mul(r),
                ast::BinOp::Div => l.div(r),
            });
        }
        Expr::Neg(inner) => {
            let sub_want = unify(own, want);
            return Ok(lower_expr(inner, schema, sub_want)?.neg());
        }
    };
    // Column/KEY reads: cast i64 sources into float contexts.
    Ok(if want == ETy::F64 && own != ETy::F64 { base.cast(Ty::F64) } else { base })
}

fn lower_predicate(
    p: &ast::Predicate,
    schema: &TableSchema,
) -> Result<kfusion_ir::KernelBody, LowerError> {
    let want = unify(expr_ty(&p.lhs, schema)?, expr_ty(&p.rhs, schema)?);
    let l = lower_expr(&p.lhs, schema, want)?;
    let r = lower_expr(&p.rhs, schema, want)?;
    let op = match p.op {
        ast::CmpOp::Lt => CmpOp::Lt,
        ast::CmpOp::Le => CmpOp::Le,
        ast::CmpOp::Gt => CmpOp::Gt,
        ast::CmpOp::Ge => CmpOp::Ge,
        ast::CmpOp::Eq => CmpOp::Eq,
        ast::CmpOp::Ne => CmpOp::Ne,
    };
    let mut b = BodyBuilder::new(schema.len() as u32 + 1);
    b.emit_output(l.cmp(op, r));
    Ok(b.build())
}

/// Lower a parsed query against `catalog`.
pub fn lower(query: &Query, catalog: &Catalog) -> Result<CompiledQuery, LowerError> {
    let schema =
        catalog.table(&query.table).ok_or_else(|| LowerError::UnknownTable(query.table.clone()))?;
    let mut plan = PlanGraph::new();
    let mut cur = plan.input(0);

    // WHERE: one SELECT per conjunct (the fusion pass merges them).
    for p in &query.predicates {
        let pred = lower_predicate(p, schema)?;
        cur = plan.add(OpKind::Select { pred }, vec![cur]);
    }

    let has_agg = query.items.iter().any(|i| matches!(i, Item::Agg { .. }));
    let all_agg = query.items.iter().all(|i| matches!(i, Item::Agg { .. }));
    if has_agg && !all_agg {
        return Err(LowerError::MixedAggregates);
    }

    let mut output_names = Vec::new();
    let mut output_tys = Vec::new();
    if has_agg {
        if query.group_by_key {
            // Grouped aggregation folds runs of equal keys, so its input
            // must be key-sorted; an arbitrary table's keys are not. The
            // stable key sort keeps the per-group row order equal to the
            // source order, which pins the fold order bit-for-bit.
            cur = plan.add(OpKind::Sort { by: SortBy::Key }, vec![cur]);
        }
        // Computed aggregate arguments become columns first (one fused
        // arithmetic stage), then a single AGGREGATION consumes them.
        let mut extend = BodyBuilder::new(schema.len() as u32 + 1);
        let mut extended = 0usize;
        let mut aggs = Vec::new();
        for item in &query.items {
            let Item::Agg { func, arg, alias } = item else { unreachable!() };
            let (col, arg_ty) = match arg {
                None => (usize::MAX, ETy::I64), // COUNT(*) takes no column
                Some(Expr::Column(name)) => {
                    let (idx, ct) = schema
                        .column(name)
                        .ok_or_else(|| LowerError::UnknownColumn(name.clone()))?;
                    (idx, if ct == ColType::F64 { ETy::F64 } else { ETy::I64 })
                }
                Some(expr) => {
                    let want = expr_ty(expr, schema)?;
                    if *func == AggFunc::Count {
                        // COUNT ignores its argument's values; validate the
                        // expression but emit no column for it.
                        (usize::MAX, want)
                    } else {
                        extend.emit_output(lower_expr(expr, schema, want)?);
                        extended += 1;
                        (schema.len() + extended - 1, want)
                    }
                }
            };
            aggs.push(match func {
                AggFunc::Sum => Agg::Sum(col),
                AggFunc::Avg => Agg::Avg(col),
                AggFunc::Min => Agg::Min(col),
                AggFunc::Max => Agg::Max(col),
                AggFunc::Count => Agg::Count,
            });
            let out_ty = match func {
                AggFunc::Count => ColType::I64,
                AggFunc::Avg => ColType::F64,
                _ => col_type(arg_ty),
            };
            push_name(&mut output_names, alias.as_ref(), || default_agg_name(func, arg));
            output_tys.push(out_ty);
        }
        if extended > 0 {
            cur = plan.add(OpKind::ArithExtend { body: extend.build() }, vec![cur]);
        }
        cur = if query.group_by_key {
            plan.add(OpKind::Aggregate { aggs }, vec![cur])
        } else {
            plan.add(OpKind::AggregateAll { aggs }, vec![cur])
        };
    } else {
        // Plain projection, possibly with computed columns.
        let mut extend = BodyBuilder::new(schema.len() as u32 + 1);
        let mut extended = 0usize;
        let mut keep = Vec::new();
        for item in &query.items {
            match item {
                Item::Star => {
                    for (i, name) in schema.names().enumerate() {
                        keep.push(i);
                        push_name(&mut output_names, None, || name.to_string());
                        output_tys.push(schema.col_type(i));
                    }
                }
                Item::Expr { expr: Expr::Column(name), alias } => {
                    let (idx, ct) = schema
                        .column(name)
                        .ok_or_else(|| LowerError::UnknownColumn(name.clone()))?;
                    keep.push(idx);
                    push_name(&mut output_names, alias.as_ref(), || name.clone());
                    output_tys.push(ct);
                }
                Item::Expr { expr, alias } => {
                    let want = expr_ty(expr, schema)?;
                    extend.emit_output(lower_expr(expr, schema, want)?);
                    extended += 1;
                    keep.push(schema.len() + extended - 1);
                    let n = keep.len();
                    push_name(&mut output_names, alias.as_ref(), || format!("expr{n}"));
                    output_tys.push(col_type(want));
                }
                Item::Agg { .. } => unreachable!("checked above"),
            }
        }
        if extended > 0 {
            cur = plan.add(OpKind::ArithExtend { body: extend.build() }, vec![cur]);
        }
        cur = plan.add(OpKind::Project { keep }, vec![cur]);
    }

    // ORDER BY: resolve the target against the *output* schema and pick
    // the sort variant matching the column's type and direction.
    if let Some(ob) = &query.order_by {
        let by = match &ob.target {
            OrderTarget::Key => {
                if ob.desc {
                    SortBy::KeyDesc
                } else {
                    SortBy::Key
                }
            }
            OrderTarget::Column(name) => {
                let mut hits = output_names.iter().enumerate().filter(|(_, n)| *n == name);
                let idx = match (hits.next(), hits.next()) {
                    (None, _) => return Err(LowerError::BadOrderBy(name.clone())),
                    (Some(_), Some(_)) => return Err(LowerError::AmbiguousOrderBy(name.clone())),
                    (Some((idx, _)), None) => idx,
                };
                match (output_tys[idx], ob.desc) {
                    (ColType::I64, false) => SortBy::I64Col(idx),
                    (ColType::I64, true) => SortBy::I64ColDesc(idx),
                    (ColType::F64, false) => SortBy::F64Col(idx),
                    (ColType::F64, true) => SortBy::F64ColDesc(idx),
                }
            }
        };
        cur = plan.add(OpKind::Sort { by }, vec![cur]);
    }
    let _ = cur;
    Ok(CompiledQuery { plan, output_names, output_tys })
}

fn col_type(t: ETy) -> ColType {
    // Integer literals materialize as i64 columns.
    if t == ETy::F64 {
        ColType::F64
    } else {
        ColType::I64
    }
}

/// Push an output name: explicit aliases are taken verbatim, generated
/// names are disambiguated against earlier outputs (`count`, `count_2`, …)
/// so ORDER BY over default names stays well-defined.
fn push_name(names: &mut Vec<String>, alias: Option<&String>, auto: impl FnOnce() -> String) {
    let name = match alias {
        Some(a) => a.clone(),
        None => {
            let base = auto();
            if names.contains(&base) {
                let mut k = 2usize;
                loop {
                    let cand = format!("{base}_{k}");
                    if !names.contains(&cand) {
                        break cand;
                    }
                    k += 1;
                }
            } else {
                base
            }
        }
    };
    names.push(name);
}

fn default_agg_name(func: &AggFunc, arg: &Option<Expr>) -> String {
    let f = match func {
        AggFunc::Sum => "sum",
        AggFunc::Count => "count",
        AggFunc::Avg => "avg",
        AggFunc::Min => "min",
        AggFunc::Max => "max",
    };
    match arg {
        Some(Expr::Column(c)) => format!("{f}_{c}"),
        _ => f.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            "lineitem",
            TableSchema::new([
                ("qty", ColType::F64),
                ("price", ColType::F64),
                ("discount", ColType::F64),
                ("shipdate", ColType::I64),
            ]),
        );
        c
    }

    fn kinds(plan: &PlanGraph) -> Vec<&'static str> {
        plan.nodes.iter().map(|n| n.kind.name()).collect()
    }

    #[test]
    fn where_conjuncts_become_select_chain() {
        let q =
            compile("SELECT price FROM lineitem WHERE shipdate < 1000 AND qty < 24", &catalog())
                .unwrap();
        assert_eq!(kinds(&q.plan), vec!["INPUT", "SELECT", "SELECT", "PROJECT"]);
        assert_eq!(q.output_names, vec!["price"]);
    }

    #[test]
    fn q6_shape_compiles() {
        let q = compile(
            "SELECT SUM(price * discount) AS revenue, COUNT(*) FROM lineitem \
             WHERE shipdate >= 730 AND shipdate < 1095 \
             AND discount BETWEEN 0.05 AND 0.07 AND qty < 24",
            &catalog(),
        )
        .unwrap();
        // 5 conjuncts (BETWEEN desugars) + arith + aggregate.
        assert_eq!(
            kinds(&q.plan),
            vec!["INPUT", "SELECT", "SELECT", "SELECT", "SELECT", "SELECT", "ARITH+", "AGGREGATE*"]
        );
        assert_eq!(q.output_names, vec!["revenue", "count"]);
    }

    #[test]
    fn star_expands_schema() {
        let q = compile("SELECT * FROM lineitem", &catalog()).unwrap();
        assert_eq!(q.output_names, vec!["qty", "price", "discount", "shipdate"]);
    }

    #[test]
    fn group_by_key_uses_grouped_aggregate() {
        let q =
            compile("SELECT SUM(price), COUNT(*) FROM lineitem GROUP BY KEY", &catalog()).unwrap();
        assert!(kinds(&q.plan).contains(&"AGGREGATE"));
        assert!(!kinds(&q.plan).contains(&"AGGREGATE*"));
    }

    #[test]
    fn order_by_output_column() {
        let q = compile("SELECT shipdate FROM lineitem ORDER BY shipdate", &catalog()).unwrap();
        assert_eq!(*kinds(&q.plan).last().unwrap(), "SORT");
        assert!(compile("SELECT price FROM lineitem ORDER BY nope", &catalog()).is_err());
    }

    #[test]
    fn unknown_names_are_reported() {
        assert!(matches!(
            compile("SELECT x FROM nope", &catalog()),
            Err(CompileError::Lower(LowerError::UnknownTable(_)))
        ));
        assert!(matches!(
            compile("SELECT nope FROM lineitem", &catalog()),
            Err(CompileError::Lower(LowerError::UnknownColumn(_)))
        ));
    }

    #[test]
    fn mixed_aggregates_rejected() {
        assert!(matches!(
            compile("SELECT price, COUNT(*) FROM lineitem", &catalog()),
            Err(CompileError::Lower(LowerError::MixedAggregates))
        ));
    }

    #[test]
    fn int_literals_coerce_to_float_context() {
        // price * (1 - discount): the 1 must lower as 1.0.
        let q = compile("SELECT price * (1 - discount) AS v FROM lineitem", &catalog()).unwrap();
        assert_eq!(q.output_names, vec!["v"]);
        assert!(kinds(&q.plan).contains(&"ARITH+"));
    }

    #[test]
    fn key_comparisons_lower() {
        let q = compile("SELECT * FROM lineitem WHERE KEY < 100", &catalog()).unwrap();
        assert!(kinds(&q.plan).contains(&"SELECT"));
    }

    fn last_sort(plan: &PlanGraph) -> SortBy {
        match &plan.nodes.last().unwrap().kind {
            OpKind::Sort { by } => *by,
            other => panic!("expected SORT last, got {other:?}"),
        }
    }

    #[test]
    fn order_by_is_typed_by_output_column() {
        // Regression: ORDER BY over an f64 output column used to lower as
        // an integer-column sort and fail at runtime with SchemaMismatch.
        let q = compile("SELECT price FROM lineitem ORDER BY price", &catalog()).unwrap();
        assert_eq!(last_sort(&q.plan), SortBy::F64Col(0));
        assert_eq!(q.output_tys, vec![ColType::F64]);
        let q = compile("SELECT shipdate FROM lineitem ORDER BY shipdate", &catalog()).unwrap();
        assert_eq!(last_sort(&q.plan), SortBy::I64Col(0));
        let q = compile("SELECT shipdate, price FROM lineitem ORDER BY price", &catalog()).unwrap();
        assert_eq!(last_sort(&q.plan), SortBy::F64Col(1));
    }

    #[test]
    fn order_by_desc_lowers_descending_variants() {
        let q = compile("SELECT price FROM lineitem ORDER BY price DESC", &catalog()).unwrap();
        assert_eq!(last_sort(&q.plan), SortBy::F64ColDesc(0));
        let q =
            compile("SELECT shipdate FROM lineitem ORDER BY shipdate DESC", &catalog()).unwrap();
        assert_eq!(last_sort(&q.plan), SortBy::I64ColDesc(0));
        let q = compile("SELECT price FROM lineitem ORDER BY KEY DESC", &catalog()).unwrap();
        assert_eq!(last_sort(&q.plan), SortBy::KeyDesc);
    }

    #[test]
    fn duplicate_default_names_are_disambiguated() {
        // Regression: SELECT COUNT(*), COUNT(*) used to produce two columns
        // both named "count"; ORDER BY then silently bound the first.
        let q = compile("SELECT COUNT(*), COUNT(*), COUNT(*) FROM lineitem", &catalog()).unwrap();
        assert_eq!(q.output_names, vec!["count", "count_2", "count_3"]);
        // The generated names are addressable in ORDER BY.
        let q = compile(
            "SELECT MIN(shipdate), MAX(shipdate) AS min_shipdate_2, MIN(shipdate) \
             FROM lineitem GROUP BY KEY ORDER BY min_shipdate_3",
            &catalog(),
        )
        .unwrap();
        assert_eq!(q.output_names, vec!["min_shipdate", "min_shipdate_2", "min_shipdate_3"]);
        assert_eq!(last_sort(&q.plan), SortBy::I64Col(2));
    }

    #[test]
    fn ambiguous_order_by_is_rejected() {
        // Duplicate *explicit* aliases are allowed in the output but cannot
        // be used as a sort target.
        let err = compile("SELECT qty AS x, price AS x FROM lineitem ORDER BY x", &catalog())
            .unwrap_err();
        assert!(
            matches!(err, CompileError::Lower(LowerError::AmbiguousOrderBy(ref c)) if c == "x")
        );
        // Without the ORDER BY the same query compiles.
        assert!(compile("SELECT qty AS x, price AS x FROM lineitem", &catalog()).is_ok());
    }

    #[test]
    fn group_by_key_inserts_key_sort_before_aggregation() {
        // Regression: grouped aggregation requires key-sorted input, but
        // lowering emitted no sort, so any unsorted table failed at runtime.
        let q = compile(
            "SELECT SUM(price * (1 - discount)), COUNT(*) FROM lineitem \
             WHERE shipdate < 1000 GROUP BY KEY",
            &catalog(),
        )
        .unwrap();
        assert_eq!(kinds(&q.plan), vec!["INPUT", "SELECT", "SORT", "ARITH+", "AGGREGATE"]);
        // Ungrouped aggregation needs no sort.
        let q = compile("SELECT SUM(price) FROM lineitem", &catalog()).unwrap();
        assert!(!kinds(&q.plan).contains(&"SORT"));
    }

    #[test]
    fn count_with_argument() {
        let q = compile("SELECT COUNT(qty), COUNT(*) FROM lineitem", &catalog()).unwrap();
        assert_eq!(q.output_names, vec!["count_qty", "count"]);
        assert_eq!(q.output_tys, vec![ColType::I64, ColType::I64]);
        // COUNT(expr) validates its argument even though no column is built.
        let q = compile("SELECT COUNT(qty * 2) FROM lineitem", &catalog()).unwrap();
        assert!(!kinds(&q.plan).contains(&"ARITH+"));
        assert!(matches!(
            compile("SELECT COUNT(nope) FROM lineitem", &catalog()),
            Err(CompileError::Lower(LowerError::UnknownColumn(_)))
        ));
    }

    #[test]
    fn aggregate_output_types_are_inferred() {
        let q = compile(
            "SELECT SUM(qty), SUM(shipdate), AVG(shipdate), COUNT(*), MIN(shipdate), MAX(qty) \
             FROM lineitem",
            &catalog(),
        )
        .unwrap();
        assert_eq!(
            q.output_tys,
            vec![
                ColType::F64,
                ColType::I64,
                ColType::F64,
                ColType::I64,
                ColType::I64,
                ColType::F64
            ]
        );
        // A SUM over an integer-literal expression is an i64 column.
        let q = compile("SELECT SUM(shipdate + 1) FROM lineitem", &catalog()).unwrap();
        assert_eq!(q.output_tys, vec![ColType::I64]);
    }
}
