//! `kfusion-frontend` — a small SQL front end compiling queries to
//! [`kfusion_core::PlanGraph`]s.
//!
//! The paper's compiler framework sits *under* a query front end (its
//! research context compiled LogicBlox/datalog workloads down to relational
//! algebra). This crate completes that pipeline for the reproduction: a
//! deliberately small SQL subset — single-table SELECT/WHERE/GROUP BY
//! KEY/ORDER BY with arithmetic and aggregates — parses into an AST and
//! lowers to the operator graphs the fusion/fission passes optimize.
//!
//! Lowering is intentionally naive (one SELECT per WHERE conjunct, separate
//! arithmetic stages): producing fusable chains is the front end's whole
//! contract, and making them fast is the optimizer's job — the same division
//! of labour the paper prescribes.
//!
//! # Example
//!
//! ```
//! use kfusion_frontend::{compile, Catalog, ColType, TableSchema};
//! use kfusion_core::{fuse_plan, FusionBudget};
//! use kfusion_ir::opt::OptLevel;
//!
//! let mut catalog = Catalog::new();
//! catalog.add_table(
//!     "lineitem",
//!     TableSchema::new([
//!         ("qty", ColType::F64),
//!         ("price", ColType::F64),
//!         ("discount", ColType::F64),
//!         ("shipdate", ColType::I64),
//!     ]),
//! );
//!
//! let q = compile(
//!     "SELECT SUM(price * (1 - discount)) AS revenue, COUNT(*) \
//!      FROM lineitem WHERE shipdate < 1095 AND qty < 24",
//!     &catalog,
//! )
//! .unwrap();
//!
//! // The naive plan has two SELECTs, an arithmetic stage, an aggregation —
//! // and the fusion pass collapses all of it into one kernel.
//! let fused = fuse_plan(&q.plan, &FusionBudget { max_regs_per_thread: 63 }, OptLevel::O3);
//! assert_eq!(fused.groups.len(), 1);
//! ```

pub mod ast;
pub mod catalog;
pub mod fuzz;
pub mod lower;
pub mod parser;
pub mod token;

pub use catalog::{Catalog, ColType, TableSchema};
pub use lower::{compile, CompileError, CompiledQuery, LowerError};
pub use parser::{parse, ParseError};
