//! Table schemas: how column names map onto the positional layout of
//! [`kfusion_relalg::Relation`].

use std::collections::HashMap;

/// Column value type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColType {
    /// 64-bit integer column.
    I64,
    /// 64-bit float column.
    F64,
}

/// Schema of one table: named, typed payload columns in relation order
/// (the key is implicit and always `I64`, addressed as `KEY` in queries).
#[derive(Debug, Clone, PartialEq)]
pub struct TableSchema {
    columns: Vec<(String, ColType)>,
}

impl TableSchema {
    /// A schema from `(name, type)` pairs.
    pub fn new<S: Into<String>>(columns: impl IntoIterator<Item = (S, ColType)>) -> Self {
        TableSchema { columns: columns.into_iter().map(|(n, t)| (n.into(), t)).collect() }
    }

    /// Number of payload columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the table has no payload columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index and type of a named column.
    pub fn column(&self, name: &str) -> Option<(usize, ColType)> {
        self.columns.iter().position(|(n, _)| n == name).map(|i| (i, self.columns[i].1))
    }

    /// Column names in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.columns.iter().map(|(n, _)| n.as_str())
    }

    /// Type of column `i`.
    pub fn col_type(&self, i: usize) -> ColType {
        self.columns[i].1
    }
}

/// A set of named tables.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: HashMap<String, TableSchema>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a table.
    pub fn add_table(&mut self, name: impl Into<String>, schema: TableSchema) -> &mut Self {
        self.tables.insert(name.into().to_ascii_lowercase(), schema);
        self
    }

    /// Look up a table (case-insensitive).
    pub fn table(&self, name: &str) -> Option<&TableSchema> {
        self.tables.get(&name.to_ascii_lowercase())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name_and_case() {
        let mut cat = Catalog::new();
        cat.add_table(
            "LineItem",
            TableSchema::new([("price", ColType::F64), ("qty", ColType::I64)]),
        );
        let t = cat.table("lineitem").expect("case-insensitive lookup");
        assert_eq!(t.column("price"), Some((0, ColType::F64)));
        assert_eq!(t.column("qty"), Some((1, ColType::I64)));
        assert_eq!(t.column("nope"), None);
        assert_eq!(t.len(), 2);
    }
}
