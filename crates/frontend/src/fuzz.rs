//! Generator-based differential fuzzer for the SQL front end.
//!
//! Random well-typed queries over random catalogs are compiled once and
//! executed under every engine × strategy × optimization-level combination;
//! the scalar engine running `Serial` is the oracle and every other
//! configuration must reproduce its answer *bit for bit*. This is the same
//! answer-equivalence discipline the rest of the repository applies to the
//! hand-built TPC-H plans, pointed at the front end: any divergence is a
//! bug in the lexer, parser, lowering, an optimizer rewrite, or an engine —
//! and the failing query is minimized back to a replayable SQL string.
//!
//! The generator is biased toward the traps that historically broke the
//! front end: division by zero-prone literals (i64 division by zero is
//! defined as 0, f64 follows IEEE), duplicate keys for GROUP BY KEY over
//! *unsorted* tables, float output columns under ORDER BY, `DESC`,
//! aggregates over computed expressions, and empty tables.

use crate::catalog::{Catalog, ColType, TableSchema};
use crate::lower::compile;
use kfusion_core::exec::{execute, ExecConfig, Strategy};
use kfusion_ir::opt::OptLevel;
use kfusion_prng::Rng;
use kfusion_relalg::{engine, Column, Relation};
use kfusion_vgpu::GpuSystem;
use std::fmt;

/// One generated case: a table, its catalog entry, and a query against it.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// Seed that regenerates this exact case.
    pub seed: u64,
    /// The query text.
    pub sql: String,
    /// Catalog with the single generated table.
    pub catalog: Catalog,
    /// The generated table (plan input 0).
    pub table: Relation,
}

/// A confirmed mismatch (or execution failure), with everything needed to
/// replay it.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// Seed of the generating case.
    pub seed: u64,
    /// The original failing query.
    pub sql: String,
    /// The minimized failing query (equal to `sql` when minimization
    /// cannot shrink it).
    pub minimized: String,
    /// Which configuration diverged and how.
    pub detail: String,
}

impl fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "frontend fuzz mismatch (replay with seed {}):", self.seed)?;
        writeln!(f, "  sql:       {}", self.sql)?;
        writeln!(f, "  minimized: {}", self.minimized)?;
        write!(f, "  detail:    {}", self.detail)
    }
}

/// Aggregate result of a fuzz run.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Queries generated and compiled.
    pub queries: usize,
    /// Plan executions across the whole configuration matrix.
    pub executions: usize,
    /// Confirmed divergences (empty on a clean run).
    pub failures: Vec<FuzzFailure>,
}

/// Restores the process-global engine selection on scope exit, so a failing
/// differential never leaks the scalar engine into the rest of the process.
struct EngineGuard {
    was: bool,
}

impl EngineGuard {
    fn new() -> Self {
        EngineGuard { was: engine::batch_enabled() }
    }
}

impl Drop for EngineGuard {
    fn drop(&mut self) {
        engine::set_batch_enabled(self.was);
    }
}

// ---------------------------------------------------------------------------
// Generation
// ---------------------------------------------------------------------------

/// Interesting f64 values the generator mixes into data and literals:
/// signed zeros, subnormal-adjacent magnitudes, and values that make
/// products/divisions overflow into inf.
const F64_POOL: [f64; 8] = [0.0, -0.0, 1.0, -1.5, 0.25, 0.05, 1e-3, 1e6];

/// Int literals are biased toward 0/1/2 so `/ 0` and `x / (c - c)` shapes
/// appear often.
const I64_POOL: [i64; 6] = [0, 0, 1, 2, -1, 100];

fn gen_f64(rng: &mut Rng) -> f64 {
    if rng.gen_bool(0.5) {
        F64_POOL[rng.gen_range(0usize..F64_POOL.len())]
    } else {
        (rng.gen_range(-1000i64..=1000) as f64) / 8.0
    }
}

fn gen_i64(rng: &mut Rng) -> i64 {
    if rng.gen_bool(0.5) {
        I64_POOL[rng.gen_range(0usize..I64_POOL.len())]
    } else {
        rng.gen_range(-50i64..=200)
    }
}

fn gen_literal(rng: &mut Rng) -> String {
    if rng.gen_bool(0.5) {
        // `{:?}` is Rust's shortest round-trip rendering; it may produce
        // exponent forms (`1e-3`), which the lexer accepts.
        format!("{:?}", gen_f64(rng).abs())
    } else {
        format!("{}", gen_i64(rng).unsigned_abs())
    }
}

/// A random parenthesized expression over the schema's columns. Every
/// composite is fully parenthesized so rendering never depends on
/// precedence.
fn gen_expr(rng: &mut Rng, schema: &TableSchema, depth: usize) -> String {
    let leaf = depth == 0 || rng.gen_bool(0.4);
    if leaf {
        match rng.gen_range(0usize..4) {
            0 => gen_literal(rng),
            1 => "KEY".to_string(),
            _ => {
                let names: Vec<&str> = schema.names().collect();
                names[rng.gen_range(0usize..names.len())].to_string()
            }
        }
    } else if rng.gen_bool(0.15) {
        format!("(- {})", gen_expr(rng, schema, depth - 1))
    } else {
        let op = ["+", "-", "*", "/"][rng.gen_range(0usize..4)];
        let lhs = gen_expr(rng, schema, depth - 1);
        let rhs = gen_expr(rng, schema, depth - 1);
        format!("({lhs} {op} {rhs})")
    }
}

fn gen_predicate(rng: &mut Rng, schema: &TableSchema) -> String {
    if rng.gen_bool(0.25) {
        let lhs = gen_expr(rng, schema, 1);
        let (a, b) = (gen_literal(rng), gen_literal(rng));
        format!("{lhs} BETWEEN {a} AND {b}")
    } else {
        let op = ["<", "<=", ">", ">=", "=", "<>"][rng.gen_range(0usize..6)];
        let lhs = gen_expr(rng, schema, 2);
        let rhs = gen_expr(rng, schema, 1);
        format!("{lhs} {op} {rhs}")
    }
}

/// Generate one case. The same `(seed, rows)` always regenerates the same
/// table and query.
pub fn gen_case(seed: u64, rows: usize) -> FuzzCase {
    let mut rng = Rng::seed_from_u64(seed);

    // --- table ---
    let n_cols = rng.gen_range(2usize..6);
    let spec: Vec<(String, ColType)> = (0..n_cols)
        .map(|i| {
            let ty = if rng.gen_bool(0.5) { ColType::F64 } else { ColType::I64 };
            (format!("c{i}"), ty)
        })
        .collect();
    let schema = TableSchema::new(spec.iter().map(|(n, t)| (n.as_str(), *t)));

    let n = rng.gen_range(0usize..rows.max(1) + 1);
    // Duplicate-heavy, *unsorted* keys stress GROUP BY KEY; occasionally
    // pre-sorted row ids.
    let key: Vec<u64> = if rng.gen_bool(0.3) {
        (0..n as u64).collect()
    } else {
        let domain = (n as u64 / 3).max(1) + 1;
        (0..n).map(|_| rng.gen_range(0u64..domain)).collect()
    };
    let cols: Vec<Column> = spec
        .iter()
        .map(|(_, ty)| match ty {
            ColType::I64 => Column::I64((0..n).map(|_| gen_i64(&mut rng)).collect()),
            ColType::F64 => Column::F64((0..n).map(|_| gen_f64(&mut rng)).collect()),
        })
        .collect();
    let table = Relation::new(key, cols).expect("generated columns are key-aligned");

    let mut catalog = Catalog::new();
    catalog.add_table("t", schema);
    let schema = catalog.table("t").expect("just added");

    // --- query ---
    let agg_mode = rng.gen_bool(0.5);
    let n_items = rng.gen_range(1usize..4);
    let mut items = Vec::new();
    for i in 0..n_items {
        let alias = if rng.gen_bool(0.3) { format!(" AS x{i}") } else { String::new() };
        if agg_mode {
            let func = ["SUM", "AVG", "MIN", "MAX", "COUNT"][rng.gen_range(0usize..5)];
            let arg = if func == "COUNT" && rng.gen_bool(0.6) {
                "*".to_string()
            } else {
                gen_expr(&mut rng, schema, 2)
            };
            items.push(format!("{func}({arg}){alias}"));
        } else if rng.gen_bool(0.15) {
            items.push("*".to_string());
        } else {
            items.push(format!("{}{alias}", gen_expr(&mut rng, schema, 2)));
        }
    }
    let mut sql = format!("SELECT {} FROM t", items.join(", "));
    let n_preds = rng.gen_range(0usize..4);
    for i in 0..n_preds {
        let joiner = if i == 0 { " WHERE " } else { " AND " };
        sql.push_str(joiner);
        sql.push_str(&gen_predicate(&mut rng, schema));
    }
    if agg_mode && rng.gen_bool(0.5) {
        sql.push_str(" GROUP BY KEY");
    }

    // ORDER BY over the *output* schema: compile the prefix to learn the
    // real (deduplicated) output names, then target one of them.
    if rng.gen_bool(0.5) {
        let target = if rng.gen_bool(0.3) {
            Some("KEY".to_string())
        } else {
            compile(&sql, &catalog).ok().and_then(|c| {
                // Default names like `count` collide with keywords and are
                // not addressable in ORDER BY; only pick real identifiers.
                let usable: Vec<&String> = c
                    .output_names
                    .iter()
                    .filter(|n| {
                        matches!(
                            crate::token::lex(n).as_deref(),
                            Ok([t, _]) if matches!(t.kind, crate::token::TokenKind::Ident(_))
                        )
                    })
                    .collect();
                if usable.is_empty() {
                    None
                } else {
                    Some(usable[rng.gen_range(0usize..usable.len())].clone())
                }
            })
        };
        if let Some(t) = target {
            sql.push_str(&format!(" ORDER BY {t}"));
            if rng.gen_bool(0.4) {
                sql.push_str(" DESC");
            }
        }
    }

    FuzzCase { seed, sql, catalog, table }
}

// ---------------------------------------------------------------------------
// Differential execution
// ---------------------------------------------------------------------------

fn bit_identical(a: &Relation, b: &Relation) -> bool {
    if a.key != b.key || a.cols.len() != b.cols.len() {
        return false;
    }
    a.cols.iter().zip(&b.cols).all(|(x, y)| match (x, y) {
        (Column::I64(x), Column::I64(y)) => x == y,
        (Column::F64(x), Column::F64(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(a, b)| a.to_bits() == b.to_bits())
        }
        _ => false,
    })
}

const STRATEGIES: [Strategy; 3] =
    [Strategy::Serial, Strategy::Fusion, Strategy::FusionFission { segments: 4 }];
const LEVELS: [OptLevel; 3] = [OptLevel::O1, OptLevel::O2, OptLevel::O3];

/// Execute `sql` against `table` under the full engine × strategy × level
/// matrix. Returns the number of executions on agreement, or a description
/// of the first divergence.
pub fn differential(
    system: &GpuSystem,
    catalog: &Catalog,
    table: &Relation,
    sql: &str,
) -> Result<usize, String> {
    let compiled = compile(sql, catalog).map_err(|e| format!("compile failed: {e}"))?;
    let inputs = [table.clone()];
    let _guard = EngineGuard::new();
    let mut oracle: Option<Relation> = None;
    let mut executions = 0usize;
    for batch in [false, true] {
        engine::set_batch_enabled(batch);
        let engine_name = if batch { "batch" } else { "scalar" };
        for strategy in STRATEGIES {
            for level in LEVELS {
                let mut cfg = ExecConfig::new(strategy, system);
                cfg.level = level;
                let out = execute(system, &compiled.plan, &inputs, &cfg).map_err(|e| {
                    format!("{engine_name}/{strategy:?}/{level:?} failed to execute: {e}")
                })?;
                executions += 1;
                match &oracle {
                    None => oracle = Some(out.output),
                    Some(expect) => {
                        if !bit_identical(expect, &out.output) {
                            return Err(format!(
                                "{engine_name}/{strategy:?}/{level:?} diverges from the \
                                 scalar Serial oracle: oracle {} rows, got {} rows",
                                expect.len(),
                                out.output.len()
                            ));
                        }
                    }
                }
            }
        }
    }
    Ok(executions)
}

// ---------------------------------------------------------------------------
// Minimization
// ---------------------------------------------------------------------------

/// Greedily shrink a failing query: drop WHERE conjuncts, SELECT items,
/// ORDER BY, and GROUP BY while the reduced query still diverges. Rendering
/// goes through the real parser, so every intermediate stays replayable.
pub fn minimize(system: &GpuSystem, catalog: &Catalog, table: &Relation, sql: &str) -> String {
    let Ok(mut query) = crate::parser::parse(sql) else {
        return sql.to_string();
    };
    let still_fails = |q: &crate::ast::Query| {
        let text = render(q);
        differential(system, catalog, table, &text).is_err()
    };
    if !still_fails(&query) {
        // Rendering the parsed AST changed behavior (itself a bug, but not
        // one the minimizer can chase); report the original.
        return sql.to_string();
    }
    loop {
        let mut shrunk = false;
        for i in 0..query.predicates.len() {
            let mut cand = query.clone();
            cand.predicates.remove(i);
            if still_fails(&cand) {
                query = cand;
                shrunk = true;
                break;
            }
        }
        if shrunk {
            continue;
        }
        if query.items.len() > 1 {
            for i in 0..query.items.len() {
                let mut cand = query.clone();
                cand.items.remove(i);
                if still_fails(&cand) {
                    query = cand;
                    shrunk = true;
                    break;
                }
            }
        }
        if shrunk {
            continue;
        }
        if query.order_by.is_some() {
            let mut cand = query.clone();
            cand.order_by = None;
            if still_fails(&cand) {
                query = cand;
                continue;
            }
        }
        if query.group_by_key {
            let mut cand = query.clone();
            cand.group_by_key = false;
            if still_fails(&cand) {
                query = cand;
                continue;
            }
        }
        break;
    }
    render(&query)
}

/// Render an AST back to SQL (composites fully parenthesized). `BETWEEN`
/// reappears as its desugared conjunct pair.
pub fn render(q: &crate::ast::Query) -> String {
    use crate::ast::{AggFunc, CmpOp, Item, OrderTarget};
    let item = |i: &Item| -> String {
        match i {
            Item::Star => "*".to_string(),
            Item::Expr { expr, alias } => match alias {
                Some(a) => format!("{} AS {a}", render_expr(expr)),
                None => render_expr(expr),
            },
            Item::Agg { func, arg, alias } => {
                let f = match func {
                    AggFunc::Sum => "SUM",
                    AggFunc::Count => "COUNT",
                    AggFunc::Avg => "AVG",
                    AggFunc::Min => "MIN",
                    AggFunc::Max => "MAX",
                };
                let a = match arg {
                    None => "*".to_string(),
                    Some(e) => render_expr(e),
                };
                match alias {
                    Some(al) => format!("{f}({a}) AS {al}"),
                    None => format!("{f}({a})"),
                }
            }
        }
    };
    let mut out = format!(
        "SELECT {} FROM {}",
        q.items.iter().map(item).collect::<Vec<_>>().join(", "),
        q.table
    );
    for (i, p) in q.predicates.iter().enumerate() {
        let op = match p.op {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
        };
        out.push_str(if i == 0 { " WHERE " } else { " AND " });
        out.push_str(&format!("{} {op} {}", render_expr(&p.lhs), render_expr(&p.rhs)));
    }
    if q.group_by_key {
        out.push_str(" GROUP BY KEY");
    }
    if let Some(ob) = &q.order_by {
        match &ob.target {
            OrderTarget::Key => out.push_str(" ORDER BY KEY"),
            OrderTarget::Column(c) => out.push_str(&format!(" ORDER BY {c}")),
        }
        if ob.desc {
            out.push_str(" DESC");
        }
    }
    out
}

fn render_expr(e: &crate::ast::Expr) -> String {
    use crate::ast::{BinOp, Expr};
    match e {
        Expr::Key => "KEY".to_string(),
        Expr::Column(c) => c.clone(),
        Expr::Int(v) => format!("{v}"),
        // `{:?}` round-trips f64 exactly (the lexer accepts its exponent
        // forms), so re-rendered literals keep their bit patterns.
        Expr::Float(v) => format!("{v:?}"),
        Expr::Binary { op, lhs, rhs } => {
            let o = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
            };
            format!("({} {o} {})", render_expr(lhs), render_expr(rhs))
        }
        Expr::Neg(inner) => format!("(- {})", render_expr(inner)),
    }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// Run the fuzzer: `n_queries` cases of up to `rows` rows starting at
/// `seed0`. Mismatches are minimized and collected; a clean run returns an
/// empty `failures` list.
pub fn fuzz(system: &GpuSystem, n_queries: usize, rows: usize, seed0: u64) -> FuzzReport {
    let mut report = FuzzReport::default();
    for i in 0..n_queries {
        let seed = seed0.wrapping_add(i as u64);
        let case = gen_case(seed, rows);
        report.queries += 1;
        match differential(system, &case.catalog, &case.table, &case.sql) {
            Ok(execs) => report.executions += execs,
            Err(detail) => {
                let minimized = minimize(system, &case.catalog, &case.table, &case.sql);
                report.failures.push(FuzzFailure { seed, sql: case.sql, minimized, detail });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_always_compiles() {
        for seed in 0..200u64 {
            let a = gen_case(seed, 64);
            let b = gen_case(seed, 64);
            assert_eq!(a.sql, b.sql, "seed {seed} not deterministic");
            assert_eq!(a.table.key, b.table.key);
            compile(&a.sql, &a.catalog)
                .unwrap_or_else(|e| panic!("seed {seed}: {:?} failed to compile: {e}", a.sql));
        }
    }

    #[test]
    fn render_round_trips_through_the_parser() {
        for seed in 0..100u64 {
            let case = gen_case(seed, 16);
            let q = crate::parser::parse(&case.sql).unwrap();
            let text = render(&q);
            let q2 = crate::parser::parse(&text)
                .unwrap_or_else(|e| panic!("seed {seed}: rendered {text:?} unparseable: {e}"));
            assert_eq!(render(&q2), text, "seed {seed}: render not a fixed point");
        }
    }

    #[test]
    fn generated_queries_cover_the_grammar() {
        let mut group = 0;
        let mut order = 0;
        let mut agg = 0;
        let mut desc = 0;
        let mut div = 0;
        for seed in 0..300u64 {
            let sql = gen_case(seed, 32).sql;
            group += sql.contains("GROUP BY KEY") as usize;
            order += sql.contains("ORDER BY") as usize;
            agg += (sql.contains("SUM(") || sql.contains("COUNT(")) as usize;
            desc += sql.ends_with("DESC") as usize;
            div += sql.contains('/') as usize;
        }
        assert!(group > 20, "GROUP BY underrepresented: {group}");
        assert!(order > 40, "ORDER BY underrepresented: {order}");
        assert!(agg > 50, "aggregates underrepresented: {agg}");
        assert!(desc > 10, "DESC underrepresented: {desc}");
        assert!(div > 50, "division underrepresented: {div}");
    }
}
