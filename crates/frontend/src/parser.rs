//! Recursive-descent parser for the SQL subset (grammar in [`crate::ast`]).

use crate::ast::{AggFunc, BinOp, CmpOp, Expr, Item, OrderBy, OrderTarget, Predicate, Query};
use crate::token::{lex, Keyword, Token, TokenKind};
use std::fmt;

/// Parse errors with source position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset of the offending token.
    pub pos: usize,
    /// What was expected / found.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<crate::token::LexError> for ParseError {
    fn from(e: crate::token::LexError) -> Self {
        ParseError { pos: e.pos, message: e.message }
    }
}

/// Parse one query.
pub fn parse(src: &str) -> Result<Query, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, at: 0 };
    let q = p.query()?;
    p.expect_eof()?;
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.at]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.at].clone();
        if self.at + 1 < self.tokens.len() {
            self.at += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { pos: self.peek().pos, message: message.into() })
    }

    fn eat_keyword(&mut self, k: Keyword) -> bool {
        if self.peek().kind == TokenKind::Keyword(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, k: Keyword) -> Result<(), ParseError> {
        if self.eat_keyword(k) {
            Ok(())
        } else {
            self.err(format!("expected {k:?}, found {:?}", self.peek().kind))
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), ParseError> {
        if self.peek().kind == kind {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {kind:?}, found {:?}", self.peek().kind))
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if self.peek().kind == TokenKind::Eof {
            Ok(())
        } else {
            self.err(format!("unexpected trailing input: {:?}", self.peek().kind))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().kind.clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    fn query(&mut self) -> Result<Query, ParseError> {
        self.expect_keyword(Keyword::Select)?;
        let mut items = vec![self.item()?];
        while self.peek().kind == TokenKind::Comma {
            self.bump();
            items.push(self.item()?);
        }
        self.expect_keyword(Keyword::From)?;
        let table = self.ident()?;
        let mut predicates = Vec::new();
        if self.eat_keyword(Keyword::Where) {
            self.predicate_into(&mut predicates)?;
            while self.eat_keyword(Keyword::And) {
                self.predicate_into(&mut predicates)?;
            }
        }
        let mut group_by_key = false;
        if self.eat_keyword(Keyword::Group) {
            self.expect_keyword(Keyword::By)?;
            self.expect_keyword(Keyword::Key)?;
            group_by_key = true;
        }
        let mut order_by = None;
        if self.eat_keyword(Keyword::Order) {
            self.expect_keyword(Keyword::By)?;
            let target = if self.eat_keyword(Keyword::Key) {
                OrderTarget::Key
            } else {
                OrderTarget::Column(self.ident()?)
            };
            let desc = if self.eat_keyword(Keyword::Desc) {
                true
            } else {
                let _ = self.eat_keyword(Keyword::Asc);
                false
            };
            order_by = Some(OrderBy { target, desc });
        }
        Ok(Query { items, table, predicates, group_by_key, order_by })
    }

    fn item(&mut self) -> Result<Item, ParseError> {
        if self.peek().kind == TokenKind::Star {
            self.bump();
            return Ok(Item::Star);
        }
        let agg = match self.peek().kind {
            TokenKind::Keyword(Keyword::Sum) => Some(AggFunc::Sum),
            TokenKind::Keyword(Keyword::Count) => Some(AggFunc::Count),
            TokenKind::Keyword(Keyword::Avg) => Some(AggFunc::Avg),
            TokenKind::Keyword(Keyword::Min) => Some(AggFunc::Min),
            TokenKind::Keyword(Keyword::Max) => Some(AggFunc::Max),
            _ => None,
        };
        if let Some(func) = agg {
            self.bump();
            self.expect(TokenKind::LParen)?;
            let arg = if func == AggFunc::Count && self.peek().kind == TokenKind::Star {
                self.bump();
                None
            } else {
                Some(self.expr()?)
            };
            self.expect(TokenKind::RParen)?;
            let alias = self.alias()?;
            return Ok(Item::Agg { func, arg, alias });
        }
        let expr = self.expr()?;
        let alias = self.alias()?;
        Ok(Item::Expr { expr, alias })
    }

    fn alias(&mut self) -> Result<Option<String>, ParseError> {
        if self.eat_keyword(Keyword::As) {
            Ok(Some(self.ident()?))
        } else {
            Ok(None)
        }
    }

    /// Parse one predicate; `BETWEEN` desugars into two conjuncts.
    fn predicate_into(&mut self, out: &mut Vec<Predicate>) -> Result<(), ParseError> {
        let lhs = self.expr()?;
        if self.eat_keyword(Keyword::Between) {
            let lo = self.expr()?;
            self.expect_keyword(Keyword::And)?;
            let hi = self.expr()?;
            out.push(Predicate { lhs: lhs.clone(), op: CmpOp::Ge, rhs: lo });
            out.push(Predicate { lhs, op: CmpOp::Le, rhs: hi });
            return Ok(());
        }
        let op = match self.peek().kind {
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Ne => CmpOp::Ne,
            _ => return self.err("expected comparison operator"),
        };
        self.bump();
        let rhs = self.expr()?;
        out.push(Predicate { lhs, op, rhs });
        Ok(())
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.term()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.factor()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.factor()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<Expr, ParseError> {
        match self.peek().kind.clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Expr::Float(v))
            }
            TokenKind::Minus => {
                self.bump();
                Ok(Expr::Neg(Box::new(self.factor()?)))
            }
            TokenKind::Keyword(Keyword::Key) => {
                self.bump();
                Ok(Expr::Key)
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(Expr::Column(name))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            other => self.err(format!("expected expression, found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_select() {
        let q = parse("SELECT price FROM lineitem WHERE qty < 24").unwrap();
        assert_eq!(q.table, "lineitem");
        assert_eq!(q.items.len(), 1);
        assert_eq!(q.predicates.len(), 1);
        assert_eq!(q.predicates[0].op, CmpOp::Lt);
        assert!(!q.group_by_key);
    }

    #[test]
    fn parses_star_and_multiple_predicates() {
        let q = parse("SELECT * FROM t WHERE a < 1 AND b >= 2 AND c <> 3").unwrap();
        assert_eq!(q.items, vec![Item::Star]);
        assert_eq!(q.predicates.len(), 3);
    }

    #[test]
    fn between_desugars_to_two_conjuncts() {
        let q = parse("SELECT * FROM t WHERE d BETWEEN 0.05 AND 0.07").unwrap();
        assert_eq!(q.predicates.len(), 2);
        assert_eq!(q.predicates[0].op, CmpOp::Ge);
        assert_eq!(q.predicates[1].op, CmpOp::Le);
    }

    #[test]
    fn parses_aggregates_and_group_by() {
        let q = parse(
            "SELECT SUM(price * (1 - discount)) AS revenue, COUNT(*), AVG(qty) \
             FROM lineitem GROUP BY KEY",
        )
        .unwrap();
        assert!(q.group_by_key);
        assert_eq!(q.items.len(), 3);
        match &q.items[0] {
            Item::Agg { func: AggFunc::Sum, alias: Some(a), arg: Some(_) } => {
                assert_eq!(a, "revenue")
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(q.items[1], Item::Agg { func: AggFunc::Count, arg: None, .. }));
    }

    #[test]
    fn parses_order_by() {
        let q = parse("SELECT a FROM t ORDER BY KEY").unwrap();
        assert_eq!(q.order_by, Some(OrderBy { target: OrderTarget::Key, desc: false }));
        let q = parse("SELECT a FROM t ORDER BY a ASC").unwrap();
        assert_eq!(
            q.order_by,
            Some(OrderBy { target: OrderTarget::Column("a".into()), desc: false })
        );
    }

    #[test]
    fn parses_order_by_desc() {
        let q = parse("SELECT a FROM t ORDER BY a DESC").unwrap();
        assert_eq!(
            q.order_by,
            Some(OrderBy { target: OrderTarget::Column("a".into()), desc: true })
        );
        let q = parse("SELECT a FROM t ORDER BY KEY DESC").unwrap();
        assert_eq!(q.order_by, Some(OrderBy { target: OrderTarget::Key, desc: true }));
    }

    #[test]
    fn count_accepts_a_column_argument() {
        let q = parse("SELECT COUNT(qty) FROM t").unwrap();
        match &q.items[0] {
            Item::Agg { func: AggFunc::Count, arg: Some(Expr::Column(c)), alias: None } => {
                assert_eq!(c, "qty")
            }
            other => panic!("unexpected {other:?}"),
        }
        // COUNT(*) still parses as the arg-less form.
        let q = parse("SELECT COUNT(*) FROM t").unwrap();
        assert!(matches!(q.items[0], Item::Agg { func: AggFunc::Count, arg: None, .. }));
    }

    #[test]
    fn precedence_is_mul_over_add() {
        let q = parse("SELECT a + b * c FROM t").unwrap();
        match &q.items[0] {
            Item::Expr { expr: Expr::Binary { op: BinOp::Add, rhs, .. }, .. } => {
                assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parens_override_precedence() {
        let q = parse("SELECT (a + b) * c FROM t").unwrap();
        match &q.items[0] {
            Item::Expr { expr: Expr::Binary { op: BinOp::Mul, lhs, .. }, .. } => {
                assert!(matches!(**lhs, Expr::Binary { op: BinOp::Add, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse("SELECT FROM t").unwrap_err();
        assert_eq!(err.pos, 7);
        assert!(parse("SELECT a FROM t WHERE").is_err());
        assert!(parse("SELECT a FROM t extra").is_err());
        assert!(parse("SELECT a t").is_err());
    }

    #[test]
    fn unary_minus() {
        let q = parse("SELECT -a FROM t WHERE b < -5").unwrap();
        assert!(matches!(&q.items[0], Item::Expr { expr: Expr::Neg(_), .. }));
        assert_eq!(q.predicates[0].rhs, Expr::Neg(Box::new(Expr::Int(5))));
    }
}
