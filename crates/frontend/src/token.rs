//! Lexer for the SQL subset.

use std::fmt;

/// A lexical token with its byte position (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset in the source.
    pub pos: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Keyword (uppercased).
    Keyword(Keyword),
    /// Identifier (as written).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// End of input.
    Eof,
}

/// Recognized keywords (case-insensitive in the source).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    Select,
    From,
    Where,
    And,
    Between,
    Group,
    Order,
    By,
    Key,
    Sum,
    Count,
    Avg,
    Min,
    Max,
    As,
    Asc,
    Desc,
}

impl Keyword {
    fn from_str(s: &str) -> Option<Keyword> {
        Some(match s.to_ascii_uppercase().as_str() {
            "SELECT" => Keyword::Select,
            "FROM" => Keyword::From,
            "WHERE" => Keyword::Where,
            "AND" => Keyword::And,
            "BETWEEN" => Keyword::Between,
            "GROUP" => Keyword::Group,
            "ORDER" => Keyword::Order,
            "BY" => Keyword::By,
            "KEY" => Keyword::Key,
            "SUM" => Keyword::Sum,
            "COUNT" => Keyword::Count,
            "AVG" => Keyword::Avg,
            "MIN" => Keyword::Min,
            "MAX" => Keyword::Max,
            "AS" => Keyword::As,
            "ASC" => Keyword::Asc,
            "DESC" => Keyword::Desc,
            _ => return None,
        })
    }
}

/// Lexing errors.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize `src`. The final token is always [`TokenKind::Eof`].
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let pos = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            ',' => {
                out.push(Token { kind: TokenKind::Comma, pos });
                i += 1;
            }
            '(' => {
                out.push(Token { kind: TokenKind::LParen, pos });
                i += 1;
            }
            ')' => {
                out.push(Token { kind: TokenKind::RParen, pos });
                i += 1;
            }
            '*' => {
                out.push(Token { kind: TokenKind::Star, pos });
                i += 1;
            }
            '+' => {
                out.push(Token { kind: TokenKind::Plus, pos });
                i += 1;
            }
            '-' => {
                out.push(Token { kind: TokenKind::Minus, pos });
                i += 1;
            }
            '/' => {
                out.push(Token { kind: TokenKind::Slash, pos });
                i += 1;
            }
            '=' => {
                out.push(Token { kind: TokenKind::Eq, pos });
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token { kind: TokenKind::Ne, pos });
                    i += 2;
                } else {
                    return Err(LexError { pos, message: "expected '=' after '!'".into() });
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    out.push(Token { kind: TokenKind::Le, pos });
                    i += 2;
                }
                Some(b'>') => {
                    out.push(Token { kind: TokenKind::Ne, pos });
                    i += 2;
                }
                _ => {
                    out.push(Token { kind: TokenKind::Lt, pos });
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token { kind: TokenKind::Ge, pos });
                    i += 2;
                } else {
                    out.push(Token { kind: TokenKind::Gt, pos });
                    i += 1;
                }
            }
            '0'..='9' | '.' => {
                let start = i;
                let mut saw_dot = false;
                let mut saw_digit = false;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    saw_digit = true;
                    i += 1;
                }
                if i < bytes.len() && bytes[i] == b'.' {
                    saw_dot = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        saw_digit = true;
                        i += 1;
                    }
                }
                if !saw_digit {
                    return Err(LexError {
                        pos: start,
                        message: "expected digits in numeric literal".into(),
                    });
                }
                // Optional exponent ([eE][+-]?digits) makes it a float; a
                // bare `e` stays outside the literal (it lexes as an
                // identifier).
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        saw_dot = true; // exponent forces float
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                // A dot immediately after the literal (`1.2.3`, `1..2`,
                // `1e5.2`) is a malformed number, not two adjacent tokens.
                if i < bytes.len() && bytes[i] == b'.' {
                    return Err(LexError {
                        pos: i,
                        message: format!(
                            "unexpected '.' after numeric literal {:?}",
                            &src[start..i]
                        ),
                    });
                }
                let text = &src[start..i];
                let kind = if saw_dot {
                    TokenKind::Float(text.parse().map_err(|_| LexError {
                        pos: start,
                        message: format!("bad float literal {text:?}"),
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| LexError {
                        pos: start,
                        message: format!("bad integer literal {text:?}"),
                    })?)
                };
                out.push(Token { kind, pos: start });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let text = &src[start..i];
                let kind = match Keyword::from_str(text) {
                    Some(k) => TokenKind::Keyword(k),
                    None => TokenKind::Ident(text.to_string()),
                };
                out.push(Token { kind, pos: start });
            }
            other => {
                return Err(LexError { pos, message: format!("unexpected character {other:?}") })
            }
        }
    }
    out.push(Token { kind: TokenKind::Eof, pos: src.len() });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_a_basic_query() {
        let k = kinds("SELECT price FROM lineitem WHERE qty < 24");
        assert_eq!(k[0], TokenKind::Keyword(Keyword::Select));
        assert_eq!(k[1], TokenKind::Ident("price".into()));
        assert_eq!(k[2], TokenKind::Keyword(Keyword::From));
        assert_eq!(k[5], TokenKind::Ident("qty".into()));
        assert_eq!(k[6], TokenKind::Lt);
        assert_eq!(k[7], TokenKind::Int(24));
        assert_eq!(*k.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(kinds("select")[0], TokenKind::Keyword(Keyword::Select));
        assert_eq!(kinds("SeLeCt")[0], TokenKind::Keyword(Keyword::Select));
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(kinds("<=")[0], TokenKind::Le);
        assert_eq!(kinds(">=")[0], TokenKind::Ge);
        assert_eq!(kinds("<>")[0], TokenKind::Ne);
        assert_eq!(kinds("!=")[0], TokenKind::Ne);
        assert_eq!(kinds("<")[0], TokenKind::Lt);
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
        assert_eq!(kinds("0.25")[0], TokenKind::Float(0.25));
        assert_eq!(kinds(".5")[0], TokenKind::Float(0.5));
    }

    #[test]
    fn exponent_float_literals() {
        assert_eq!(kinds("1e5")[0], TokenKind::Float(1e5));
        assert_eq!(kinds("2.5e-3")[0], TokenKind::Float(2.5e-3));
        assert_eq!(kinds("7E+2")[0], TokenKind::Float(7e2));
        assert_eq!(kinds(".5e1")[0], TokenKind::Float(5.0));
        // A bare `e` after a number is an identifier, not an exponent.
        let k = kinds("24 e");
        assert_eq!(k[0], TokenKind::Int(24));
        assert_eq!(k[1], TokenKind::Ident("e".into()));
        let k = kinds("3e");
        assert_eq!(k[0], TokenKind::Int(3));
        assert_eq!(k[1], TokenKind::Ident("e".into()));
    }

    #[test]
    fn second_dot_in_numeric_literal_is_rejected() {
        // Regression: `1.2.3` used to lex silently as Float(1.2), Float(0.3).
        let err = lex("1.2.3").unwrap_err();
        assert_eq!(err.pos, 3, "error points at the second dot");
        let err = lex("1..2").unwrap_err();
        assert_eq!(err.pos, 2);
        let err = lex("SELECT 1.2.3 FROM t").unwrap_err();
        assert_eq!(err.pos, 10);
    }

    #[test]
    fn bare_dot_is_rejected() {
        let err = lex(".").unwrap_err();
        assert_eq!(err.pos, 0);
        assert!(lex("a < .").is_err());
    }

    #[test]
    fn desc_keyword() {
        assert_eq!(kinds("DESC")[0], TokenKind::Keyword(Keyword::Desc));
        assert_eq!(kinds("desc")[0], TokenKind::Keyword(Keyword::Desc));
    }

    #[test]
    fn bad_character_is_reported_with_position() {
        let err = lex("SELECT ^").unwrap_err();
        assert_eq!(err.pos, 7);
    }

    #[test]
    fn bang_without_eq_is_an_error() {
        assert!(lex("a ! b").is_err());
    }

    #[test]
    fn underscored_identifiers() {
        assert_eq!(kinds("l_extendedprice")[0], TokenKind::Ident("l_extendedprice".into()));
    }
}
