//! Abstract syntax for the SQL subset.
//!
//! The grammar (EBNF; keywords case-insensitive):
//!
//! ```text
//! query    := SELECT items FROM ident
//!             (WHERE pred (AND pred)*)?
//!             (GROUP BY KEY)?
//!             (ORDER BY (KEY | ident) (ASC | DESC)?)?
//! items    := item (',' item)*
//! item     := '*' | agg | expr (AS ident)?
//! agg      := (SUM|AVG|MIN|MAX) '(' expr ')' (AS ident)?
//!           | COUNT '(' ('*' | expr) ')' (AS ident)?
//! pred     := expr cmp expr | expr BETWEEN expr AND expr
//! cmp      := '<' | '<=' | '>' | '>=' | '=' | '<>'
//! expr     := term (('+'|'-') term)*
//! term     := factor (('*'|'/') factor)*
//! factor   := number | ident | KEY | '(' expr ')' | '-' factor
//! ```

/// A scalar expression over one table's row.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// The tuple key (`KEY`).
    Key,
    /// A named column.
    Column(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Arithmetic.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary negation.
    Neg(Box<Expr>),
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
}

/// One WHERE conjunct.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Left side.
    pub lhs: Expr,
    /// Comparison.
    pub op: CmpOp,
    /// Right side.
    pub rhs: Expr,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `SUM(expr)`
    Sum,
    /// `COUNT(*)`
    Count,
    /// `AVG(expr)`
    Avg,
    /// `MIN(expr)`
    Min,
    /// `MAX(expr)`
    Max,
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `*` — every column.
    Star,
    /// A scalar expression (plain column or computed).
    Expr {
        /// The expression.
        expr: Expr,
        /// Optional `AS` name.
        alias: Option<String>,
    },
    /// An aggregate.
    Agg {
        /// Function.
        func: AggFunc,
        /// Argument (`None` for `COUNT(*)`).
        arg: Option<Expr>,
        /// Optional `AS` name.
        alias: Option<String>,
    },
}

/// Sort target of `ORDER BY`.
#[derive(Debug, Clone, PartialEq)]
pub enum OrderTarget {
    /// `ORDER BY KEY`
    Key,
    /// `ORDER BY <column>` (of the *output*).
    Column(String),
}

/// The `ORDER BY` clause: target plus direction.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderBy {
    /// What to order by.
    pub target: OrderTarget,
    /// Whether `DESC` was given (default is ascending).
    pub desc: bool,
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// SELECT list.
    pub items: Vec<Item>,
    /// Source table name.
    pub table: String,
    /// WHERE conjuncts, in source order.
    pub predicates: Vec<Predicate>,
    /// Whether `GROUP BY KEY` was given.
    pub group_by_key: bool,
    /// Optional ordering.
    pub order_by: Option<OrderBy>,
}

impl Expr {
    /// Column names referenced by this expression.
    pub fn columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Column(c) = e {
                out.push(c.as_str());
            }
        });
        out
    }

    fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Binary { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            Expr::Neg(e) => e.walk(f),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_are_collected_in_order() {
        let e = Expr::Binary {
            op: BinOp::Mul,
            lhs: Box::new(Expr::Column("price".into())),
            rhs: Box::new(Expr::Binary {
                op: BinOp::Sub,
                lhs: Box::new(Expr::Int(1)),
                rhs: Box::new(Expr::Column("discount".into())),
            }),
        };
        assert_eq!(e.columns(), vec!["price", "discount"]);
    }
}
