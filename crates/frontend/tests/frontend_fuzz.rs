//! Differential fuzzing of the SQL front end against the scalar oracle.
//!
//! A single test drives the whole run because the engine selection it
//! toggles (`kfusion_relalg::engine::set_batch_enabled`) is process-global:
//! one test, one owner. The seed count scales up via `KFUSION_FUZZ_QUERIES`
//! (the CI smoke job runs 500+); seeds are fixed so a red run reproduces
//! locally by pasting the printed seed.

use kfusion_frontend::fuzz::{fuzz, gen_case};
use kfusion_vgpu::GpuSystem;

#[test]
fn differential_fuzz_finds_no_mismatches() {
    let n: usize =
        std::env::var("KFUSION_FUZZ_QUERIES").ok().and_then(|v| v.parse().ok()).unwrap_or(150);
    let rows: usize =
        std::env::var("KFUSION_FUZZ_ROWS").ok().and_then(|v| v.parse().ok()).unwrap_or(96);
    let system = GpuSystem::c2070();
    let report = fuzz(&system, n, rows, 0);
    assert_eq!(report.queries, n);
    assert!(report.executions >= n, "matrix should execute every query many times");
    if !report.failures.is_empty() {
        for f in &report.failures {
            eprintln!("{f}");
        }
        panic!("{} of {} fuzzed queries diverged from the oracle", report.failures.len(), n);
    }
    // The engine toggle must be restored after the run.
    assert!(kfusion_relalg::engine::batch_enabled());

    // Sanity-check the failure path end-to-end: corrupt a case's table so
    // row counts disagree with the compiled plan… not possible without an
    // engine bug, so instead check the replay contract directly — the
    // reported seed regenerates the identical case.
    let again = gen_case(7, rows);
    let case = gen_case(7, rows);
    assert_eq!(again.sql, case.sql);
}
