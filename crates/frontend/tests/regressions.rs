//! End-to-end regression tests for front-end bugs found by the fuzzer:
//! each compiles a query that used to miscompile and *executes* it, so the
//! fix is pinned at the answer level, not just the plan level.

use kfusion_core::exec::{execute, ExecConfig, Strategy};
use kfusion_frontend::{compile, Catalog, ColType, TableSchema};
use kfusion_relalg::{Column, Relation};
use kfusion_vgpu::GpuSystem;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table("t", TableSchema::new([("score", ColType::F64), ("rank", ColType::I64)]));
    c
}

fn table() -> Relation {
    Relation::new(
        vec![3, 1, 2, 0],
        vec![Column::F64(vec![2.5, -0.5, 2.5, 7.25]), Column::I64(vec![10, 40, 20, 30])],
    )
    .unwrap()
}

fn run(sql: &str) -> Relation {
    let system = GpuSystem::c2070();
    let q = compile(sql, &catalog()).expect("compiles");
    execute(&system, &q.plan, &[table()], &ExecConfig::new(Strategy::Fusion, &system))
        .expect("executes")
        .output
}

#[test]
fn order_by_f64_column_executes() {
    // Regression: this used to compile to an integer-column sort and fail
    // at runtime with SchemaMismatch.
    let out = run("SELECT score FROM t ORDER BY score");
    assert_eq!(out.cols[0].as_f64().unwrap(), &[-0.5, 2.5, 2.5, 7.25]);
    // Ties keep source order (stable sort): key 3 precedes key 2.
    assert_eq!(out.key, vec![1, 3, 2, 0]);

    let out = run("SELECT score FROM t ORDER BY score DESC");
    assert_eq!(out.cols[0].as_f64().unwrap(), &[7.25, 2.5, 2.5, -0.5]);
    assert_eq!(out.key, vec![0, 3, 2, 1], "descending is stable too");
}

#[test]
fn order_by_i64_column_still_works() {
    let out = run("SELECT rank FROM t ORDER BY rank");
    assert_eq!(out.cols[0].as_i64().unwrap(), &[10, 20, 30, 40]);
    let out = run("SELECT rank FROM t ORDER BY rank DESC");
    assert_eq!(out.cols[0].as_i64().unwrap(), &[40, 30, 20, 10]);
}

#[test]
fn group_by_key_over_unsorted_keys_executes() {
    // Regression: lowering emitted no key sort, so grouped aggregation over
    // any unsorted table failed at runtime with NotSorted.
    let out = run("SELECT SUM(score), COUNT(*) FROM t GROUP BY KEY");
    assert_eq!(out.key, vec![0, 1, 2, 3]);
    assert_eq!(out.cols[0].as_f64().unwrap(), &[7.25, -0.5, 2.5, 2.5]);
    assert_eq!(out.cols[1].as_i64().unwrap(), &[1, 1, 1, 1]);
}

#[test]
fn duplicate_keys_group_correctly() {
    let rel = Relation::new(
        vec![2, 1, 2, 1, 2],
        vec![Column::F64(vec![1.0, 2.0, 4.0, 8.0, 16.0]), Column::I64(vec![1, 2, 3, 4, 5])],
    )
    .unwrap();
    let system = GpuSystem::c2070();
    let q = compile("SELECT SUM(score), MAX(rank) FROM t GROUP BY KEY", &catalog()).unwrap();
    let out = execute(&system, &q.plan, &[rel], &ExecConfig::new(Strategy::Serial, &system))
        .unwrap()
        .output;
    assert_eq!(out.key, vec![1, 2]);
    assert_eq!(out.cols[0].as_f64().unwrap(), &[10.0, 21.0]);
    assert_eq!(out.cols[1].as_i64().unwrap(), &[4, 5]);
}

#[test]
fn second_dot_rejected_end_to_end() {
    // Regression: `1.2.3` used to lex as two floats, so this query parsed
    // (as nonsense) instead of erroring with a position.
    let err = compile("SELECT score FROM t WHERE score < 1.2.3", &catalog()).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("byte 37"), "positioned diagnostic, got: {msg}");
}
