//! `kfusion-trace` — unified tracing, metrics, and EXPLAIN-ANALYZE for the
//! whole stack (DESIGN.md §10).
//!
//! The paper argues with timelines and breakdowns (Fig. 13's copy/compute
//! overlap, Fig. 9/18's execution-time splits, Table III's instruction
//! counts); this crate is the substrate that lets every layer of the
//! reproduction *emit* those artifacts instead of ad-hoc prints:
//!
//! * a process-global **recorder** of spans, counters, and scopes that is
//!   default-off and costs one relaxed atomic load (no allocation, no lock)
//!   per call while disabled — instrumentation therefore stays compiled in
//!   everywhere, all the time;
//! * two **clock domains**: `Sim` spans carry explicit timestamps in
//!   simulated seconds (the discrete-event scheduler's clock), `Host` spans
//!   are measured with RAII guards against a session-relative monotonic
//!   epoch — so one trace can show the virtual GPU's H2D/compute/D2H
//!   engines next to real host phases;
//! * three **exporters**: Chrome trace-event JSON ([`chrome`], loadable in
//!   Perfetto / `chrome://tracing`), Prometheus-style text metrics
//!   ([`metrics`]), and an `EXPLAIN ANALYZE` plan-tree report ([`explain`]);
//! * an ASCII **Gantt** view over any trace ([`gantt`]) — the single
//!   renderer behind `kfusion_vgpu::gantt`;
//! * a dependency-free **JSON parser** ([`json`]) and the artifact
//!   **validator** ([`validate`]) behind the `kfusion-trace-check` binary
//!   and the golden tests.
//!
//! The crate depends on nothing but `std`, so every other workspace crate
//! (including the virtual GPU at the bottom of the dependency order) can
//! record into it.

pub mod allocwatch;
pub mod chrome;
pub mod explain;
pub mod gantt;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod validate;

use hist::Hist;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Which clock a span's timestamps belong to.
///
/// The two domains are deliberately never mixed in one timeline: simulated
/// seconds are the DES scheduler's model time, host seconds are wall-clock
/// measured on this machine. Exporters keep them on separate tracks
/// (separate `pid`s in the Chrome format).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Clock {
    /// Host wall-clock, seconds since the recorder session epoch.
    Host,
    /// Simulated time, seconds since the simulation's t=0.
    Sim,
}

/// One recorded span: a named interval on a (track, lane) of one clock.
///
/// Tracks are coarse execution resources (`"H2D"`, `"compute"`, `"D2H"`,
/// `"host"`, `"checker"`, `"bench"`); lanes separate concurrent occupants of
/// one track (stream indices in the simulator, thread lanes on the host).
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Span name (e.g. a command label or phase name).
    pub name: String,
    /// Track (engine/resource) the span ran on.
    pub track: String,
    /// Lane within the track (stream index or host thread lane).
    pub lane: u32,
    /// Clock domain of `start`/`end`.
    pub clock: Clock,
    /// Query scope active when the span was recorded (may be empty).
    pub scope: String,
    /// Start time in seconds (in `clock`'s domain).
    pub start: f64,
    /// End time in seconds.
    pub end: f64,
}

impl Span {
    /// Span duration in seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// An exported snapshot of recorded data: spans plus monotonic counters.
///
/// `Trace` is plain data — it can be held per-[`Report`], merged, exported,
/// or rendered without touching the global recorder.
///
/// [`Report`]: https://docs.rs/kfusion-core
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Recorded spans, in recording order.
    pub spans: Vec<Span>,
    /// Counter totals, keyed by full metric name (labels included, e.g.
    /// `kfusion_rows_out_total{op="select"}`).
    pub counters: BTreeMap<String, u64>,
    /// Latency histograms, keyed like counters (full name + labels). All
    /// histograms share one fixed bucket layout, so merging is exact.
    pub hists: BTreeMap<String, Hist>,
}

impl Trace {
    /// Spans on `clock`.
    pub fn spans_on(&self, clock: Clock) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.clock == clock)
    }

    /// Latest end time on `clock` (0 when empty).
    pub fn total(&self, clock: Clock) -> f64 {
        self.spans_on(clock).map(|s| s.end).fold(0.0, f64::max)
    }

    /// A counter's total (0 when never incremented).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Sum of all counters whose full key starts with `prefix` — handy for
    /// totals across labels (`kfusion_rows_out_total{` sums every operator).
    pub fn counter_prefix_sum(&self, prefix: &str) -> u64 {
        self.counters.iter().filter(|(k, _)| k.starts_with(prefix)).map(|(_, v)| v).sum()
    }

    /// A histogram by full key, if anything was observed under it.
    pub fn hist(&self, key: &str) -> Option<&Hist> {
        self.hists.get(key)
    }

    /// A histogram's `q`-quantile (0 when nothing was observed).
    pub fn hist_quantile(&self, key: &str, q: f64) -> f64 {
        self.hists.get(key).map(|h| h.quantile(q)).unwrap_or(0.0)
    }

    /// Merge `other` into `self`: spans append, counters add, histograms
    /// merge bucket-wise (exactly — see [`hist`]).
    pub fn merge(&mut self, other: &Trace) {
        self.spans.extend(other.spans.iter().cloned());
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.hists {
            self.hists.entry(k.clone()).or_default().merge(h);
        }
    }
}

// ---------------------------------------------------------------------------
// The process-global recorder.
// ---------------------------------------------------------------------------

/// Collection toggle. `Relaxed` is sufficient: the flag only gates whether
/// data is recorded, never orders it — the state mutex orders the data.
static ENABLED: AtomicBool = AtomicBool::new(false);

struct State {
    spans: Vec<Span>,
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, Hist>,
    scope: String,
    epoch: Instant,
}

fn state() -> &'static Mutex<State> {
    static STATE: OnceLock<Mutex<State>> = OnceLock::new();
    STATE.get_or_init(|| {
        Mutex::new(State {
            spans: Vec::new(),
            counters: BTreeMap::new(),
            hists: BTreeMap::new(),
            scope: String::new(),
            epoch: Instant::now(),
        })
    })
}

fn lock() -> std::sync::MutexGuard<'static, State> {
    // A panic while holding the lock poisons it; tracing must never take the
    // process down with it, so recover the data as-is.
    state().lock().unwrap_or_else(|e| e.into_inner())
}

/// Whether the recorder is collecting. This is the disabled fast path every
/// instrumentation site takes first: one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn collection on or off. Off is the default; benches and CLIs opt in.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Clear all recorded data and restart the host-clock epoch. The enabled
/// flag is left as-is.
pub fn reset() {
    let mut s = lock();
    s.spans.clear();
    s.counters.clear();
    s.hists.clear();
    s.scope.clear();
    s.epoch = Instant::now();
}

/// Set the query scope attached to subsequently recorded spans (e.g.
/// `"q1"`). Pass `""` to clear.
pub fn set_scope(scope: &str) {
    if !enabled() {
        return;
    }
    let mut s = lock();
    s.scope.clear();
    s.scope.push_str(scope);
}

/// Add `delta` to a counter. `key` is the full metric name including any
/// labels (use `'static` literals on hot paths so the disabled fast path
/// allocates nothing).
#[inline]
pub fn counter(key: &str, delta: u64) {
    if !enabled() {
        return;
    }
    let mut s = lock();
    match s.counters.get_mut(key) {
        Some(v) => *v += delta,
        None => {
            s.counters.insert(key.to_string(), delta);
        }
    }
}

/// Observe one value (seconds) under a latency histogram. `key` is the
/// full metric name including any labels (build labeled keys with
/// [`metrics::metric_key`] so values are escaped). Same contract as
/// [`counter`]: one relaxed atomic load and nothing else while disabled.
#[inline]
pub fn observe(key: &str, value: f64) {
    if !enabled() {
        return;
    }
    let mut s = lock();
    match s.hists.get_mut(key) {
        Some(h) => h.record(value),
        None => {
            let mut h = Hist::new();
            h.record(value);
            s.hists.insert(key.to_string(), h);
        }
    }
}

/// Record a span with explicit timestamps in **simulated** seconds — the
/// API the discrete-event scheduler uses to log model time alongside host
/// wall-clock.
#[inline]
pub fn sim_span(track: &str, lane: u32, name: &str, start: f64, end: f64) {
    if !enabled() {
        return;
    }
    let mut s = lock();
    let scope = s.scope.clone();
    s.spans.push(Span {
        name: name.to_string(),
        track: track.to_string(),
        lane,
        clock: Clock::Sim,
        scope,
        start,
        end,
    });
}

/// Per-thread host lane, so concurrent host spans land on distinct Chrome
/// tracks instead of producing ill-nested B/E pairs on one.
fn host_lane() -> u32 {
    static NEXT_LANE: AtomicU32 = AtomicU32::new(0);
    thread_local! {
        static LANE: u32 = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
    }
    LANE.with(|l| *l)
}

/// RAII guard for a host-clock span: created at the start of the region,
/// records the span on drop. Inert (no allocation) while the recorder is
/// disabled.
#[must_use = "the span ends when the guard drops"]
pub struct SpanGuard {
    live: Option<(String, String, Instant)>,
    lane: Option<u32>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((track, name, began)) = self.live.take() else { return };
        let ended = Instant::now();
        let mut s = lock();
        // The epoch can be newer than `began` if reset() raced the guard;
        // clamp so exported times stay non-negative.
        let start = began.saturating_duration_since(s.epoch).as_secs_f64();
        let end = ended.saturating_duration_since(s.epoch).as_secs_f64().max(start);
        let scope = s.scope.clone();
        let lane = self.lane.unwrap_or_else(host_lane);
        s.spans.push(Span { name, track, lane, clock: Clock::Host, scope, start, end });
    }
}

/// Open a host-clock span on `track` named `name`; the span is recorded
/// when the returned guard drops.
#[inline]
pub fn host_span(track: &str, name: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { live: None, lane: None };
    }
    SpanGuard { live: Some((track.to_string(), name.to_string(), Instant::now())), lane: None }
}

/// Record a host-clock span ending *now* that began at `began` — for
/// regions whose start predates the code that reports them, like a query's
/// queue wait: the service stamps `Instant::now()` at admission and records
/// the span once the query is dispatched.
#[inline]
pub fn record_host_span(track: &str, name: &str, began: Instant) {
    if !enabled() {
        return;
    }
    SpanGuard { live: Some((track.to_string(), name.to_string(), began)), lane: None }.finish();
}

/// Like [`record_host_span`], but on an explicit `lane` instead of the
/// calling thread's. Retroactive spans recorded on behalf of *another*
/// thread's wait (a worker logging a query's queue wait at pickup) must not
/// share a lane with the recording thread's own live spans: their start
/// times reach back across spans already closed on that lane, which the
/// Chrome B/E encoding cannot represent. A dedicated lane — where every
/// span carries the same name — stays valid under arbitrary overlap.
#[inline]
pub fn record_host_span_on(track: &str, lane: u32, name: &str, began: Instant) {
    if !enabled() {
        return;
    }
    SpanGuard { live: Some((track.to_string(), name.to_string(), began)), lane: Some(lane) }
        .finish();
}

impl SpanGuard {
    /// Record the span now (identical to dropping the guard).
    pub fn finish(self) {}
}

/// Clone the recorded data without clearing it.
pub fn snapshot() -> Trace {
    let s = lock();
    Trace { spans: s.spans.clone(), counters: s.counters.clone(), hists: s.hists.clone() }
}

/// Take the recorded data, leaving the recorder empty (epoch restarts).
pub fn take() -> Trace {
    let mut s = lock();
    let t = Trace {
        spans: std::mem::take(&mut s.spans),
        counters: std::mem::take(&mut s.counters),
        hists: std::mem::take(&mut s.hists),
    };
    s.scope.clear();
    s.epoch = Instant::now();
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    // The recorder is process-global and `cargo test` runs tests on
    // concurrent threads, so every test here serializes on one lock.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_recorder_collects_nothing() {
        let _g = serial();
        set_enabled(false);
        reset();
        counter("kfusion_test_total", 5);
        observe("kfusion_test_seconds", 0.25);
        sim_span("compute", 0, "k", 0.0, 1.0);
        {
            let _s = host_span("host", "phase");
        }
        let t = snapshot();
        assert!(t.spans.is_empty());
        assert!(t.counters.is_empty());
        assert!(t.hists.is_empty());
    }

    #[test]
    fn spans_counters_and_scopes_round_trip() {
        let _g = serial();
        set_enabled(true);
        reset();
        set_scope("q1");
        counter("kfusion_test_total", 2);
        counter("kfusion_test_total", 3);
        observe("kfusion_test_seconds", 0.008);
        observe("kfusion_test_seconds", 0.016);
        sim_span("H2D", 1, "in#0", 0.0, 0.5);
        {
            let _s = host_span("host", "functional");
        }
        set_scope("");
        set_enabled(false);
        let t = take();
        assert_eq!(t.counter("kfusion_test_total"), 5);
        let h = t.hist("kfusion_test_seconds").expect("histogram recorded");
        assert_eq!(h.count(), 2);
        assert!(t.hist_quantile("kfusion_test_seconds", 1.0) >= 0.016);
        assert_eq!(t.spans.len(), 2);
        let sim = &t.spans[0];
        assert_eq!((sim.track.as_str(), sim.lane, sim.clock), ("H2D", 1, Clock::Sim));
        assert_eq!(sim.scope, "q1");
        let host = &t.spans[1];
        assert_eq!(host.clock, Clock::Host);
        assert!(host.end >= host.start && host.start >= 0.0);
        // take() drained everything.
        assert!(snapshot().spans.is_empty());
    }

    #[test]
    fn merge_appends_spans_and_adds_counters() {
        let mut a = Trace::default();
        a.counters.insert("x".into(), 1);
        let mut b = Trace::default();
        b.counters.insert("x".into(), 2);
        b.spans.push(Span {
            name: "k".into(),
            track: "compute".into(),
            lane: 0,
            clock: Clock::Sim,
            scope: String::new(),
            start: 0.0,
            end: 1.0,
        });
        let mut ha = Hist::new();
        ha.record(0.5);
        a.hists.insert("h".into(), ha);
        let mut hb = Hist::new();
        hb.record(0.5);
        hb.record(1.0);
        b.hists.insert("h".into(), hb);
        a.merge(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.spans.len(), 1);
        assert_eq!(a.counter_prefix_sum("x"), 3);
        assert_eq!(a.hist("h").unwrap().count(), 3);
    }

    #[test]
    fn totals_per_clock() {
        let mut t = Trace::default();
        for (clock, end) in [(Clock::Sim, 2.0), (Clock::Host, 5.0)] {
            t.spans.push(Span {
                name: "s".into(),
                track: "t".into(),
                lane: 0,
                clock,
                scope: String::new(),
                start: 0.0,
                end,
            });
        }
        assert_eq!(t.total(Clock::Sim), 2.0);
        assert_eq!(t.total(Clock::Host), 5.0);
    }
}
