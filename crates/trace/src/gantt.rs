//! ASCII Gantt rendering of a trace — one row per track, time on the
//! horizontal axis, `#` for busy cells.
//!
//! This is the single renderer behind `kfusion_vgpu::gantt::render` (which
//! converts its simulated `Timeline` to a [`Trace`] and delegates here), and
//! it draws host-clock traces just as well — pass [`Clock::Host`].
//!
//! ```text
//! H2D     |####__####__####__                  |
//! compute |____####__####__####                |
//! D2H     |______####__####__####              |
//! ```

use crate::{Clock, Trace};

/// Canonical row order: the simulator's engines first, in pipeline order,
/// then any other tracks alphabetically.
fn track_rank(track: &str) -> u32 {
    match track {
        "H2D" => 0,
        "compute" => 1,
        "D2H" => 2,
        "host" => 3,
        _ => 4,
    }
}

/// Render the `clock`-domain spans of `trace` as an ASCII Gantt chart
/// `width` characters wide.
///
/// Tracks with no positive-duration spans are omitted. Each cell covers
/// `total/width` seconds and is drawn `#` if any span on that track
/// overlaps it.
pub fn render(trace: &Trace, clock: Clock, width: usize) -> String {
    let total = trace.total(clock);
    let width = width.max(10);
    if total <= 0.0 {
        return String::from("(empty timeline)\n");
    }
    let mut tracks: Vec<&str> =
        trace.spans_on(clock).filter(|s| s.duration() > 0.0).map(|s| s.track.as_str()).collect();
    tracks.sort_by(|a, b| (track_rank(a), *a).cmp(&(track_rank(b), *b)));
    tracks.dedup();
    let label_width = tracks.iter().map(|t| t.len()).max().unwrap_or(0).max(7);

    let cell = total / width as f64;
    let mut out = String::new();
    for track in tracks {
        let mut row = vec![b'_'; width];
        for s in trace.spans_on(clock).filter(|s| s.track == track && s.duration() > 0.0) {
            let a = ((s.start / cell).floor() as usize).min(width - 1);
            let b = ((s.end / cell).ceil() as usize).clamp(a + 1, width);
            for c in &mut row[a..b] {
                *c = b'#';
            }
        }
        out.push_str(&format!("{track:<label_width$}"));
        out.push_str(" |");
        out.push_str(std::str::from_utf8(&row).expect("ascii"));
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "total: {:.3} ms ({} cells of {:.3} ms)\n",
        total * 1e3,
        width,
        cell * 1e3
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Span;

    fn span(track: &str, start: f64, end: f64) -> Span {
        Span {
            name: "s".into(),
            track: track.into(),
            lane: 0,
            clock: Clock::Sim,
            scope: String::new(),
            start,
            end,
        }
    }

    #[test]
    fn rows_in_canonical_order_with_aligned_labels() {
        let mut t = Trace::default();
        t.spans.push(span("D2H", 2.0, 3.0));
        t.spans.push(span("H2D", 0.0, 1.0));
        t.spans.push(span("compute", 1.0, 2.0));
        let g = render(&t, Clock::Sim, 30);
        let lines: Vec<&str> = g.lines().collect();
        assert!(lines[0].starts_with("H2D     |"));
        assert!(lines[1].starts_with("compute |"));
        assert!(lines[2].starts_with("D2H     |"));
        assert!(lines[3].starts_with("total: "));
    }

    #[test]
    fn empty_clock_domain_renders_placeholder() {
        let mut t = Trace::default();
        t.spans.push(span("compute", 0.0, 1.0));
        assert_eq!(render(&t, Clock::Host, 40), "(empty timeline)\n");
    }

    #[test]
    fn long_track_names_widen_the_label_column() {
        let mut t = Trace::default();
        t.spans.push(span("compute", 0.0, 1.0));
        t.spans.push(span("checker-passes", 0.0, 1.0));
        let g = render(&t, Clock::Sim, 20);
        assert!(g.contains("compute        |"));
        assert!(g.contains("checker-passes |"));
    }
}
