//! `kfusion-trace-check` — validate emitted trace/metrics artifacts.
//!
//! CI's observability job runs TPC-H queries with tracing on and then gates
//! on this binary: the Chrome trace JSON must be structurally sound (valid
//! JSON, monotone timestamps, well-nested B/E pairs) and, optionally, must
//! *show* the physics the run claims — e.g. `--require-overlap H2D,compute`
//! proves the Q1 fission pipeline really overlapped transfers with compute
//! (the paper's Fig. 13).
//!
//! ```sh
//! kfusion-trace-check q1.trace.json \
//!     --metrics q1.metrics.txt \
//!     --require-tracks H2D,compute,D2H \
//!     --require-overlap H2D,compute
//! ```
//!
//! Exits 0 when every check passes, 1 with a diagnostic otherwise. All
//! validation lives in [`kfusion_trace::validate`]; malformed artifacts
//! (events missing fields, non-numeric pids, ill-nested pairs) produce
//! diagnostics, never panics.

use kfusion_trace::json::parse;
use kfusion_trace::validate::{
    validate, validate_histogram_family, validate_metrics, Requirements,
};

fn fail(msg: &str) -> ! {
    eprintln!("kfusion-trace-check: FAIL: {msg}");
    std::process::exit(1);
}

fn main() {
    let mut trace_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut histogram_families: Vec<String> = Vec::new();
    let mut req = Requirements::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--metrics" => {
                metrics_path = Some(args.next().unwrap_or_else(|| fail("--metrics needs a path")))
            }
            "--require-histogram" => {
                let list =
                    args.next().unwrap_or_else(|| fail("--require-histogram needs FAMILY[,..]"));
                histogram_families.extend(list.split(',').map(str::to_string));
            }
            "--require-tracks" => {
                let list = args.next().unwrap_or_else(|| fail("--require-tracks needs A,B,C"));
                req.tracks = list.split(',').map(str::to_string).collect();
            }
            "--require-overlap" => {
                let list = args.next().unwrap_or_else(|| fail("--require-overlap needs A,B"));
                let mut it = list.splitn(2, ',');
                match (it.next(), it.next()) {
                    (Some(a), Some(b)) => req.overlap = Some((a.to_string(), b.to_string())),
                    _ => fail("--require-overlap needs two track names: A,B"),
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: kfusion-trace-check TRACE.json [--metrics PATH] [--require-tracks A,B,C] [--require-overlap A,B] [--require-histogram FAMILY,..]"
                );
                return;
            }
            other if trace_path.is_none() && !other.starts_with('-') => {
                trace_path = Some(other.to_string());
            }
            other => fail(&format!("unknown argument {other:?}")),
        }
    }
    let trace_path = trace_path.unwrap_or_else(|| fail("no trace file given"));

    let text = std::fs::read_to_string(&trace_path)
        .unwrap_or_else(|e| fail(&format!("cannot read {trace_path}: {e}")));
    let doc = parse(&text).unwrap_or_else(|e| fail(&format!("{trace_path}: {e}")));
    let summary = match validate(&doc, &req) {
        Ok(s) => s,
        Err(e) => fail(&format!("{trace_path}: {e}")),
    };

    if !histogram_families.is_empty() && metrics_path.is_none() {
        fail("--require-histogram needs --metrics PATH");
    }
    if let Some(path) = &metrics_path {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
        match validate_metrics(&text) {
            Ok(n) => println!("kfusion-trace-check: {path}: {n} metric lines OK"),
            Err(e) => fail(&format!("{path}: {e}")),
        }
        for fam in &histogram_families {
            match validate_histogram_family(&text, fam) {
                Ok(n) => {
                    println!("kfusion-trace-check: {path}: histogram {fam}: {n} label-series OK")
                }
                Err(e) => fail(&format!("{path}: {e}")),
            }
        }
    }

    println!(
        "kfusion-trace-check: {trace_path}: {} span events on tracks {:?} OK",
        summary.span_events, summary.tracks
    );
}
