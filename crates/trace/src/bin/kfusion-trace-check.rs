//! `kfusion-trace-check` — validate emitted trace/metrics artifacts.
//!
//! CI's observability job runs TPC-H queries with tracing on and then gates
//! on this binary: the Chrome trace JSON must be structurally sound (valid
//! JSON, monotone timestamps, well-nested B/E pairs) and, optionally, must
//! *show* the physics the run claims — e.g. `--require-overlap H2D,compute`
//! proves the Q1 fission pipeline really overlapped transfers with compute
//! (the paper's Fig. 13).
//!
//! ```sh
//! kfusion-trace-check q1.trace.json \
//!     --metrics q1.metrics.txt \
//!     --require-tracks H2D,compute,D2H \
//!     --require-overlap H2D,compute
//! ```
//!
//! Exits 0 when every check passes, 1 with a diagnostic otherwise.

use kfusion_trace::json::{parse, Value};
use std::collections::HashMap;

fn fail(msg: &str) -> ! {
    eprintln!("kfusion-trace-check: FAIL: {msg}");
    std::process::exit(1);
}

/// A reconstructed interval on one (pid, tid).
struct Interval {
    pid: f64,
    tid: f64,
    start: f64,
    end: f64,
}

fn num(e: &Value, key: &str) -> Option<f64> {
    e.get(key).and_then(Value::as_f64)
}

fn main() {
    let mut trace_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut require_tracks: Vec<String> = Vec::new();
    let mut require_overlap: Option<(String, String)> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--metrics" => {
                metrics_path = Some(args.next().unwrap_or_else(|| fail("--metrics needs a path")))
            }
            "--require-tracks" => {
                let list = args.next().unwrap_or_else(|| fail("--require-tracks needs A,B,C"));
                require_tracks = list.split(',').map(str::to_string).collect();
            }
            "--require-overlap" => {
                let list = args.next().unwrap_or_else(|| fail("--require-overlap needs A,B"));
                let mut it = list.splitn(2, ',');
                match (it.next(), it.next()) {
                    (Some(a), Some(b)) => require_overlap = Some((a.to_string(), b.to_string())),
                    _ => fail("--require-overlap needs two track names: A,B"),
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: kfusion-trace-check TRACE.json [--metrics PATH] [--require-tracks A,B,C] [--require-overlap A,B]"
                );
                return;
            }
            other if trace_path.is_none() && !other.starts_with('-') => {
                trace_path = Some(other.to_string());
            }
            other => fail(&format!("unknown argument {other:?}")),
        }
    }
    let trace_path = trace_path.unwrap_or_else(|| fail("no trace file given"));

    let text = std::fs::read_to_string(&trace_path)
        .unwrap_or_else(|e| fail(&format!("cannot read {trace_path}: {e}")));
    let doc = parse(&text).unwrap_or_else(|e| fail(&format!("{trace_path}: {e}")));
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .unwrap_or_else(|| fail("document has no traceEvents array"));

    // Pass 1: field shape, metadata, monotone timestamps.
    let mut track_of_tid: HashMap<(u64, u64), String> = HashMap::new();
    let mut last_ts = f64::NEG_INFINITY;
    let mut n_spans = 0usize;
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Value::as_str)
            .unwrap_or_else(|| fail(&format!("event {i} has no ph")));
        for key in ["name", "pid", "tid", "ts"] {
            if e.get(key).is_none() {
                fail(&format!("event {i} (ph={ph}) is missing {key}"));
            }
        }
        let (pid, tid) = (num(e, "pid").unwrap(), num(e, "tid").unwrap());
        let ts = num(e, "ts").unwrap_or_else(|| fail(&format!("event {i}: ts is not a number")));
        match ph {
            "M" => {
                if e.get("name").and_then(Value::as_str) == Some("thread_name") {
                    let tname = e
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Value::as_str)
                        .unwrap_or_else(|| {
                            fail(&format!("event {i}: thread_name without args.name"))
                        });
                    // Thread names are "{track}/{lane}".
                    let track = tname.rsplit_once('/').map_or(tname, |(t, _)| t);
                    track_of_tid.insert((pid as u64, tid as u64), track.to_string());
                }
            }
            "B" | "E" | "X" => {
                if ts < last_ts {
                    fail(&format!("event {i}: ts {ts} < previous {last_ts} (not monotone)"));
                }
                last_ts = ts;
                n_spans += 1;
            }
            other => fail(&format!("event {i}: unexpected ph {other:?}")),
        }
    }

    // Pass 2: B/E pairing per (pid, tid), and interval reconstruction.
    let mut stacks: HashMap<(u64, u64), Vec<(String, f64)>> = HashMap::new();
    let mut intervals: Vec<Interval> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        let ph = e.get("ph").and_then(Value::as_str).unwrap();
        let key = (num(e, "pid").unwrap() as u64, num(e, "tid").unwrap() as u64);
        let name = e.get("name").and_then(Value::as_str).unwrap_or("");
        let ts = num(e, "ts").unwrap();
        match ph {
            "B" => stacks.entry(key).or_default().push((name.to_string(), ts)),
            "E" => {
                let Some((open, start)) = stacks.entry(key).or_default().pop() else {
                    fail(&format!("event {i}: E {name:?} with no open B on pid/tid {key:?}"));
                };
                if open != name {
                    fail(&format!("event {i}: E {name:?} closes B {open:?} (ill-nested)"));
                }
                intervals.push(Interval { pid: key.0 as f64, tid: key.1 as f64, start, end: ts });
            }
            "X" => {
                let dur = num(e, "dur").unwrap_or(0.0);
                intervals.push(Interval {
                    pid: key.0 as f64,
                    tid: key.1 as f64,
                    start: ts,
                    end: ts + dur,
                });
            }
            _ => {}
        }
    }
    for (key, stack) in &stacks {
        if let Some((name, _)) = stack.last() {
            fail(&format!("unclosed B {name:?} on pid/tid {key:?}"));
        }
    }

    // Track-level requirements.
    let tracks_present: Vec<&str> = {
        let mut v: Vec<&str> = track_of_tid.values().map(String::as_str).collect();
        v.sort();
        v.dedup();
        v
    };
    for want in &require_tracks {
        if !tracks_present.iter().any(|t| t == want) {
            fail(&format!("required track {want:?} not in trace (present: {tracks_present:?})"));
        }
    }
    if let Some((a, b)) = &require_overlap {
        let on_track = |want: &str| -> Vec<&Interval> {
            intervals
                .iter()
                .filter(|iv| {
                    track_of_tid.get(&(iv.pid as u64, iv.tid as u64)).is_some_and(|t| t == want)
                })
                .collect()
        };
        let (ia, ib) = (on_track(a), on_track(b));
        let overlapped = ia
            .iter()
            .any(|x| ib.iter().any(|y| x.start < y.end && y.start < x.end && x.end > x.start));
        if !overlapped {
            fail(&format!(
                "no span on track {a:?} overlaps any span on track {b:?} \
                 ({} vs {} spans) — expected copy/compute overlap",
                ia.len(),
                ib.len()
            ));
        }
    }

    // Metrics text, when given: comments + `name value` lines, u64 values.
    if let Some(path) = &metrics_path {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
        let mut n_metrics = 0usize;
        for (lineno, line) in text.lines().enumerate() {
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((name, value)) = line.rsplit_once(' ') else {
                fail(&format!("{path}:{}: not a `name value` line: {line:?}", lineno + 1));
            };
            if name.is_empty() || value.parse::<u64>().is_err() {
                fail(&format!("{path}:{}: bad counter line: {line:?}", lineno + 1));
            }
            n_metrics += 1;
        }
        if n_metrics == 0 {
            fail(&format!("{path}: no counters recorded"));
        }
        println!("kfusion-trace-check: {path}: {n_metrics} counters OK");
    }

    println!(
        "kfusion-trace-check: {trace_path}: {n_spans} span events on tracks {tracks_present:?} OK"
    );
}
