//! Allocation accounting for the zero-allocation steady-state claim
//! (DESIGN.md §14).
//!
//! The batch engine's contract is that its steady-state inner loops — the
//! per-batch work between per-morsel setup points — allocate nothing. This
//! module makes that claim *measurable* instead of asserted:
//!
//! * [`CountingAlloc`] is a [`GlobalAlloc`] wrapper over the system
//!   allocator that counts allocations. A harness binary (the
//!   `throughput_host` bench, the `steady_state_allocs` integration test)
//!   installs it with `#[global_allocator]`; library code never does, so
//!   production builds pay nothing.
//! * [`region`] returns an RAII guard that marks the current thread as
//!   inside a steady-state region. While the flag is set, every allocation
//!   on that thread ticks the region counters. The relational operators
//!   wrap exactly their per-batch loops in a region — per-morsel setup
//!   (machine checkout, output-buffer reservation) stays outside.
//! * When counting is [`enabled`], *all* allocations (region or not) tick
//!   the total counters, giving the "how much does the whole run allocate"
//!   denominator the bench reports next to the steady-state zero.
//!
//! The thread-local region flag is a `const`-initialized `Cell<bool>`:
//! reading it never allocates and it has no destructor, both of which
//! matter because the check runs *inside* the allocator. Harnesses export
//! the totals into trace counters (`kfusion_batch_allocs_total`,
//! `kfusion_batch_alloc_bytes_total`) after a run, where the
//! `allocating-steady-state` lint and the metrics exporter can see them.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);
static REGION_ALLOCS: AtomicU64 = AtomicU64::new(0);
static REGION_BYTES: AtomicU64 = AtomicU64::new(0);
static TOTAL_ALLOCS: AtomicU64 = AtomicU64::new(0);
static TOTAL_BYTES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static IN_REGION: Cell<bool> = const { Cell::new(false) };
}

/// Turn allocation counting on or off (off by default). Only effective in
/// processes whose binary installed [`CountingAlloc`]; a no-op switch
/// elsewhere.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether allocation counting is on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zero all counters.
pub fn reset() {
    REGION_ALLOCS.store(0, Ordering::Relaxed);
    REGION_BYTES.store(0, Ordering::Relaxed);
    TOTAL_ALLOCS.store(0, Ordering::Relaxed);
    TOTAL_BYTES.store(0, Ordering::Relaxed);
}

/// `(allocations, bytes)` observed inside steady-state regions since the
/// last [`reset`].
pub fn region_counts() -> (u64, u64) {
    (REGION_ALLOCS.load(Ordering::Relaxed), REGION_BYTES.load(Ordering::Relaxed))
}

/// `(allocations, bytes)` observed anywhere (while counting was enabled)
/// since the last [`reset`].
pub fn total_counts() -> (u64, u64) {
    (TOTAL_ALLOCS.load(Ordering::Relaxed), TOTAL_BYTES.load(Ordering::Relaxed))
}

/// Marks the current thread as inside a steady-state (supposedly
/// zero-allocation) region until dropped. Nesting is fine; the flag
/// restores to its previous value.
pub struct RegionGuard {
    prev: bool,
}

/// Enter a steady-state region on this thread.
pub fn region() -> RegionGuard {
    let prev = IN_REGION.try_with(|c| c.replace(true)).unwrap_or(false);
    RegionGuard { prev }
}

impl Drop for RegionGuard {
    fn drop(&mut self) {
        let _ = IN_REGION.try_with(|c| c.set(self.prev));
    }
}

/// Export the current counts into the global trace recorder under the
/// `kfusion_batch_allocs_total` / `kfusion_batch_alloc_bytes_total` keys
/// (labelled by whether they were in-region), so metrics snapshots and the
/// `allocating-steady-state` lint see them. Call after a measured run, with
/// tracing enabled.
pub fn export_counters() {
    let (ra, rb) = region_counts();
    let (ta, tb) = total_counts();
    crate::counter("kfusion_batch_allocs_total{scope=\"steady_state\"}", ra);
    crate::counter("kfusion_batch_alloc_bytes_total{scope=\"steady_state\"}", rb);
    crate::counter("kfusion_batch_allocs_total{scope=\"run\"}", ta);
    crate::counter("kfusion_batch_alloc_bytes_total{scope=\"run\"}", tb);
}

/// A system-allocator wrapper that feeds the counters above. Install in a
/// harness binary:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: kfusion_trace::allocwatch::CountingAlloc =
///     kfusion_trace::allocwatch::CountingAlloc;
/// ```
pub struct CountingAlloc;

impl CountingAlloc {
    #[inline]
    fn count(size: usize) {
        if !enabled() {
            return;
        }
        TOTAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
        TOTAL_BYTES.fetch_add(size as u64, Ordering::Relaxed);
        if IN_REGION.try_with(|c| c.get()).unwrap_or(false) {
            REGION_ALLOCS.fetch_add(1, Ordering::Relaxed);
            REGION_BYTES.fetch_add(size as u64, Ordering::Relaxed);
        }
    }
}

// SAFETY: pure pass-through to `System`; the counting side effects touch
// only atomics and a const-initialized, destructor-free thread-local, so
// no allocation or unwinding happens inside the allocator itself.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        Self::count(layout.size());
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        Self::count(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A growth is the allocation steady state must not do; shrinks in
        // place are free but counted conservatively too.
        Self::count(new_size);
        System.realloc(ptr, layout, new_size)
    }
}
