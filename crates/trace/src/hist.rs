//! Mergeable log-bucketed latency histograms (DESIGN.md §15).
//!
//! The bucketing is *fixed*: every histogram in the process uses the same
//! base-2-with-subbuckets layout, derived bit-exactly from the IEEE-754
//! representation of the recorded value (exponent + top mantissa bits).
//! Because a value's bucket index is a pure function of its bits — no
//! floating-point `log2`, no per-histogram configuration — two histograms
//! built from any partition of one value stream have *identical* bucket
//! counts after [`Hist::merge`] as the histogram of the combined stream.
//! That exact-merge property is what lets per-thread/per-query histograms
//! be folded into one distribution with no resampling error, and it is
//! property-tested in `tests/prop_hist.rs`.
//!
//! Layout: [`SUBBUCKETS`] sub-buckets per power of two (relative bucket
//! width 1/8 = 12.5%), covering 2^[`MIN_EXP`] .. 2^[`MAX_EXP`] seconds
//! (~1 ns .. ~17 min), plus an underflow bucket (index 0: zero, negatives,
//! subnormal-small values, NaN) and an overflow bucket (index
//! [`BUCKETS`]`-1`, exported as `le="+Inf"`).

/// log2 of the sub-bucket count per power of two.
pub const SUBBUCKET_BITS: u32 = 3;
/// Sub-buckets per power of two (8 → 12.5% relative bucket width).
pub const SUBBUCKETS: usize = 1 << SUBBUCKET_BITS;
/// Smallest binary exponent with its own buckets: values ≤ 2^MIN_EXP
/// (~0.93 ns) land in the underflow bucket.
pub const MIN_EXP: i32 = -30;
/// One past the largest covered exponent: values ≥ 2^MAX_EXP (1024 s) land
/// in the overflow bucket.
pub const MAX_EXP: i32 = 10;
/// Total bucket count: underflow + (MAX_EXP-MIN_EXP)×SUBBUCKETS + overflow.
pub const BUCKETS: usize = (MAX_EXP - MIN_EXP) as usize * SUBBUCKETS + 2;

/// A fixed-layout log-bucketed histogram of nonnegative seconds.
///
/// `record` is O(1) with no allocation after construction; `merge` is an
/// element-wise add and is *exact* (see module docs). Quantile queries
/// return the upper bound of the bucket holding the rank-th smallest
/// recorded value, so the error is at most one bucket width (≤ 12.5%
/// relative) — tight enough to gate p50/p95/p99 in CI.
#[derive(Debug, Clone, PartialEq)]
pub struct Hist {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
}

impl Default for Hist {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for `v`, a pure function of `v.to_bits()`.
///
/// For a finite positive `v = 2^e × (1 + m/2^52)`, the index is
/// `1 + (e - MIN_EXP) × SUBBUCKETS + (m >> (52 - SUBBUCKET_BITS))` — the
/// exponent picks the power-of-two band, the top three mantissa bits pick
/// the sub-bucket. Buckets are therefore lower-inclusive: `v` exactly on a
/// boundary counts in the bucket *above* it (a measure-zero skew for
/// measured durations, documented in DESIGN.md §15).
pub fn bucket_index(v: f64) -> usize {
    if v <= 0.0 || v.is_nan() {
        return 0; // zero, negatives, NaN
    }
    let bits = v.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
    if exp < MIN_EXP {
        return 0; // includes subnormals (biased exponent 0 → exp = -1023)
    }
    if exp >= MAX_EXP || v.is_infinite() {
        return BUCKETS - 1;
    }
    let sub = ((bits >> (52 - SUBBUCKET_BITS)) & (SUBBUCKETS as u64 - 1)) as usize;
    1 + (exp - MIN_EXP) as usize * SUBBUCKETS + sub
}

/// Upper bound of bucket `i` in seconds. Bucket 0's bound is 2^MIN_EXP;
/// the last bucket's is `+Inf` (its Prometheus `le` label).
pub fn bucket_upper(i: usize) -> f64 {
    assert!(i < BUCKETS, "bucket index {i} out of range");
    if i == 0 {
        return (MIN_EXP as f64).exp2();
    }
    if i == BUCKETS - 1 {
        return f64::INFINITY;
    }
    let j = i - 1;
    let exp = MIN_EXP + (j / SUBBUCKETS) as i32;
    let sub = (j % SUBBUCKETS) as f64;
    (exp as f64).exp2() * (1.0 + (sub + 1.0) / SUBBUCKETS as f64)
}

/// Lower bound of bucket `i` in seconds (0 for the underflow bucket).
pub fn bucket_lower(i: usize) -> f64 {
    if i == 0 {
        return 0.0;
    }
    if i == BUCKETS - 1 {
        return (MAX_EXP as f64).exp2();
    }
    let j = i - 1;
    let exp = MIN_EXP + (j / SUBBUCKETS) as i32;
    let sub = (j % SUBBUCKETS) as f64;
    (exp as f64).exp2() * (1.0 + sub / SUBBUCKETS as f64)
}

impl Hist {
    /// An empty histogram (one allocation of [`BUCKETS`] u64 slots).
    pub fn new() -> Self {
        Hist { counts: vec![0; BUCKETS], count: 0, sum: 0.0 }
    }

    /// Record one value (seconds). Non-finite and non-positive values count
    /// in the underflow bucket and contribute 0 to the sum if non-finite.
    #[inline]
    pub fn record(&mut self, v: f64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        if v.is_finite() {
            self.sum += v;
        }
    }

    /// Fold `other` into `self`. Exact: because both sides use the same
    /// fixed bucketing, the result's buckets equal those of a histogram fed
    /// both value streams (`sum` is an f64 add, so it is exact only up to
    /// addition-order rounding).
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded (finite) values, in seconds.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Per-bucket counts (length [`BUCKETS`]).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// The `q`-quantile (q in [0,1]): the upper bound of the bucket holding
    /// the `ceil(q·count)`-th smallest recorded value. Returns 0 for an
    /// empty histogram; values in the overflow bucket report the overflow
    /// *lower* bound (2^MAX_EXP) rather than infinity.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return if i == BUCKETS - 1 { bucket_lower(i) } else { bucket_upper(i) };
            }
        }
        bucket_lower(BUCKETS - 1)
    }

    /// Cumulative `(le, count)` pairs for Prometheus exposition: one entry
    /// per *occupied* bucket (upper bound, cumulative count ≤ that bound)
    /// plus the final `(+Inf, count)` entry.
    pub fn cumulative(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c != 0 && i != BUCKETS - 1 {
                out.push((bucket_upper(i), cum + c));
            }
            cum += c;
        }
        out.push((f64::INFINITY, cum));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_boundary_exact() {
        // Powers of two start a fresh band: 1.0 is bucket 1 + (0-MIN_EXP)*8.
        let one = bucket_index(1.0);
        assert_eq!(one, 1 + (0 - MIN_EXP) as usize * SUBBUCKETS);
        // 1.125 = 1 + 1/8 opens the next sub-bucket (lower-inclusive).
        assert_eq!(bucket_index(1.125), one + 1);
        // Just below stays put.
        assert_eq!(bucket_index(1.1249999), one);
        assert_eq!(bucket_index(1.9999999), one + SUBBUCKETS - 1);
        assert_eq!(bucket_index(2.0), one + SUBBUCKETS);
        let mut last = 0;
        for k in 0..2000 {
            let v = 1e-9 * 1.02f64.powi(k);
            let i = bucket_index(v);
            assert!(i >= last, "bucket_index not monotone at v={v}");
            last = i;
        }
    }

    #[test]
    fn bounds_bracket_their_values() {
        for &v in &[1e-9, 3.7e-6, 0.001, 0.25, 1.0, 1.5, 999.0] {
            let i = bucket_index(v);
            assert!(bucket_lower(i) <= v && v < bucket_upper(i), "v={v} bucket={i}");
        }
        // Underflow and overflow.
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-3.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(1e-12), 0);
        assert_eq!(bucket_index(2048.0), BUCKETS - 1);
        assert_eq!(bucket_index(f64::INFINITY), BUCKETS - 1);
        // Adjacent buckets tile: upper(i) == lower(i+1).
        for i in 1..BUCKETS - 1 {
            assert_eq!(bucket_upper(i - 1), bucket_lower(i), "gap at bucket {i}");
        }
    }

    #[test]
    fn record_merge_quantile_roundtrip() {
        let mut h = Hist::new();
        for v in [0.001, 0.002, 0.004, 0.008, 0.1] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 0.115).abs() < 1e-12);
        // p50 is the 3rd smallest (0.004); answer within one bucket width.
        let p50 = h.quantile(0.5);
        assert!(p50 >= 0.004 && p50 <= 0.004 * (1.0 + 1.0 / SUBBUCKETS as f64));
        let mut a = Hist::new();
        let mut b = Hist::new();
        for v in [0.001, 0.004, 0.1] {
            a.record(v);
        }
        for v in [0.002, 0.008] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.bucket_counts(), h.bucket_counts());
        assert_eq!(a.count(), h.count());
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let mut h = Hist::new();
        let mut x = 1e-6;
        for _ in 0..500 {
            h.record(x);
            x *= 1.013;
        }
        let mut last = 0.0;
        for k in 0..=100 {
            let q = k as f64 / 100.0;
            let v = h.quantile(q);
            assert!(v >= last, "quantile not monotone at q={q}");
            last = v;
        }
    }

    #[test]
    fn cumulative_ends_with_inf_total() {
        let mut h = Hist::new();
        for v in [0.5, 0.5, 2.0, 5000.0] {
            h.record(v);
        }
        let cum = h.cumulative();
        let (le, total) = *cum.last().unwrap();
        assert!(le.is_infinite());
        assert_eq!(total, 4);
        // Cumulative counts never decrease.
        for w in cum.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn empty_hist_is_sane() {
        let h = Hist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0.0);
        assert_eq!(h.cumulative(), vec![(f64::INFINITY, 0)]);
    }
}
