//! `EXPLAIN ANALYZE`-style plan-tree reports.
//!
//! The tree itself is built by `kfusion-core` (which knows plan graphs,
//! fusion groups, and register-pressure analysis); this module owns the
//! generic node shape and the renderer so that any layer — or a test — can
//! produce one without depending on the planner. Each node carries the
//! measurements the paper's figures turn on: observed rows, *simulated*
//! time on the virtual GPU, *host* wall-clock of the functional evaluation,
//! the fusion group the node was placed in, and `max_live_regs` of the code
//! it contributed.

/// One annotated plan node.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainNode {
    /// Node label, e.g. `select#2`.
    pub label: String,
    /// Rows this node produced.
    pub rows: u64,
    /// Simulated seconds attributed to this node (kernel + its transfers).
    pub sim_seconds: f64,
    /// Host wall-clock seconds of the node's functional evaluation.
    pub host_seconds: f64,
    /// Fusion group index, when the fuser placed this node in a group.
    pub fusion_group: Option<usize>,
    /// Liveness-precise register pressure of the node's (or its group's)
    /// kernel body; 0 for nodes that emit no kernel.
    pub max_live_regs: u32,
    /// Input plan nodes.
    pub children: Vec<ExplainNode>,
}

impl ExplainNode {
    /// A leaf node with the given annotations.
    pub fn new(label: impl Into<String>) -> Self {
        ExplainNode {
            label: label.into(),
            rows: 0,
            sim_seconds: 0.0,
            host_seconds: 0.0,
            fusion_group: None,
            max_live_regs: 0,
            children: Vec::new(),
        }
    }

    /// Total node count of the subtree, root included.
    pub fn count(&self) -> usize {
        1 + self.children.iter().map(ExplainNode::count).sum::<usize>()
    }

    fn annotations(&self) -> String {
        let group = match self.fusion_group {
            Some(g) => format!("group=g{g}"),
            None => "group=-".to_string(),
        };
        format!(
            "rows={}  sim={:.6} ms  host={:.3} ms  {group}  live_regs={}",
            self.rows,
            self.sim_seconds * 1e3,
            self.host_seconds * 1e3,
            self.max_live_regs
        )
    }

    fn render_into(&self, out: &mut String, prefix: &str, is_last: bool, is_root: bool) {
        if is_root {
            out.push_str(&format!("{}  {}\n", self.label, self.annotations()));
        } else {
            let branch = if is_last { "└─ " } else { "├─ " };
            out.push_str(&format!("{prefix}{branch}{}  {}\n", self.label, self.annotations()));
        }
        let child_prefix = if is_root {
            String::new()
        } else {
            format!("{prefix}{}", if is_last { "   " } else { "│  " })
        };
        for (i, c) in self.children.iter().enumerate() {
            c.render_into(out, &child_prefix, i + 1 == self.children.len(), false);
        }
    }

    /// Render this subtree as an `EXPLAIN ANALYZE` report.
    pub fn render(&self) -> String {
        let mut out = String::from("EXPLAIN ANALYZE\n");
        self.render_into(&mut out, "", true, true);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(label: &str, rows: u64, group: Option<usize>) -> ExplainNode {
        ExplainNode { rows, fusion_group: group, ..ExplainNode::new(label) }
    }

    #[test]
    fn renders_tree_with_annotations() {
        let mut root = node("aggregate#4", 4, Some(1));
        root.sim_seconds = 0.0025;
        let mut sel = node("select#2", 100, Some(0));
        sel.max_live_regs = 3;
        sel.children.push(node("scan#0", 1000, None));
        root.children.push(sel);
        root.children.push(node("scan#1", 1000, None));
        let r = root.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines[0], "EXPLAIN ANALYZE");
        assert!(lines[1].starts_with("aggregate#4  rows=4  sim=2.500000 ms"));
        assert!(lines[1].contains("group=g1"));
        assert!(lines[2].starts_with("├─ select#2"));
        assert!(lines[2].contains("live_regs=3"));
        assert!(lines[3].starts_with("│  └─ scan#0"));
        assert!(lines[3].contains("group=-"));
        assert!(lines[4].starts_with("└─ scan#1"));
        assert_eq!(root.count(), 4);
    }
}
