//! Prometheus text-format exporter for recorded counters and histograms.
//!
//! Counter and histogram keys are stored as full metric names with labels
//! embedded (e.g. `kfusion_rows_out_total{op="select"}`), so exporting is
//! mostly a matter of grouping keys by family and prefixing each family
//! with its `# TYPE` line. Histograms expand into the exposition format's
//! three sibling series — `<fam>_bucket{...,le="..."}` (cumulative),
//! `<fam>_sum`, `<fam>_count` — all grouped under one
//! `# TYPE <fam> histogram` header. The output is what the CI observability
//! and soak-smoke jobs and `kfusion-trace-check --metrics` validate.

use crate::Trace;

/// The metric family of a full key: everything before the label block, or
/// the whole key when there are no labels. For histograms the family is the
/// *base* name — the `_bucket`/`_sum`/`_count` suffixes are added at export
/// time, never stored in keys, so the three sub-series can never split
/// across `# TYPE` headers.
pub fn family(key: &str) -> &str {
    key.split('{').next().unwrap_or(key)
}

/// The label block of a full key, *without* braces (`""` when unlabeled).
fn labels(key: &str) -> &str {
    match key.find('{') {
        Some(i) => key[i + 1..].strip_suffix('}').unwrap_or(&key[i + 1..]),
        None => "",
    }
}

/// Escape a label *value* per the Prometheus exposition format: backslash,
/// double-quote, and newline become `\\`, `\"`, and `\n`.
pub fn label_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Build a full metric key `name{k="v",...}` with escaped label values —
/// the constructor every instrumentation site with dynamic label values
/// should use before calling [`crate::counter`] / [`crate::observe`].
pub fn metric_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = String::from(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&label_escape(v));
        out.push('"');
    }
    out.push('}');
    out
}

/// Render a bucket upper bound as a `le` label value (`+Inf` for the
/// overflow bucket, shortest-roundtrip decimal otherwise — exact for the
/// power-of-two-derived bounds the fixed layout produces).
fn format_le(le: f64) -> String {
    if le.is_infinite() {
        "+Inf".to_string()
    } else {
        format!("{le}")
    }
}

/// Splice `le` into an existing label block: `a="b"` → `a="b",le="0.25"`.
fn with_le(labels: &str, le: &str) -> String {
    if labels.is_empty() {
        format!("le=\"{le}\"")
    } else {
        format!("{labels},le=\"{le}\"")
    }
}

/// Export `trace`'s counters and histograms as Prometheus text exposition
/// format. Counters come first, then histogram families; BTreeMap iteration
/// keeps each family's series adjacent and the output deterministic.
pub fn export(trace: &Trace) -> String {
    let mut out = String::from("# kfusion-trace counters (Prometheus text format)\n");
    let mut last_family = "";
    for (key, value) in &trace.counters {
        let fam = family(key);
        if fam != last_family {
            out.push_str(&format!("# TYPE {fam} counter\n"));
            last_family = fam;
        }
        out.push_str(&format!("{key} {value}\n"));
    }
    last_family = "";
    for (key, h) in &trace.hists {
        let fam = family(key);
        if fam != last_family {
            out.push_str(&format!("# TYPE {fam} histogram\n"));
            last_family = fam;
        }
        let base_labels = labels(key);
        for (le, cum) in h.cumulative() {
            let lbl = with_le(base_labels, &format_le(le));
            out.push_str(&format!("{fam}_bucket{{{lbl}}} {cum}\n"));
        }
        let suffix_labels =
            if base_labels.is_empty() { String::new() } else { format!("{{{base_labels}}}") };
        out.push_str(&format!("{fam}_sum{suffix_labels} {}\n", h.sum()));
        out.push_str(&format!("{fam}_count{suffix_labels} {}\n", h.count()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Hist;

    #[test]
    fn groups_families_and_emits_type_lines() {
        let mut t = Trace::default();
        t.counters.insert("kfusion_rows_out_total{op=\"agg\"}".into(), 7);
        t.counters.insert("kfusion_rows_out_total{op=\"select\"}".into(), 9);
        t.counters.insert("kfusion_sim_commands_total".into(), 3);
        let out = export(&t);
        assert_eq!(out.matches("# TYPE kfusion_rows_out_total counter").count(), 1);
        assert!(out.contains("kfusion_rows_out_total{op=\"select\"} 9\n"));
        assert!(out
            .contains("# TYPE kfusion_sim_commands_total counter\nkfusion_sim_commands_total 3\n"));
    }

    #[test]
    fn histogram_family_exports_three_series_under_one_type_header() {
        let mut t = Trace::default();
        let mut h = Hist::new();
        h.record(0.25);
        h.record(0.25);
        h.record(3.0);
        t.hists.insert("kfusion_stage_seconds{stage=\"execute\"}".into(), h);
        let mut h2 = Hist::new();
        h2.record(0.5);
        t.hists.insert("kfusion_stage_seconds{stage=\"queue_wait\"}".into(), h2);
        let out = export(&t);
        assert_eq!(out.matches("# TYPE kfusion_stage_seconds histogram").count(), 1);
        // 0.25 sits exactly on a bucket lower bound; its bucket's upper
        // bound is 0.25·(1+1/8) = 0.28125.
        assert!(out.contains("kfusion_stage_seconds_bucket{stage=\"execute\",le=\"0.28125\"} 2\n"));
        assert!(out.contains("kfusion_stage_seconds_bucket{stage=\"execute\",le=\"+Inf\"} 3\n"));
        assert!(out.contains("kfusion_stage_seconds_sum{stage=\"execute\"} 3.5\n"));
        assert!(out.contains("kfusion_stage_seconds_count{stage=\"execute\"} 3\n"));
        assert!(out.contains("kfusion_stage_seconds_count{stage=\"queue_wait\"} 1\n"));
    }

    #[test]
    fn unlabeled_histogram_gets_le_only_labels() {
        let mut t = Trace::default();
        let mut h = Hist::new();
        h.record(1.0);
        t.hists.insert("kfusion_total_seconds".into(), h);
        let out = export(&t);
        assert!(out.contains("# TYPE kfusion_total_seconds histogram\n"));
        assert!(out.contains("kfusion_total_seconds_bucket{le=\"+Inf\"} 1\n"));
        assert!(out.contains("kfusion_total_seconds_sum 1\n"));
        assert!(out.contains("kfusion_total_seconds_count 1\n"));
    }

    #[test]
    fn metric_key_escapes_label_values() {
        assert_eq!(metric_key("m", &[]), "m");
        assert_eq!(
            metric_key("m", &[("a", "x\\y"), ("b", "q\"uote"), ("c", "nl\nend")]),
            "m{a=\"x\\\\y\",b=\"q\\\"uote\",c=\"nl\\nend\"}"
        );
        assert_eq!(label_escape("plain"), "plain");
    }

    #[test]
    fn empty_trace_exports_header_only() {
        let out = export(&Trace::default());
        assert_eq!(out.lines().count(), 1);
        assert!(out.starts_with('#'));
    }
}
