//! Prometheus text-format exporter for recorded counters.
//!
//! Counter keys are stored as full metric names with labels embedded
//! (e.g. `kfusion_rows_out_total{op="select"}`), so exporting is mostly a
//! matter of grouping keys by family and prefixing each family with its
//! `# TYPE` line. The exposition-format output is what the CI observability
//! job and `kfusion-trace-check --metrics` validate.

use crate::Trace;

/// The metric family of a full counter key: everything before the label
/// block, or the whole key when there are no labels.
fn family(key: &str) -> &str {
    key.split('{').next().unwrap_or(key)
}

/// Export `trace`'s counters as Prometheus text exposition format.
pub fn export(trace: &Trace) -> String {
    let mut out = String::from("# kfusion-trace counters (Prometheus text format)\n");
    let mut last_family = "";
    // BTreeMap iteration is sorted, so keys of one family are adjacent.
    for (key, value) in &trace.counters {
        let fam = family(key);
        if fam != last_family {
            out.push_str(&format!("# TYPE {fam} counter\n"));
            last_family = fam;
        }
        out.push_str(&format!("{key} {value}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_families_and_emits_type_lines() {
        let mut t = Trace::default();
        t.counters.insert("kfusion_rows_out_total{op=\"agg\"}".into(), 7);
        t.counters.insert("kfusion_rows_out_total{op=\"select\"}".into(), 9);
        t.counters.insert("kfusion_sim_commands_total".into(), 3);
        let out = export(&t);
        assert_eq!(out.matches("# TYPE kfusion_rows_out_total counter").count(), 1);
        assert!(out.contains("kfusion_rows_out_total{op=\"select\"} 9\n"));
        assert!(out
            .contains("# TYPE kfusion_sim_commands_total counter\nkfusion_sim_commands_total 3\n"));
    }

    #[test]
    fn empty_trace_exports_header_only() {
        let out = export(&Trace::default());
        assert_eq!(out.lines().count(), 1);
        assert!(out.starts_with('#'));
    }
}
