//! Structural validation of Chrome trace-event documents — the library
//! behind the `kfusion-trace-check` binary.
//!
//! The validator enforces the invariants [`crate::chrome::export`]
//! guarantees (field shapes, monotone timestamps, well-nested `B`/`E`
//! pairs per `(pid, tid)`) and, optionally, the physics a run claims:
//! required tracks present, and a cross-track span overlap (the Fig. 13
//! copy/compute proof).
//!
//! Every malformed input is a [`ValidateError`], never a panic: the binary
//! gates CI jobs on arbitrary artifacts, and a trace mangled by a crashed
//! run (a `B` event with no `name`, a string `pid`, a boolean `ts`) must
//! produce a diagnostic, not take the checker down with it.

use crate::json::Value;

/// A validation failure, with enough context to locate the bad event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError(pub String);

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ValidateError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ValidateError> {
    Err(ValidateError(msg.into()))
}

/// Optional requirements beyond structural soundness.
#[derive(Debug, Clone, Default)]
pub struct Requirements {
    /// Track names that must appear as thread names in the trace.
    pub tracks: Vec<String>,
    /// A pair of tracks that must have at least one overlapping span pair.
    pub overlap: Option<(String, String)>,
}

/// What a successful validation observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Summary {
    /// Number of `B`/`E`/`X` span events.
    pub span_events: usize,
    /// Distinct track names, sorted.
    pub tracks: Vec<String>,
}

/// A reconstructed interval on one `(pid, tid)`.
struct Interval {
    pid: u64,
    tid: u64,
    start: f64,
    end: f64,
}

fn num(e: &Value, key: &str) -> Option<f64> {
    e.get(key).and_then(Value::as_f64)
}

/// Validate a parsed trace document against `req`.
pub fn validate(doc: &Value, req: &Requirements) -> Result<Summary, ValidateError> {
    let Some(events) = doc.get("traceEvents").and_then(Value::as_arr) else {
        return err("document has no traceEvents array");
    };

    // Pass 1: field shape, metadata, monotone timestamps.
    let mut track_of_tid: Vec<((u64, u64), String)> = Vec::new();
    let mut last_ts = f64::NEG_INFINITY;
    let mut n_spans = 0usize;
    for (i, e) in events.iter().enumerate() {
        let Some(ph) = e.get("ph").and_then(Value::as_str) else {
            return err(format!("event {i} has no ph"));
        };
        if e.get("name").and_then(Value::as_str).is_none() {
            return err(format!("event {i} (ph={ph}): name is missing or not a string"));
        }
        let (Some(pid), Some(tid)) = (num(e, "pid"), num(e, "tid")) else {
            return err(format!("event {i} (ph={ph}): pid/tid missing or not numbers"));
        };
        let Some(ts) = num(e, "ts") else {
            return err(format!("event {i} (ph={ph}): ts missing or not a number"));
        };
        let _ = (pid, tid);
        match ph {
            "M" => {
                if e.get("name").and_then(Value::as_str) == Some("thread_name") {
                    let Some(tname) =
                        e.get("args").and_then(|a| a.get("name")).and_then(Value::as_str)
                    else {
                        return err(format!("event {i}: thread_name without args.name"));
                    };
                    // Thread names are "{track}/{lane}".
                    let track = tname.rsplit_once('/').map_or(tname, |(t, _)| t);
                    track_of_tid.push(((pid as u64, tid as u64), track.to_string()));
                }
            }
            "B" | "E" | "X" => {
                if ts < last_ts {
                    return err(format!("event {i}: ts {ts} < previous {last_ts} (not monotone)"));
                }
                last_ts = ts;
                n_spans += 1;
            }
            other => return err(format!("event {i}: unexpected ph {other:?}")),
        }
    }
    let track_of = |pid: u64, tid: u64| -> Option<&str> {
        track_of_tid.iter().find(|(k, _)| *k == (pid, tid)).map(|(_, t)| t.as_str())
    };

    // Pass 2: B/E pairing per (pid, tid), and interval reconstruction. The
    // field shapes were proven in pass 1, so missing fields here cannot
    // occur — but everything still routes through Results, not unwraps.
    // One open-span stack (name, begin ts) per (pid, tid) lane.
    type LaneStacks = Vec<((u64, u64), Vec<(String, f64)>)>;
    let mut stacks: LaneStacks = Vec::new();
    let mut intervals: Vec<Interval> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        let ph = e.get("ph").and_then(Value::as_str).unwrap_or("");
        let (Some(pid), Some(tid), Some(ts)) = (num(e, "pid"), num(e, "tid"), num(e, "ts")) else {
            return err(format!("event {i}: lost pid/tid/ts between passes"));
        };
        let key = (pid as u64, tid as u64);
        let name = e.get("name").and_then(Value::as_str).unwrap_or("");
        let stack_of = |stacks: &mut LaneStacks| {
            if let Some(pos) = stacks.iter().position(|(k, _)| *k == key) {
                pos
            } else {
                stacks.push((key, Vec::new()));
                stacks.len() - 1
            }
        };
        match ph {
            "B" => {
                let pos = stack_of(&mut stacks);
                stacks[pos].1.push((name.to_string(), ts));
            }
            "E" => {
                let pos = stack_of(&mut stacks);
                let Some((open, start)) = stacks[pos].1.pop() else {
                    return err(format!("event {i}: E {name:?} with no open B on pid/tid {key:?}"));
                };
                if open != name {
                    return err(format!("event {i}: E {name:?} closes B {open:?} (ill-nested)"));
                }
                intervals.push(Interval { pid: key.0, tid: key.1, start, end: ts });
            }
            "X" => {
                let dur = num(e, "dur").unwrap_or(0.0);
                intervals.push(Interval { pid: key.0, tid: key.1, start: ts, end: ts + dur });
            }
            _ => {}
        }
    }
    for (key, stack) in &stacks {
        if let Some((name, _)) = stack.last() {
            return err(format!("unclosed B {name:?} on pid/tid {key:?}"));
        }
    }

    // Track-level requirements.
    let tracks_present: Vec<String> = {
        let mut v: Vec<String> = track_of_tid.iter().map(|(_, t)| t.clone()).collect();
        v.sort();
        v.dedup();
        v
    };
    for want in &req.tracks {
        if !tracks_present.iter().any(|t| t == want) {
            return err(format!(
                "required track {want:?} not in trace (present: {tracks_present:?})"
            ));
        }
    }
    if let Some((a, b)) = &req.overlap {
        let on_track = |want: &str| -> Vec<&Interval> {
            intervals
                .iter()
                .filter(|iv| track_of(iv.pid, iv.tid).is_some_and(|t| t == want))
                .collect()
        };
        let (ia, ib) = (on_track(a), on_track(b));
        let overlapped = ia
            .iter()
            .any(|x| ib.iter().any(|y| x.start < y.end && y.start < x.end && x.end > x.start));
        if !overlapped {
            return err(format!(
                "no span on track {a:?} overlaps any span on track {b:?} \
                 ({} vs {} spans) — expected copy/compute overlap",
                ia.len(),
                ib.len()
            ));
        }
    }

    Ok(Summary { span_events: n_spans, tracks: tracks_present })
}

/// Validate a Prometheus-style metrics text: comments plus `name value`
/// lines with `u64` values, at least one counter. Returns the counter count.
pub fn validate_metrics(text: &str) -> Result<usize, ValidateError> {
    let mut n_metrics = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((name, value)) = line.rsplit_once(' ') else {
            return err(format!("line {}: not a `name value` line: {line:?}", lineno + 1));
        };
        if name.is_empty() || value.parse::<u64>().is_err() {
            return err(format!("line {}: bad counter line: {line:?}", lineno + 1));
        }
        n_metrics += 1;
    }
    if n_metrics == 0 {
        return err("no counters recorded");
    }
    Ok(n_metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn doc(events: &str) -> Value {
        parse(&format!("{{\"traceEvents\":[{events}]}}")).expect("test JSON parses")
    }

    fn ok(events: &str) -> Summary {
        validate(&doc(events), &Requirements::default()).expect("valid")
    }

    fn fails(events: &str) -> String {
        validate(&doc(events), &Requirements::default()).expect_err("must fail").0
    }

    #[test]
    fn well_formed_pair_passes() {
        let s =
            ok(r#"{"name":"thread_name","ph":"M","pid":2,"tid":1,"ts":0,"args":{"name":"host/0"}},
                      {"name":"p","cat":"host","ph":"B","pid":2,"tid":1,"ts":0.0},
                      {"name":"p","cat":"host","ph":"E","pid":2,"tid":1,"ts":5.0}"#);
        assert_eq!(s.span_events, 2);
        assert_eq!(s.tracks, vec!["host".to_string()]);
    }

    #[test]
    fn b_event_missing_name_is_an_error_not_a_panic() {
        // Regression: the checker used to unwrap the name field.
        let msg = fails(r#"{"ph":"B","pid":2,"tid":1,"ts":0.0}"#);
        assert!(msg.contains("name"), "{msg}");
    }

    #[test]
    fn non_string_name_is_an_error() {
        let msg = fails(r#"{"name":42,"ph":"B","pid":2,"tid":1,"ts":0.0}"#);
        assert!(msg.contains("name"), "{msg}");
    }

    #[test]
    fn non_numeric_pid_is_an_error_not_a_panic() {
        // Regression: a string pid used to panic the checker in pass 1.
        let msg = fails(r#"{"name":"p","ph":"B","pid":"two","tid":1,"ts":0.0}"#);
        assert!(msg.contains("pid"), "{msg}");
    }

    #[test]
    fn non_numeric_ts_is_an_error() {
        let msg = fails(r#"{"name":"p","ph":"X","pid":1,"tid":1,"ts":true}"#);
        assert!(msg.contains("ts"), "{msg}");
    }

    #[test]
    fn unmatched_e_and_unclosed_b_are_errors() {
        assert!(fails(r#"{"name":"p","ph":"E","pid":2,"tid":1,"ts":1.0}"#).contains("no open B"));
        assert!(fails(r#"{"name":"p","ph":"B","pid":2,"tid":1,"ts":1.0}"#).contains("unclosed B"));
    }

    #[test]
    fn ill_nested_pairs_are_errors() {
        let msg = fails(
            r#"{"name":"a","ph":"B","pid":2,"tid":1,"ts":0.0},
               {"name":"b","ph":"B","pid":2,"tid":1,"ts":1.0},
               {"name":"a","ph":"E","pid":2,"tid":1,"ts":2.0}"#,
        );
        assert!(msg.contains("ill-nested"), "{msg}");
    }

    #[test]
    fn non_monotone_timestamps_are_errors() {
        let msg = fails(
            r#"{"name":"a","ph":"X","pid":1,"tid":1,"ts":5.0},
               {"name":"b","ph":"X","pid":1,"tid":1,"ts":1.0}"#,
        );
        assert!(msg.contains("monotone"), "{msg}");
    }

    #[test]
    fn missing_required_track_is_an_error() {
        let req = Requirements { tracks: vec!["server".into()], overlap: None };
        let d = doc(r#"{"name":"a","ph":"X","pid":1,"tid":1,"ts":0.0}"#);
        let msg = validate(&d, &req).expect_err("track absent").0;
        assert!(msg.contains("server"), "{msg}");
    }

    #[test]
    fn overlap_requirement_detects_and_rejects() {
        let events = |second_start: f64| {
            format!(
                r#"{{"name":"thread_name","ph":"M","pid":1,"tid":1,"ts":0,"args":{{"name":"H2D/0"}}}},
                   {{"name":"thread_name","ph":"M","pid":1,"tid":2,"ts":0,"args":{{"name":"compute/0"}}}},
                   {{"name":"up","ph":"X","pid":1,"tid":1,"ts":0.0,"dur":5.0}},
                   {{"name":"k","ph":"X","pid":1,"tid":2,"ts":{second_start},"dur":5.0}}"#
            )
        };
        let req = Requirements {
            tracks: vec![],
            overlap: Some(("H2D".to_string(), "compute".to_string())),
        };
        assert!(validate(&doc(&events(2.0)), &req).is_ok());
        assert!(validate(&doc(&events(9.0)), &req).is_err());
    }

    #[test]
    fn exported_traces_always_validate() {
        // The exporter's own output is the golden path.
        let mut t = crate::Trace::default();
        t.spans.push(crate::Span {
            name: "k".into(),
            track: "compute".into(),
            lane: 0,
            clock: crate::Clock::Sim,
            scope: String::new(),
            start: 0.0,
            end: 1.0,
        });
        let d = parse(&crate::chrome::export(&t)).unwrap();
        let s = validate(&d, &Requirements::default()).unwrap();
        assert_eq!(s.span_events, 1);
        assert_eq!(s.tracks, vec!["compute".to_string()]);
    }

    #[test]
    fn metrics_lines_validate() {
        assert_eq!(validate_metrics("# c\nkfusion_x_total 3\n"), Ok(1));
        assert!(validate_metrics("").is_err());
        assert!(validate_metrics("bad line here\n").is_err());
        assert!(validate_metrics("kfusion_x_total -1\n").is_err());
    }
}
