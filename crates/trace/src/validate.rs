//! Structural validation of Chrome trace-event documents — the library
//! behind the `kfusion-trace-check` binary.
//!
//! The validator enforces the invariants [`crate::chrome::export`]
//! guarantees (field shapes, monotone timestamps, well-nested `B`/`E`
//! pairs per `(pid, tid)`) and, optionally, the physics a run claims:
//! required tracks present, and a cross-track span overlap (the Fig. 13
//! copy/compute proof).
//!
//! Every malformed input is a [`ValidateError`], never a panic: the binary
//! gates CI jobs on arbitrary artifacts, and a trace mangled by a crashed
//! run (a `B` event with no `name`, a string `pid`, a boolean `ts`) must
//! produce a diagnostic, not take the checker down with it.

use crate::json::Value;

/// A validation failure, with enough context to locate the bad event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError(pub String);

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ValidateError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ValidateError> {
    Err(ValidateError(msg.into()))
}

/// Optional requirements beyond structural soundness.
#[derive(Debug, Clone, Default)]
pub struct Requirements {
    /// Track names that must appear as thread names in the trace.
    pub tracks: Vec<String>,
    /// A pair of tracks that must have at least one overlapping span pair.
    pub overlap: Option<(String, String)>,
}

/// What a successful validation observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Summary {
    /// Number of `B`/`E`/`X` span events.
    pub span_events: usize,
    /// Distinct track names, sorted.
    pub tracks: Vec<String>,
}

/// A reconstructed interval on one `(pid, tid)`.
struct Interval {
    pid: u64,
    tid: u64,
    start: f64,
    end: f64,
}

fn num(e: &Value, key: &str) -> Option<f64> {
    e.get(key).and_then(Value::as_f64)
}

/// Validate a parsed trace document against `req`.
pub fn validate(doc: &Value, req: &Requirements) -> Result<Summary, ValidateError> {
    let Some(events) = doc.get("traceEvents").and_then(Value::as_arr) else {
        return err("document has no traceEvents array");
    };

    // Pass 1: field shape, metadata, monotone timestamps.
    let mut track_of_tid: Vec<((u64, u64), String)> = Vec::new();
    let mut last_ts = f64::NEG_INFINITY;
    let mut n_spans = 0usize;
    for (i, e) in events.iter().enumerate() {
        let Some(ph) = e.get("ph").and_then(Value::as_str) else {
            return err(format!("event {i} has no ph"));
        };
        if e.get("name").and_then(Value::as_str).is_none() {
            return err(format!("event {i} (ph={ph}): name is missing or not a string"));
        }
        let (Some(pid), Some(tid)) = (num(e, "pid"), num(e, "tid")) else {
            return err(format!("event {i} (ph={ph}): pid/tid missing or not numbers"));
        };
        let Some(ts) = num(e, "ts") else {
            return err(format!("event {i} (ph={ph}): ts missing or not a number"));
        };
        let _ = (pid, tid);
        match ph {
            "M" => {
                if e.get("name").and_then(Value::as_str) == Some("thread_name") {
                    let Some(tname) =
                        e.get("args").and_then(|a| a.get("name")).and_then(Value::as_str)
                    else {
                        return err(format!("event {i}: thread_name without args.name"));
                    };
                    // Thread names are "{track}/{lane}".
                    let track = tname.rsplit_once('/').map_or(tname, |(t, _)| t);
                    track_of_tid.push(((pid as u64, tid as u64), track.to_string()));
                }
            }
            "B" | "E" | "X" => {
                if ts < last_ts {
                    return err(format!("event {i}: ts {ts} < previous {last_ts} (not monotone)"));
                }
                last_ts = ts;
                n_spans += 1;
            }
            other => return err(format!("event {i}: unexpected ph {other:?}")),
        }
    }
    let track_of = |pid: u64, tid: u64| -> Option<&str> {
        track_of_tid.iter().find(|(k, _)| *k == (pid, tid)).map(|(_, t)| t.as_str())
    };

    // Pass 2: B/E pairing per (pid, tid), and interval reconstruction. The
    // field shapes were proven in pass 1, so missing fields here cannot
    // occur — but everything still routes through Results, not unwraps.
    // One open-span stack (name, begin ts) per (pid, tid) lane.
    type LaneStacks = Vec<((u64, u64), Vec<(String, f64)>)>;
    let mut stacks: LaneStacks = Vec::new();
    let mut intervals: Vec<Interval> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        let ph = e.get("ph").and_then(Value::as_str).unwrap_or("");
        let (Some(pid), Some(tid), Some(ts)) = (num(e, "pid"), num(e, "tid"), num(e, "ts")) else {
            return err(format!("event {i}: lost pid/tid/ts between passes"));
        };
        let key = (pid as u64, tid as u64);
        let name = e.get("name").and_then(Value::as_str).unwrap_or("");
        let stack_of = |stacks: &mut LaneStacks| {
            if let Some(pos) = stacks.iter().position(|(k, _)| *k == key) {
                pos
            } else {
                stacks.push((key, Vec::new()));
                stacks.len() - 1
            }
        };
        match ph {
            "B" => {
                let pos = stack_of(&mut stacks);
                stacks[pos].1.push((name.to_string(), ts));
            }
            "E" => {
                let pos = stack_of(&mut stacks);
                let Some((open, start)) = stacks[pos].1.pop() else {
                    return err(format!("event {i}: E {name:?} with no open B on pid/tid {key:?}"));
                };
                if open != name {
                    return err(format!("event {i}: E {name:?} closes B {open:?} (ill-nested)"));
                }
                intervals.push(Interval { pid: key.0, tid: key.1, start, end: ts });
            }
            "X" => {
                let dur = num(e, "dur").unwrap_or(0.0);
                intervals.push(Interval { pid: key.0, tid: key.1, start: ts, end: ts + dur });
            }
            _ => {}
        }
    }
    for (key, stack) in &stacks {
        if let Some((name, _)) = stack.last() {
            return err(format!("unclosed B {name:?} on pid/tid {key:?}"));
        }
    }

    // Track-level requirements.
    let tracks_present: Vec<String> = {
        let mut v: Vec<String> = track_of_tid.iter().map(|(_, t)| t.clone()).collect();
        v.sort();
        v.dedup();
        v
    };
    for want in &req.tracks {
        if !tracks_present.iter().any(|t| t == want) {
            return err(format!(
                "required track {want:?} not in trace (present: {tracks_present:?})"
            ));
        }
    }
    if let Some((a, b)) = &req.overlap {
        let on_track = |want: &str| -> Vec<&Interval> {
            intervals
                .iter()
                .filter(|iv| track_of(iv.pid, iv.tid).is_some_and(|t| t == want))
                .collect()
        };
        let (ia, ib) = (on_track(a), on_track(b));
        let overlapped = ia
            .iter()
            .any(|x| ib.iter().any(|y| x.start < y.end && y.start < x.end && x.end > x.start));
        if !overlapped {
            return err(format!(
                "no span on track {a:?} overlaps any span on track {b:?} \
                 ({} vs {} spans) — expected copy/compute overlap",
                ia.len(),
                ib.len()
            ));
        }
    }

    Ok(Summary { span_events: n_spans, tracks: tracks_present })
}

/// Validate a Prometheus-style metrics text: comments plus `name value`
/// lines whose values are nonnegative finite numbers (counters are
/// integers; histogram `_sum` series are floats), at least one metric.
/// Returns the metric-line count.
pub fn validate_metrics(text: &str) -> Result<usize, ValidateError> {
    let mut n_metrics = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((name, value)) = line.rsplit_once(' ') else {
            return err(format!("line {}: not a `name value` line: {line:?}", lineno + 1));
        };
        let ok = !name.is_empty()
            && value.parse::<f64>().map(|v| v.is_finite() && v >= 0.0).unwrap_or(false);
        if !ok {
            return err(format!("line {}: bad metric line: {line:?}", lineno + 1));
        }
        n_metrics += 1;
    }
    if n_metrics == 0 {
        return err("no counters recorded");
    }
    Ok(n_metrics)
}

/// Parse a label block body (`a="b",le="+Inf"` — no braces) into pairs,
/// honoring `\\`, `\"`, and `\n` escapes in values.
fn parse_labels(block: &str) -> Result<Vec<(String, String)>, ValidateError> {
    let mut pairs = Vec::new();
    let mut chars = block.chars().peekable();
    while chars.peek().is_some() {
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if key.is_empty() {
            return err(format!("empty label name in {block:?}"));
        }
        if chars.next() != Some('"') {
            return err(format!("label {key:?} value not quoted in {block:?}"));
        }
        let mut value = String::new();
        let mut closed = false;
        while let Some(c) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => return err(format!("bad escape {other:?} in {block:?}")),
                },
                '"' => {
                    closed = true;
                    break;
                }
                c => value.push(c),
            }
        }
        if !closed {
            return err(format!("unterminated label value in {block:?}"));
        }
        pairs.push((key, value));
        match chars.next() {
            Some(',') | None => {}
            Some(c) => return err(format!("expected ',' after label, got {c:?} in {block:?}")),
        }
    }
    Ok(pairs)
}

/// The non-`le` labels of a parsed pair list, re-joined as a stable series
/// key, plus the `le` value if present.
fn split_le(pairs: &[(String, String)]) -> (String, Option<String>) {
    let mut le = None;
    let mut key = String::new();
    for (k, v) in pairs {
        if k == "le" {
            le = Some(v.clone());
        } else {
            if !key.is_empty() {
                key.push(',');
            }
            key.push_str(&format!("{k}={v:?}"));
        }
    }
    (key, le)
}

/// Validate one histogram family in a metrics text (the
/// `--require-histogram` mode of `kfusion-trace-check`): the family must
/// have a `# TYPE <fam> histogram` header, and every label-series must have
/// cumulative non-decreasing `_bucket` counts ending in `le="+Inf"`, a
/// `_count` equal to the `+Inf` bucket, and a `_sum`. Returns the number of
/// label-series validated.
pub fn validate_histogram_family(text: &str, fam: &str) -> Result<usize, ValidateError> {
    use std::collections::BTreeMap;
    let type_line = format!("# TYPE {fam} histogram");
    let bucket_prefix = format!("{fam}_bucket{{");
    let count_name = format!("{fam}_count");
    let sum_name = format!("{fam}_sum");
    let mut saw_type = false;
    let mut series: BTreeMap<String, Vec<(f64, u64)>> = BTreeMap::new();
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut sums: BTreeMap<String, f64> = BTreeMap::new();

    let parse_block =
        |name_part: &str, base: &str| -> Result<Vec<(String, String)>, ValidateError> {
            match name_part.strip_prefix(base).and_then(|r| r.strip_prefix('{')) {
                Some(rest) => match rest.strip_suffix('}') {
                    Some(body) => parse_labels(body),
                    None => err(format!("unterminated label block on {name_part:?}")),
                },
                None if name_part == base => Ok(Vec::new()),
                None => err(format!("unexpected series name {name_part:?}")),
            }
        };

    for (lineno, line) in text.lines().enumerate() {
        if line == type_line {
            saw_type = true;
            continue;
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((name_part, value)) = line.rsplit_once(' ') else { continue };
        let bad = |what: &str| err(format!("line {}: {what}: {line:?}", lineno + 1));
        if name_part.starts_with(&bucket_prefix) {
            let pairs = parse_block(name_part, &format!("{fam}_bucket"))?;
            let (key, le) = split_le(&pairs);
            let Some(le) = le else {
                return bad("histogram bucket without le label");
            };
            let le = if le == "+Inf" {
                f64::INFINITY
            } else {
                match le.parse::<f64>() {
                    Ok(v) => v,
                    Err(_) => return bad("unparseable le bound"),
                }
            };
            let Ok(cum) = value.parse::<u64>() else {
                return bad("bucket count not a u64");
            };
            series.entry(key).or_default().push((le, cum));
        } else if name_part == count_name || name_part.starts_with(&format!("{count_name}{{")) {
            let (key, _) = split_le(&parse_block(name_part, &count_name)?);
            let Ok(n) = value.parse::<u64>() else {
                return bad("_count not a u64");
            };
            counts.insert(key, n);
        } else if name_part == sum_name || name_part.starts_with(&format!("{sum_name}{{")) {
            let (key, _) = split_le(&parse_block(name_part, &sum_name)?);
            let Ok(s) = value.parse::<f64>() else {
                return bad("_sum not a number");
            };
            sums.insert(key, s);
        }
    }

    if !saw_type {
        return err(format!("no `# TYPE {fam} histogram` header in metrics"));
    }
    if series.is_empty() {
        return err(format!("histogram family {fam:?} has no bucket series"));
    }
    for (key, buckets) in &mut series {
        buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
        let ctx = if key.is_empty() { fam.to_string() } else { format!("{fam}{{{key}}}") };
        let Some(&(last_le, total)) = buckets.last() else { unreachable!() };
        if !last_le.is_infinite() {
            return err(format!("{ctx}: no le=\"+Inf\" bucket"));
        }
        for w in buckets.windows(2) {
            if w[0].1 > w[1].1 {
                return err(format!(
                    "{ctx}: cumulative bucket counts decrease ({} > {} at le {})",
                    w[0].1, w[1].1, w[1].0
                ));
            }
        }
        match counts.get(key) {
            None => return err(format!("{ctx}: missing _count series")),
            Some(&n) if n != total => {
                return err(format!("{ctx}: _count {n} != +Inf bucket {total}"));
            }
            Some(_) => {}
        }
        if !sums.contains_key(key) {
            return err(format!("{ctx}: missing _sum series"));
        }
    }
    Ok(series.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn doc(events: &str) -> Value {
        parse(&format!("{{\"traceEvents\":[{events}]}}")).expect("test JSON parses")
    }

    fn ok(events: &str) -> Summary {
        validate(&doc(events), &Requirements::default()).expect("valid")
    }

    fn fails(events: &str) -> String {
        validate(&doc(events), &Requirements::default()).expect_err("must fail").0
    }

    #[test]
    fn well_formed_pair_passes() {
        let s =
            ok(r#"{"name":"thread_name","ph":"M","pid":2,"tid":1,"ts":0,"args":{"name":"host/0"}},
                      {"name":"p","cat":"host","ph":"B","pid":2,"tid":1,"ts":0.0},
                      {"name":"p","cat":"host","ph":"E","pid":2,"tid":1,"ts":5.0}"#);
        assert_eq!(s.span_events, 2);
        assert_eq!(s.tracks, vec!["host".to_string()]);
    }

    #[test]
    fn b_event_missing_name_is_an_error_not_a_panic() {
        // Regression: the checker used to unwrap the name field.
        let msg = fails(r#"{"ph":"B","pid":2,"tid":1,"ts":0.0}"#);
        assert!(msg.contains("name"), "{msg}");
    }

    #[test]
    fn non_string_name_is_an_error() {
        let msg = fails(r#"{"name":42,"ph":"B","pid":2,"tid":1,"ts":0.0}"#);
        assert!(msg.contains("name"), "{msg}");
    }

    #[test]
    fn non_numeric_pid_is_an_error_not_a_panic() {
        // Regression: a string pid used to panic the checker in pass 1.
        let msg = fails(r#"{"name":"p","ph":"B","pid":"two","tid":1,"ts":0.0}"#);
        assert!(msg.contains("pid"), "{msg}");
    }

    #[test]
    fn non_numeric_ts_is_an_error() {
        let msg = fails(r#"{"name":"p","ph":"X","pid":1,"tid":1,"ts":true}"#);
        assert!(msg.contains("ts"), "{msg}");
    }

    #[test]
    fn unmatched_e_and_unclosed_b_are_errors() {
        assert!(fails(r#"{"name":"p","ph":"E","pid":2,"tid":1,"ts":1.0}"#).contains("no open B"));
        assert!(fails(r#"{"name":"p","ph":"B","pid":2,"tid":1,"ts":1.0}"#).contains("unclosed B"));
    }

    #[test]
    fn same_name_overlapping_spans_on_one_lane_are_valid() {
        // The invariant the service's dedicated queue_wait lane relies on:
        // retroactive waits overlap each other freely, and B/E pairing
        // stays balanced as long as every span on the lane shares one name.
        let s = ok(r#"{"name":"queue_wait","ph":"B","pid":2,"tid":9,"ts":0.0},
               {"name":"queue_wait","ph":"B","pid":2,"tid":9,"ts":1.0},
               {"name":"queue_wait","ph":"E","pid":2,"tid":9,"ts":2.0},
               {"name":"queue_wait","ph":"E","pid":2,"tid":9,"ts":5.0}"#);
        assert_eq!(s.span_events, 4);
    }

    #[test]
    fn ill_nested_pairs_are_errors() {
        let msg = fails(
            r#"{"name":"a","ph":"B","pid":2,"tid":1,"ts":0.0},
               {"name":"b","ph":"B","pid":2,"tid":1,"ts":1.0},
               {"name":"a","ph":"E","pid":2,"tid":1,"ts":2.0}"#,
        );
        assert!(msg.contains("ill-nested"), "{msg}");
    }

    #[test]
    fn non_monotone_timestamps_are_errors() {
        let msg = fails(
            r#"{"name":"a","ph":"X","pid":1,"tid":1,"ts":5.0},
               {"name":"b","ph":"X","pid":1,"tid":1,"ts":1.0}"#,
        );
        assert!(msg.contains("monotone"), "{msg}");
    }

    #[test]
    fn missing_required_track_is_an_error() {
        let req = Requirements { tracks: vec!["server".into()], overlap: None };
        let d = doc(r#"{"name":"a","ph":"X","pid":1,"tid":1,"ts":0.0}"#);
        let msg = validate(&d, &req).expect_err("track absent").0;
        assert!(msg.contains("server"), "{msg}");
    }

    #[test]
    fn overlap_requirement_detects_and_rejects() {
        let events = |second_start: f64| {
            format!(
                r#"{{"name":"thread_name","ph":"M","pid":1,"tid":1,"ts":0,"args":{{"name":"H2D/0"}}}},
                   {{"name":"thread_name","ph":"M","pid":1,"tid":2,"ts":0,"args":{{"name":"compute/0"}}}},
                   {{"name":"up","ph":"X","pid":1,"tid":1,"ts":0.0,"dur":5.0}},
                   {{"name":"k","ph":"X","pid":1,"tid":2,"ts":{second_start},"dur":5.0}}"#
            )
        };
        let req = Requirements {
            tracks: vec![],
            overlap: Some(("H2D".to_string(), "compute".to_string())),
        };
        assert!(validate(&doc(&events(2.0)), &req).is_ok());
        assert!(validate(&doc(&events(9.0)), &req).is_err());
    }

    #[test]
    fn exported_traces_always_validate() {
        // The exporter's own output is the golden path.
        let mut t = crate::Trace::default();
        t.spans.push(crate::Span {
            name: "k".into(),
            track: "compute".into(),
            lane: 0,
            clock: crate::Clock::Sim,
            scope: String::new(),
            start: 0.0,
            end: 1.0,
        });
        let d = parse(&crate::chrome::export(&t)).unwrap();
        let s = validate(&d, &Requirements::default()).unwrap();
        assert_eq!(s.span_events, 1);
        assert_eq!(s.tracks, vec!["compute".to_string()]);
    }

    #[test]
    fn metrics_lines_validate() {
        assert_eq!(validate_metrics("# c\nkfusion_x_total 3\n"), Ok(1));
        assert!(validate_metrics("").is_err());
        assert!(validate_metrics("bad line here\n").is_err());
        assert!(validate_metrics("kfusion_x_total -1\n").is_err());
        // Histogram _sum lines are floats and must pass.
        assert_eq!(validate_metrics("kfusion_x_seconds_sum 0.1234\n"), Ok(1));
        assert!(validate_metrics("kfusion_x_seconds_sum NaN\n").is_err());
    }

    #[test]
    fn exported_histograms_always_validate() {
        let mut t = crate::Trace::default();
        let mut h = crate::hist::Hist::new();
        for v in [0.001, 0.002, 0.004, 8.0] {
            h.record(v);
        }
        t.hists.insert("kfusion_stage_seconds{stage=\"execute\"}".into(), h.clone());
        t.hists.insert("kfusion_stage_seconds{stage=\"reply\"}".into(), h);
        let text = crate::metrics::export(&t);
        assert!(validate_metrics(&text).unwrap() > 0);
        assert_eq!(validate_histogram_family(&text, "kfusion_stage_seconds"), Ok(2));
        // A family not in the text is an error.
        let msg = validate_histogram_family(&text, "kfusion_missing_seconds").unwrap_err().0;
        assert!(msg.contains("TYPE"), "{msg}");
    }

    #[test]
    fn histogram_validation_rejects_broken_families() {
        // Decreasing cumulative counts.
        let bad = "# TYPE h histogram\n\
                   h_bucket{le=\"0.5\"} 5\nh_bucket{le=\"1\"} 3\nh_bucket{le=\"+Inf\"} 5\n\
                   h_sum 2.0\nh_count 5\n";
        assert!(validate_histogram_family(bad, "h").unwrap_err().0.contains("decrease"));
        // _count disagrees with the +Inf bucket.
        let bad = "# TYPE h histogram\n\
                   h_bucket{le=\"0.5\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_sum 2.0\nh_count 4\n";
        assert!(validate_histogram_family(bad, "h").unwrap_err().0.contains("_count"));
        // Missing +Inf bucket.
        let bad = "# TYPE h histogram\nh_bucket{le=\"0.5\"} 5\nh_sum 2.0\nh_count 5\n";
        assert!(validate_histogram_family(bad, "h").unwrap_err().0.contains("+Inf"));
        // Missing _sum.
        let bad = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n";
        assert!(validate_histogram_family(bad, "h").unwrap_err().0.contains("_sum"));
        // Escaped quotes in label values parse rather than derail.
        let ok = "# TYPE h histogram\n\
                  h_bucket{q=\"a\\\"b\",le=\"+Inf\"} 1\nh_sum{q=\"a\\\"b\"} 0.5\nh_count{q=\"a\\\"b\"} 1\n";
        assert_eq!(validate_histogram_family(ok, "h"), Ok(1));
    }
}
