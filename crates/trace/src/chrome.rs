//! Chrome trace-event JSON exporter.
//!
//! Produces the `{"traceEvents": [...]}` format that Perfetto and
//! `chrome://tracing` load directly. The two clock domains become two
//! processes — pid 1 is the simulated GPU (its H2D/compute/D2H/host engines
//! as named threads, one per stream lane), pid 2 is host wall-clock — so
//! one trace shows the DES model time and the real machine side by side
//! without conflating their axes.
//!
//! Host spans export as `B`/`E` pairs: they come from RAII guards on a
//! monotone wall clock, so per-lane they are always properly nested.
//! Simulated spans (and zero-duration spans on either clock) export as
//! complete `X` events instead — every DES run restarts model time at
//! zero, so a session holding several simulations has overlapping sim
//! spans per lane, which `X` events represent exactly while `B`/`E` pairs
//! cannot. The stream is globally sorted by timestamp with `E` before `X`
//! before `B` at equal instants so it is monotone and well nested — the
//! invariants `kfusion-trace-check` and the golden test enforce.

use crate::{Clock, Span, Trace};
use std::collections::BTreeMap;

/// Canonical display order for simulator tracks; everything else sorts
/// after these, alphabetically.
fn track_rank(track: &str) -> u32 {
    match track {
        "H2D" => 0,
        "compute" => 1,
        "D2H" => 2,
        "host" => 3,
        _ => 4,
    }
}

fn pid(clock: Clock) -> u32 {
    match clock {
        Clock::Sim => 1,
        Clock::Host => 2,
    }
}

/// Escape a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One pre-serialized event with its sort key.
struct Ev {
    ts: f64,
    /// 0 = E, 1 = X, 2 = B — ends close before new begins at the same
    /// instant, keeping the stream well nested.
    rank: u8,
    /// Within (ts, rank): outer spans begin first and close last.
    tie: f64,
    json: String,
}

/// Export `trace` as a Chrome trace-event JSON document.
pub fn export(trace: &Trace) -> String {
    // Assign a tid to every (clock, track, lane), in canonical order.
    let mut keys: Vec<(Clock, &str, u32)> =
        trace.spans.iter().map(|s| (s.clock, s.track.as_str(), s.lane)).collect();
    keys.sort_by(|a, b| {
        (pid(a.0), track_rank(a.1), a.1, a.2).cmp(&(pid(b.0), track_rank(b.1), b.1, b.2))
    });
    keys.dedup();
    let mut tids: BTreeMap<(u32, String, u32), u32> = BTreeMap::new();
    let mut next_tid: BTreeMap<u32, u32> = BTreeMap::new();
    let mut meta: Vec<String> = Vec::new();
    for (clock, track, lane) in keys {
        let p = pid(clock);
        let tid = {
            let n = next_tid.entry(p).or_insert(0);
            *n += 1;
            *n
        };
        if tid == 1 {
            let pname = match clock {
                Clock::Sim => "sim (model time)",
                Clock::Host => "host (wall clock)",
            };
            meta.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{p},\"tid\":0,\"ts\":0,\"args\":{{\"name\":\"{}\"}}}}",
                escape(pname)
            ));
        }
        meta.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{p},\"tid\":{tid},\"ts\":0,\"args\":{{\"name\":\"{}/{lane}\"}}}}",
            escape(track)
        ));
        tids.insert((p, track.to_string(), lane), tid);
    }

    let mut evs: Vec<Ev> = Vec::with_capacity(trace.spans.len() * 2);
    for s in &trace.spans {
        let p = pid(s.clock);
        let tid = tids[&(p, s.track.clone(), s.lane)];
        let (ts0, ts1) = (s.start * 1e6, s.end * 1e6);
        let head = span_head(s, p, tid);
        if s.clock == Clock::Host && ts1 > ts0 {
            evs.push(Ev {
                ts: ts0,
                rank: 2,
                tie: -ts1,
                json: format!("{head},\"ph\":\"B\",\"ts\":{ts0:.3}}}"),
            });
            evs.push(Ev {
                ts: ts1,
                rank: 0,
                tie: -ts0,
                json: format!("{head},\"ph\":\"E\",\"ts\":{ts1:.3}}}"),
            });
        } else {
            let dur = (ts1 - ts0).max(0.0);
            evs.push(Ev {
                ts: ts0,
                rank: 1,
                tie: -ts1,
                json: format!("{head},\"ph\":\"X\",\"ts\":{ts0:.3},\"dur\":{dur:.3}}}"),
            });
        }
    }
    evs.sort_by(|a, b| {
        a.ts.total_cmp(&b.ts).then(a.rank.cmp(&b.rank)).then(a.tie.total_cmp(&b.tie))
    });

    let mut lines = meta;
    lines.extend(evs.into_iter().map(|e| e.json));
    format!("{{\"traceEvents\":[\n{}\n]}}\n", lines.join(",\n"))
}

/// The shared `{"name":…,"cat":…,"pid":…,"tid":…` prefix (no closing brace).
fn span_head(s: &Span, pid: u32, tid: u32) -> String {
    let args = if s.scope.is_empty() {
        String::new()
    } else {
        format!(",\"args\":{{\"scope\":\"{}\"}}", escape(&s.scope))
    };
    format!(
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{pid},\"tid\":{tid}{args}",
        escape(&s.name),
        escape(&s.track)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(track: &str, lane: u32, clock: Clock, name: &str, start: f64, end: f64) -> Span {
        Span { name: name.into(), track: track.into(), lane, clock, scope: "q".into(), start, end }
    }

    #[test]
    fn exports_metadata_and_paired_events() {
        let mut t = Trace::default();
        t.spans.push(span("compute", 0, Clock::Sim, "k#1", 0.0, 1.0));
        t.spans.push(span("H2D", 2, Clock::Sim, "in#0", 0.0, 0.5));
        t.spans.push(span("host", 0, Clock::Host, "phase", 0.0, 0.25));
        let out = export(&t);
        let j = crate::json::parse(&out).expect("valid JSON");
        let evs = j.get("traceEvents").and_then(|v| v.as_arr()).expect("traceEvents array");
        // 3 thread_name + 2 process_name + 2 sim spans as X + 1 host B/E pair.
        assert_eq!(evs.len(), 9);
        let phases: Vec<&str> =
            evs.iter().map(|e| e.get("ph").and_then(|p| p.as_str()).unwrap()).collect();
        assert_eq!(phases.iter().filter(|p| **p == "B").count(), 1);
        assert_eq!(phases.iter().filter(|p| **p == "E").count(), 1);
        assert_eq!(phases.iter().filter(|p| **p == "X").count(), 2);
        assert_eq!(phases.iter().filter(|p| **p == "M").count(), 5);
        // H2D sorts before compute: tid 1 on pid 1 is the H2D lane.
        let names: Vec<&str> = evs
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
            .filter(|e| e.get("name").and_then(|p| p.as_str()) == Some("thread_name"))
            .map(|e| e.get("args").and_then(|a| a.get("name")).and_then(|n| n.as_str()).unwrap())
            .collect();
        assert_eq!(names, vec!["H2D/2", "compute/0", "host/0"]);
    }

    #[test]
    fn timestamps_are_monotone_and_sim_spans_are_complete_events() {
        let mut t = Trace::default();
        t.spans.push(span("compute", 0, Clock::Sim, "late", 2.0, 3.0));
        t.spans.push(span("compute", 0, Clock::Sim, "early", 0.0, 1.0));
        t.spans.push(span("compute", 0, Clock::Sim, "instant", 1.5, 1.5));
        t.spans.push(span("host", 0, Clock::Host, "zero", 0.5, 0.5));
        let out = export(&t);
        let j = crate::json::parse(&out).unwrap();
        let evs = j.get("traceEvents").and_then(|v| v.as_arr()).unwrap();
        let mut last = f64::NEG_INFINITY;
        let mut xs = 0;
        for e in evs {
            let ph = e.get("ph").and_then(|p| p.as_str()).unwrap();
            if ph == "M" {
                continue;
            }
            // Sim spans and zero-duration host spans are all X events.
            assert_eq!(ph, "X");
            xs += 1;
            let ts = e.get("ts").and_then(|v| v.as_f64()).unwrap();
            assert!(ts >= last, "ts went backwards");
            last = ts;
        }
        assert_eq!(xs, 4);
    }

    #[test]
    fn overlapping_sim_spans_from_repeated_runs_export_cleanly() {
        // Two DES runs in one session both start at model time zero; the
        // same lane then holds overlapping spans. X events carry explicit
        // durations, so the stream stays monotone and parseable.
        let mut t = Trace::default();
        t.spans.push(span("compute", 0, Clock::Sim, "k#1", 0.0, 1.0));
        t.spans.push(span("compute", 0, Clock::Sim, "k#1", 0.0, 2.0));
        let out = export(&t);
        let j = crate::json::parse(&out).unwrap();
        let evs = j.get("traceEvents").and_then(|v| v.as_arr()).unwrap();
        let durs: Vec<f64> = evs
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .map(|e| e.get("dur").and_then(|v| v.as_f64()).unwrap())
            .collect();
        // Longer (outer-most at the shared instant) first.
        assert_eq!(durs, vec![2e6, 1e6]);
    }

    #[test]
    fn nested_host_spans_stay_well_nested() {
        // Inner recorded before outer (RAII drop order); same begin instant.
        // The shared validator proves the B/E stream is well nested — the
        // same code path `kfusion-trace-check` gates CI with, which returns
        // errors (never panics) on malformed input.
        let mut t = Trace::default();
        t.spans.push(span("host", 0, Clock::Host, "inner", 0.0, 1.0));
        t.spans.push(span("host", 0, Clock::Host, "outer", 0.0, 2.0));
        let out = export(&t);
        let j = crate::json::parse(&out).unwrap();
        let s = crate::validate::validate(&j, &crate::validate::Requirements::default())
            .expect("exported host spans are well nested");
        assert_eq!(s.span_events, 4, "two B/E pairs");
    }

    #[test]
    fn validator_reports_malformed_events_instead_of_panicking() {
        // Regression for the old unwrap-based B/E stack check: a B event
        // with no name must surface as a validation error.
        let j =
            crate::json::parse(r#"{"traceEvents":[{"ph":"B","pid":2,"tid":1,"ts":0.0}]}"#).unwrap();
        let e = crate::validate::validate(&j, &crate::validate::Requirements::default())
            .expect_err("malformed event must fail validation");
        assert!(e.0.contains("name"), "{e}");
    }
}
