//! A minimal recursive-descent JSON parser.
//!
//! The workspace is offline and dependency-free, but the trace layer needs
//! to *read* JSON in two places: the `kfusion-trace-check` validator (CI
//! gates on emitted Chrome traces) and the golden shape test. This parser
//! covers the full JSON grammar (including `\uXXXX` escapes and surrogate
//! pairs) and reports byte offsets on error; it is not a performance-
//! sensitive path.

/// A parsed JSON value. Object members keep their source order (and
/// duplicates), which the validator relies on to check event ordering.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects (first match); `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("JSON error at byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>().map(Value::Num).map_err(|_| self.err("malformed number"))
    }

    fn hex4(&mut self) -> Result<u16, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("non-ascii in \\u escape"))?;
        let n = u16::from_str_radix(text, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(n)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a \uXXXX low half must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let cp = 0x10000
                                        + ((hi as u32 - 0xD800) << 10)
                                        + (lo as u32 - 0xDC00);
                                    char::from_u32(cp).ok_or_else(|| self.err("bad code point"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(hi as u32)
                                    .ok_or_else(|| self.err("lone surrogate"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this is safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trace;

    #[test]
    fn parses_scalars_arrays_objects() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn parses_escapes_and_surrogate_pairs() {
        let v = parse(r#""a\"b\\c\nA😀""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nA\u{1F600}"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2", "[1] x"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn preserves_object_member_order() {
        let v = parse(r#"{"z": 1, "a": 2, "z": 3}"#).unwrap();
        let m = v.as_obj().unwrap();
        assert_eq!(m[0].0, "z");
        assert_eq!(m[1].0, "a");
        assert_eq!(v.get("z").unwrap().as_f64(), Some(1.0), "get returns the first duplicate");
    }

    #[test]
    fn round_trips_the_chrome_exporter() {
        let out = crate::chrome::export(&Trace::default());
        let v = parse(&out).unwrap();
        assert_eq!(v.get("traceEvents").unwrap().as_arr().unwrap().len(), 0);
    }
}
