//! Property tests for the mergeable log-bucketed histogram (DESIGN.md §15).
//!
//! Two properties carry the whole design:
//!
//! 1. **Exact merge** — split one value stream into K sub-streams any way
//!    at all, histogram each, merge: the bucket counts are *bit-identical*
//!    to the histogram of the combined stream. This is what makes
//!    per-thread and per-query histograms foldable with zero resampling
//!    error.
//! 2. **Bounded quantile error** — for any q, `quantile(q)` brackets the
//!    exact sorted quantile from above by at most one bucket width
//!    (≤ 12.5% relative for in-range values).
//!
//! Seeded (kfusion-prng splitmix64), so failures replay deterministically.

use kfusion_prng::Rng;
use kfusion_trace::hist::{bucket_index, bucket_lower, bucket_upper, Hist};

/// A latency-shaped value: log-uniform across the histogram's whole range,
/// with occasional underflow/overflow outliers to exercise the edge
/// buckets.
fn sample_latency(rng: &mut Rng) -> f64 {
    match rng.gen_range(0..100u32) {
        0 => 0.0,
        1 => 1e-12,  // underflow bucket
        2 => 5000.0, // overflow bucket
        _ => {
            // log-uniform in [1e-8, 100) seconds
            let u = rng.next_f64();
            1e-8 * 10f64.powf(u * 10.0)
        }
    }
}

#[test]
fn merging_k_random_splits_is_bit_identical_to_the_combined_stream() {
    for seed in 0..20u64 {
        let mut rng = Rng::seed_from_u64(0xC0FFEE ^ seed);
        let n = rng.gen_range(1..2000usize);
        let k = rng.gen_range(2..9usize);
        let values: Vec<f64> = (0..n).map(|_| sample_latency(&mut rng)).collect();

        let mut combined = Hist::new();
        let mut parts: Vec<Hist> = (0..k).map(|_| Hist::new()).collect();
        for &v in &values {
            combined.record(v);
            // The split is itself random: any partition must merge exactly.
            parts[rng.gen_range(0..k)].record(v);
        }
        let mut merged = Hist::new();
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(
            merged.bucket_counts(),
            combined.bucket_counts(),
            "seed {seed}: merged buckets differ from combined stream (n={n}, k={k})"
        );
        assert_eq!(merged.count(), combined.count());
        // Sums are f64 adds in different orders — equal to rounding only.
        assert!((merged.sum() - combined.sum()).abs() <= 1e-9 * combined.sum().abs().max(1.0));
    }
}

#[test]
fn quantiles_bracket_exact_sorted_quantiles_within_one_bucket() {
    for seed in 0..20u64 {
        let mut rng = Rng::seed_from_u64(0xBEEF ^ seed);
        let n = rng.gen_range(1..3000usize);
        // In-range values only: the edge buckets have unbounded width by
        // construction and are exercised separately below.
        let mut values: Vec<f64> = (0..n)
            .map(|_| {
                let u = rng.next_f64();
                1e-8 * 10f64.powf(u * 10.0)
            })
            .collect();
        let mut h = Hist::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_by(f64::total_cmp);

        for &q in &[0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            let exact = values[rank - 1];
            let approx = h.quantile(q);
            let b = bucket_index(exact);
            let width = bucket_upper(b) - bucket_lower(b);
            assert!(approx >= exact, "seed {seed} q={q}: quantile {approx} below exact {exact}");
            assert!(
                approx - exact <= width,
                "seed {seed} q={q}: error {} exceeds bucket width {width}",
                approx - exact
            );
        }
    }
}

#[test]
fn edge_bucket_quantiles_stay_finite() {
    let mut h = Hist::new();
    for _ in 0..10 {
        h.record(0.0); // underflow
        h.record(1e9); // overflow
    }
    // Underflow quantiles report the underflow bucket's upper bound …
    assert_eq!(h.quantile(0.25), bucket_upper(0));
    // … and overflow quantiles clamp to the overflow lower bound, never Inf.
    let p99 = h.quantile(0.99);
    assert!(p99.is_finite());
    assert_eq!(p99, (kfusion_trace::hist::MAX_EXP as f64).exp2());
}
