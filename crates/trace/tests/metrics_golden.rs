//! Byte-pinned golden test for the Prometheus text exposition — counters
//! plus the histogram families added in DESIGN.md §15. Any drift in family
//! grouping, `# TYPE` headers, `le` bound rendering, label escaping, or the
//! `_bucket`/`_sum`/`_count` sibling layout fails here before it fails a
//! scraper.
//!
//! Regenerate after an intentional format change with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p kfusion-trace --test metrics_golden
//! ```

use kfusion_trace::hist::Hist;
use kfusion_trace::metrics::{export, metric_key};
use kfusion_trace::validate::{validate_histogram_family, validate_metrics};
use kfusion_trace::Trace;

fn golden_trace() -> Trace {
    let mut t = Trace::default();
    t.counters.insert("kfusion_rows_out_total{op=\"agg\"}".into(), 7);
    t.counters.insert("kfusion_rows_out_total{op=\"select\"}".into(), 42);
    t.counters.insert("kfusion_sim_commands_total".into(), 3);
    // Two label-series of one histogram family: both sort adjacent and
    // share one `# TYPE` header. Values chosen to occupy an in-range
    // bucket, a boundary (power of two), and the overflow bucket.
    let mut exec = Hist::new();
    for v in [0.001, 0.001, 0.002, 1.0, 5000.0] {
        exec.record(v);
    }
    let mut queue = Hist::new();
    queue.record(0.25);
    t.hists.insert(metric_key("kfusion_server_stage_host_seconds", &[("stage", "execute")]), exec);
    t.hists
        .insert(metric_key("kfusion_server_stage_host_seconds", &[("stage", "queue_wait")]), queue);
    // An unlabeled histogram gets `{le="..."}`-only labels.
    let mut total = Hist::new();
    total.record(0.5);
    t.hists.insert("kfusion_query_total_seconds".into(), total);
    // Label-value escaping: backslash, quote, newline.
    let mut odd = Hist::new();
    odd.record(0.125);
    t.hists.insert(metric_key("kfusion_odd_seconds", &[("q", "a\\b\"c\nd")]), odd);
    t
}

#[test]
fn metrics_export_matches_golden_file() {
    let got = export(&golden_trace());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/metrics_small.txt");
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(path).expect("golden file exists");
    assert_eq!(
        got, want,
        "metrics export drifted from the golden file; if intentional, \
         regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_file_validates_as_metrics_and_histograms() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/metrics_small.txt");
    let text = std::fs::read_to_string(path).expect("golden file exists");
    assert!(validate_metrics(&text).expect("metrics validate") > 0);
    assert_eq!(validate_histogram_family(&text, "kfusion_server_stage_host_seconds"), Ok(2));
    assert_eq!(validate_histogram_family(&text, "kfusion_query_total_seconds"), Ok(1));
    assert_eq!(validate_histogram_family(&text, "kfusion_odd_seconds"), Ok(1));
    // Sibling series never split a family: exactly one TYPE header each.
    for fam in
        ["kfusion_server_stage_host_seconds", "kfusion_query_total_seconds", "kfusion_odd_seconds"]
    {
        assert_eq!(text.matches(&format!("# TYPE {fam} histogram")).count(), 1, "{fam}");
    }
}
