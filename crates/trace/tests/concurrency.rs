//! The recorder under contention: scoped threads hammering spans and
//! counters concurrently must lose nothing, duplicate nothing, and leave
//! the trace exportable.
//!
//! This mirrors how the executor actually drives the recorder: the
//! functional phase of `kfusion_core::exec::run_plan` evaluates whole
//! wavefronts on `std::thread::scope` threads, each opening host spans and
//! bumping operator counters while the others do the same.

use kfusion_trace::Clock;
use std::sync::{Barrier, Mutex, MutexGuard};

const THREADS: usize = 8;
const SPANS_PER_THREAD: usize = 250;

/// Both tests toggle the process-global recorder; serialize them.
fn serial() -> MutexGuard<'static, ()> {
    static SERIAL: Mutex<()> = Mutex::new(());
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn scoped_threads_lose_no_spans_and_no_counts() {
    let _serial = serial();
    kfusion_trace::reset();
    kfusion_trace::set_enabled(true);
    let barrier = Barrier::new(THREADS);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                for i in 0..SPANS_PER_THREAD {
                    let _g = kfusion_trace::host_span("host", &format!("t{t}#{i}"));
                    kfusion_trace::counter("kfusion_test_ops_total", 1);
                    kfusion_trace::sim_span(
                        "compute",
                        t as u32,
                        "kernel",
                        i as f64,
                        i as f64 + 0.5,
                    );
                }
            });
        }
    });
    kfusion_trace::set_enabled(false);
    let trace = kfusion_trace::take();

    let total = THREADS * SPANS_PER_THREAD;
    assert_eq!(trace.spans_on(Clock::Host).count(), total, "host spans lost or duplicated");
    assert_eq!(trace.spans_on(Clock::Sim).count(), total, "sim spans lost or duplicated");
    assert_eq!(trace.counter("kfusion_test_ops_total"), total as u64);

    // Every host span name is unique — nothing got recorded twice.
    let mut names: Vec<&str> = trace.spans_on(Clock::Host).map(|s| s.name.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), total, "duplicate host spans recorded");

    // Every host span is well-formed (guards close what they open).
    for s in trace.spans_on(Clock::Host) {
        assert!(s.end >= s.start, "span {} ends before it starts", s.name);
    }

    // The contended trace still exports as parseable Chrome JSON.
    let json = kfusion_trace::chrome::export(&trace);
    let parsed = kfusion_trace::json::parse(&json).expect("export stays valid JSON");
    let events = parsed.get("traceEvents").and_then(|v| v.as_arr()).expect("traceEvents array");
    assert!(events.len() >= 2 * total);
}

#[test]
fn disabled_recorder_records_nothing_under_contention() {
    let _serial = serial();
    kfusion_trace::reset();
    kfusion_trace::set_enabled(false);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move || {
                for i in 0..SPANS_PER_THREAD {
                    let _g = kfusion_trace::host_span("host", "off");
                    kfusion_trace::counter("kfusion_test_ops_total", 1);
                    kfusion_trace::sim_span("compute", t as u32, "off", i as f64, i as f64);
                }
            });
        }
    });
    let trace = kfusion_trace::take();
    assert!(trace.spans.is_empty(), "disabled recorder captured spans");
    assert!(trace.counters.is_empty(), "disabled recorder captured counters");
}
