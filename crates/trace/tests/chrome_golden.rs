//! Golden-shape test for the Chrome trace-event exporter.
//!
//! The golden file is exactly what Perfetto / `chrome://tracing` would be
//! handed for a small fixed trace: two simulated engine spans (complete
//! `X` events), one host phase (a `B`/`E` pair), process/thread metadata,
//! and the global (ts, phase) sort order. Any byte of drift in the format
//! fails here first, before it fails in a trace viewer.
//!
//! Regenerate after an intentional format change with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p kfusion-trace --test chrome_golden
//! ```

use kfusion_trace::{Clock, Span, Trace};

fn golden_trace() -> Trace {
    let span = |track: &str, lane, clock, name: &str, scope: &str, start, end| Span {
        name: name.into(),
        track: track.into(),
        lane,
        clock,
        scope: scope.into(),
        start,
        end,
    };
    let mut t = Trace::default();
    // The Fig. 13 shape in miniature: an upload, the kernel it feeds
    // (overlapping the next segment's upload), and the result download.
    t.spans.push(span("H2D", 1, Clock::Sim, "in#0[seg0]", "q1", 0.0, 0.010));
    t.spans.push(span("H2D", 1, Clock::Sim, "in#0[seg1]", "q1", 0.010, 0.020));
    t.spans.push(span("compute", 0, Clock::Sim, "fused_compute#g0[seg0]", "q1", 0.010, 0.025));
    t.spans.push(span("D2H", 2, Clock::Sim, "out#9", "q1", 0.025, 0.027));
    t.spans.push(span("host", 0, Clock::Host, "functional_phase", "q1", 0.001, 0.004));
    t.counters.insert("kfusion_rows_out_total{op=\"select\"}".into(), 42);
    t
}

#[test]
fn chrome_export_matches_golden_file() {
    let got = kfusion_trace::chrome::export(&golden_trace());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/chrome_small.trace.json");
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(path).expect("golden file exists");
    assert_eq!(
        got, want,
        "Chrome export drifted from the golden file; if intentional, \
         regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn golden_file_is_valid_and_well_shaped() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/chrome_small.trace.json");
    let text = std::fs::read_to_string(path).expect("golden file exists");
    let doc = kfusion_trace::json::parse(&text).expect("golden parses as JSON");
    let evs = doc.get("traceEvents").and_then(|v| v.as_arr()).expect("traceEvents");
    // 2 process_name + 4 thread_name + 4 X (sim spans) + 1 B + 1 E.
    assert_eq!(evs.len(), 12);
    let count =
        |ph: &str| evs.iter().filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some(ph)).count();
    assert_eq!(count("M"), 6);
    assert_eq!(count("X"), 4);
    assert_eq!(count("B"), 1);
    assert_eq!(count("E"), 1);
    // Non-metadata timestamps are monotone.
    let mut last = f64::NEG_INFINITY;
    for e in evs {
        if e.get("ph").and_then(|p| p.as_str()) == Some("M") {
            continue;
        }
        let ts = e.get("ts").and_then(|v| v.as_f64()).expect("ts");
        assert!(ts >= last, "timestamps not monotone");
        last = ts;
    }
}
