//! Service-batched TPC-H equivalence: Q1 and Q6 submitted concurrently
//! must batch (they share lineitem scans), execute as one cross-query-fused
//! dispatch, and return outputs bit-for-bit identical to standalone runs.
//!
//! The table registry is Q1's seven lineitem columns; Q6's four inputs are
//! exactly the first four of those (shipdate, quantity, extendedprice,
//! discount), so both plans index the same registry and the admission
//! grouper sees the overlap.

use kfusion_core::exec::{execute, ExecConfig, Strategy};
use kfusion_server::{QueryService, ServerConfig};
use kfusion_tpch::gen::{generate, TpchConfig};
use kfusion_tpch::q1::{q1_inputs, q1_plan};
use kfusion_tpch::q6::q6_plan;
use kfusion_vgpu::GpuSystem;
use std::time::Duration;

#[test]
fn batched_q1_q6_are_bit_for_bit_standalone() {
    let system = GpuSystem::c2070();
    let db = generate(TpchConfig::scale(0.01));
    let tables = q1_inputs(&db);
    let exec_cfg = ExecConfig::new(Strategy::Fusion, &system);

    // Standalone ground truth over the same registry.
    let q1_alone = execute(&system, &q1_plan(), &tables, &exec_cfg).unwrap();
    let q6_alone = execute(&system, &q6_plan(), &tables, &exec_cfg).unwrap();

    let mut cfg = ServerConfig::new(exec_cfg);
    // A wide-open window and a single worker force both queries into one
    // admission window — the grouping itself is what's under test.
    cfg.window = Duration::from_millis(300);
    cfg.workers = 1;
    let (q1_served, q6_served, stats) = QueryService::serve(&system, &tables, &cfg, |c| {
        let t1 = c.submit(q1_plan()).unwrap();
        let t6 = c.submit(q6_plan()).unwrap();
        (t1.wait().unwrap(), t6.wait().unwrap(), c.cache_stats())
    });

    assert_eq!(q1_served.batch_size, 2, "Q1 and Q6 share scans; they must co-dispatch");
    assert_eq!(q6_served.batch_size, 2);
    assert_eq!(q1_served.output, q1_alone.output, "Q1 bit-for-bit");
    assert_eq!(q6_served.output, q6_alone.output, "Q6 bit-for-bit");
    assert_eq!(stats.entries, 1, "one merged-batch shape compiled: {stats:?}");

    // The batch shares the four overlapping column uploads, so its
    // simulated time undercuts the standalone sum.
    let separate = q1_alone.report.total() + q6_alone.report.total();
    assert!(
        q1_served.sim_batch_total < separate,
        "batch {} vs separate {separate}",
        q1_served.sim_batch_total
    );
}

#[test]
fn repeated_q6_submissions_hit_the_plan_cache_with_identical_answers() {
    let system = GpuSystem::c2070();
    let db = generate(TpchConfig::scale(0.01));
    let tables = q1_inputs(&db);
    let exec_cfg = ExecConfig::new(Strategy::Fusion, &system);
    let alone = execute(&system, &q6_plan(), &tables, &exec_cfg).unwrap();

    // Short window so each submission dispatches alone: every repeat takes
    // the single-query path and must hit the cache after the first.
    let mut cfg = ServerConfig::new(exec_cfg);
    cfg.window = Duration::from_millis(1);
    cfg.max_batch = 1;
    let stats = QueryService::serve(&system, &tables, &cfg, |c| {
        for _ in 0..4 {
            let out = c.query(q6_plan()).unwrap();
            assert_eq!(out.output, alone.output);
        }
        c.cache_stats()
    });
    assert_eq!(stats.entries, 1, "{stats:?}");
    assert!(stats.hits >= 3, "{stats:?}");
}
