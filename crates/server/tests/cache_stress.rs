//! Concurrent plan-cache stress: many threads, few shapes.
//!
//! The cache's contract is "compile once per shape, modulo benign races":
//! a thread can only pay a miss on its *first* encounter with a shape
//! (afterwards the entry is resident), so total compiles are bounded by
//! `threads x shapes` and in practice sit near `shapes`. The answers must
//! be byte-identical to uncached execution no matter which thread's
//! compile won the race.

use kfusion_core::exec::{execute, execute_prepared, ExecConfig, Strategy};
use kfusion_core::graph::{OpKind, PlanGraph};
use kfusion_relalg::{gen, predicates};
use kfusion_server::PlanCache;
use kfusion_vgpu::GpuSystem;

const THREADS: usize = 8;
const ROUNDS: usize = 6;

fn shape(i: usize) -> PlanGraph {
    // Four distinct shapes: selection chains of different depths/constants.
    let mut g = PlanGraph::new();
    let mut cur = g.input(0);
    for d in 0..(1 + i % 4) {
        cur = g.add(OpKind::Select { pred: predicates::key_lt(1 << (28 + i % 4 + d)) }, vec![cur]);
    }
    g
}

#[test]
fn concurrent_lookups_share_compiles_and_answers_stay_byte_identical() {
    let system = GpuSystem::c2070();
    let cfg = ExecConfig::new(Strategy::Fusion, &system);
    let tables = [gen::random_keys(60_000, 17)];
    let cache = PlanCache::new();
    let shapes = 4;

    // Uncached ground truth, one per shape.
    let expected: Vec<_> =
        (0..shapes).map(|i| execute(&system, &shape(i), &tables, &cfg).unwrap().output).collect();

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let (cache, cfg, system, tables, expected) =
                (&cache, &cfg, &system, &tables, &expected);
            s.spawn(move || {
                for r in 0..ROUNDS {
                    let i = (t + r) % shapes;
                    let plan = shape(i);
                    let fusion = cache.prepare(&plan, cfg).unwrap();
                    let got = execute_prepared(system, &plan, tables, cfg, &fusion).unwrap();
                    assert_eq!(got.output, expected[i], "thread {t} round {r} shape {i}");
                }
            });
        }
    });

    let stats = cache.stats();
    assert_eq!(stats.entries, shapes, "{stats:?}");
    assert_eq!(stats.hits + stats.misses, (THREADS * ROUNDS) as u64, "{stats:?}");
    assert_eq!(stats.misses, stats.compiles, "{stats:?}");
    // A thread can only miss on its first encounter with a shape; all later
    // lookups of that shape hit. So compiles are bounded by threads x shapes
    // (the benign-race ceiling), far below one-compile-per-query.
    assert!(stats.compiles <= (THREADS * shapes) as u64, "{stats:?}");
    assert!(stats.hits >= ((ROUNDS - 1) * THREADS) as u64, "{stats:?}");
}

#[test]
fn cache_hit_plans_are_shared_not_recompiled() {
    let system = GpuSystem::c2070();
    let cfg = ExecConfig::new(Strategy::Fusion, &system);
    let cache = PlanCache::new();
    let first = cache.prepare(&shape(0), &cfg).unwrap();
    let handles: Vec<_> = std::thread::scope(|s| {
        (0..THREADS)
            .map(|_| {
                let (cache, cfg) = (&cache, &cfg);
                s.spawn(move || cache.prepare(&shape(0), cfg).unwrap())
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    for h in &handles {
        assert!(std::sync::Arc::ptr_eq(h, &first), "hits must share the one compiled plan");
    }
    assert_eq!(cache.stats().compiles, 1);
}

#[test]
fn racing_duplicate_compiles_stay_bounded_and_leak_nothing() {
    // Many threads race the same *fresh* shape: some duplicate the compile
    // (benign, bounded by the racer count), but every caller must converge
    // on the map's winning Arc and every losing duplicate must be dropped.
    // The exact-interleaving version of this property is explored
    // exhaustively by the `cache-race-duplicate-compile` scenario in
    // `crates/checker/src/model_scenarios.rs`; this test covers the real
    // thread scheduler at a scale the explorer cannot.
    let system = GpuSystem::c2070();
    let cfg = ExecConfig::new(Strategy::Fusion, &system);
    let cache = PlanCache::new();
    let plans: Vec<_> = std::thread::scope(|s| {
        (0..THREADS)
            .map(|_| {
                let (cache, cfg) = (&cache, &cfg);
                s.spawn(move || cache.prepare(&shape(1), cfg).unwrap())
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    let stats = cache.stats();
    assert_eq!(stats.entries, 1, "{stats:?}");
    assert!(
        (1..=THREADS as u64).contains(&stats.compiles),
        "compiles must stay within the benign-race ceiling: {stats:?}"
    );
    for p in &plans {
        assert!(std::sync::Arc::ptr_eq(p, &plans[0]), "racers must converge on one plan");
    }
    // Losing compiles' Arcs are gone: the only strong refs left are the
    // cache's map entry plus our THREADS clones. A duplicate surviving
    // anywhere would show up here as a leaked count.
    assert_eq!(
        std::sync::Arc::strong_count(&plans[0]),
        THREADS + 1,
        "every losing duplicate Arc must have been dropped"
    );
}
