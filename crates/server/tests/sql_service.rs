//! Text-query serving equivalence: TPC-H Q6 and Q1 submitted as SQL
//! strings through [`QueryService::serve_catalog`] must return outputs
//! bit-for-bit identical to the hand-built physical plans run standalone —
//! the full chain `text → parse → lower → slot rewrite → admission →
//! plan cache → (batched) execute` adds nothing and loses nothing.

use kfusion_core::exec::{execute, ExecConfig, Strategy};
use kfusion_server::{QueryService, ServerConfig, ServerError, TableRegistry};
use kfusion_tpch::gen::{generate, TpchConfig, TpchDb};
use kfusion_tpch::sql::{
    bit_identical, q1_packed_table, q1_schema, q1_sql, q6_schema, q6_sql, q6_wide_table,
};
use kfusion_tpch::{q1, q6};
use kfusion_vgpu::GpuSystem;
use std::time::Duration;

fn db() -> TpchDb {
    generate(TpchConfig::scale(0.005))
}

#[test]
fn sql_q6_through_the_server_is_bit_identical_to_the_hand_plan() {
    let system = GpuSystem::c2070();
    let db = db();
    let mut registry = TableRegistry::new();
    // Occupy slot 0 with an unnamed relation so the named table lands on a
    // non-zero slot: the served answer being right proves the input-leaf
    // rewrite, not just the compile.
    registry.add_relation(q6_wide_table(&db));
    let slot = registry.add_table("lineitem", q6_schema(), q6_wide_table(&db)).unwrap();
    assert_eq!(slot, 1);

    let exec_cfg = ExecConfig::new(Strategy::Fusion, &system);
    let hand = q6::run_q6(&system, &db, Strategy::Fusion).unwrap().output;

    let cfg = ServerConfig::new(exec_cfg);
    let (cols, outcome) =
        QueryService::serve_catalog(&system, &registry, &cfg, |c| c.query_sql(&q6_sql()).unwrap());
    assert_eq!(cols, vec!["revenue", "count"]);
    assert!(bit_identical(&outcome.output, &hand), "served Q6 SQL diverges from hand-built plan");
}

#[test]
fn sql_q1_through_the_server_is_bit_identical_to_the_hand_plan() {
    let system = GpuSystem::c2070();
    let db = db();
    let mut registry = TableRegistry::new();
    registry.add_table("lineitem", q1_schema(), q1_packed_table(&db)).unwrap();

    let exec_cfg = ExecConfig::new(Strategy::Fusion, &system);
    let hand = q1::run_q1(&system, &db, Strategy::Fusion).unwrap().output;

    let cfg = ServerConfig::new(exec_cfg);
    let (cols, outcome) =
        QueryService::serve_catalog(&system, &registry, &cfg, |c| c.query_sql(&q1_sql()).unwrap());
    assert_eq!(cols[2], "disc_price");
    assert_eq!(cols[3], "charge");
    assert!(bit_identical(&outcome.output, &hand), "served Q1 SQL diverges from hand-built plan");
}

#[test]
fn repeated_sql_text_hits_the_plan_cache() {
    let system = GpuSystem::c2070();
    let db = db();
    let mut registry = TableRegistry::new();
    registry.add_table("lineitem", q6_schema(), q6_wide_table(&db)).unwrap();

    // Standalone ground truth over the registry's own compile.
    let exec_cfg = ExecConfig::new(Strategy::Fusion, &system);
    let compiled = registry.compile(&q6_sql()).unwrap();
    let alone = execute(&system, &compiled.plan, registry.tables(), &exec_cfg).unwrap().output;

    // Short window so every submission dispatches alone: repeats of the
    // same text must be cache hits.
    let mut cfg = ServerConfig::new(exec_cfg);
    cfg.window = Duration::from_millis(1);
    cfg.max_batch = 1;
    let stats = QueryService::serve_catalog(&system, &registry, &cfg, |c| {
        for _ in 0..4 {
            let (_, out) = c.query_sql(&q6_sql()).unwrap();
            assert!(bit_identical(&out.output, &alone));
        }
        c.cache_stats()
    });
    assert_eq!(stats.entries, 1, "one plan shape for one SQL text: {stats:?}");
    assert!(stats.hits >= 3, "{stats:?}");
}

#[test]
fn concurrent_sql_queries_batch_like_hand_built_plans() {
    let system = GpuSystem::c2070();
    let db = db();
    let mut registry = TableRegistry::new();
    registry.add_table("lineitem", q6_schema(), q6_wide_table(&db)).unwrap();

    let exec_cfg = ExecConfig::new(Strategy::Fusion, &system);
    let compiled = registry.compile(&q6_sql()).unwrap();
    let alone = execute(&system, &compiled.plan, registry.tables(), &exec_cfg).unwrap().output;

    // A wide-open window and one worker force both text queries into the
    // same admission window; they share the lineitem scan, so they must
    // co-dispatch through merge_plans like any hand-built pair.
    let mut cfg = ServerConfig::new(exec_cfg);
    cfg.window = Duration::from_millis(300);
    cfg.workers = 1;
    let (a, b) = QueryService::serve_catalog(&system, &registry, &cfg, |c| {
        let t1 = c.submit_sql(&q6_sql()).unwrap();
        let t2 = c.submit_sql(&q6_sql()).unwrap();
        (t1.wait().unwrap(), t2.wait().unwrap())
    });
    assert_eq!(a.1.batch_size, 2, "identical scans must co-dispatch");
    assert_eq!(b.1.batch_size, 2);
    assert!(bit_identical(&a.1.output, &alone));
    assert!(bit_identical(&b.1.output, &alone));
}

#[test]
fn bad_sql_surfaces_a_positioned_compile_error() {
    let system = GpuSystem::c2070();
    let db = db();
    let mut registry = TableRegistry::new();
    registry.add_table("lineitem", q6_schema(), q6_wide_table(&db)).unwrap();
    let cfg = ServerConfig::new(ExecConfig::new(Strategy::Fusion, &system));

    QueryService::serve_catalog(&system, &registry, &cfg, |c| {
        // Lexer bug regression, end to end through the server.
        let err = c.query_sql("SELECT shipdate FROM lineitem WHERE quantity < 1.2.3").unwrap_err();
        match &err {
            ServerError::Compile(e) => {
                assert!(e.to_string().contains("byte"), "positioned diagnostic: {e}")
            }
            other => panic!("expected Compile, got {other:?}"),
        }
        // Semantic error too.
        let err = c.query_sql("SELECT nope FROM lineitem").unwrap_err();
        assert!(matches!(err, ServerError::Compile(_)), "{err:?}");
        // And unknown tables.
        let err = c.query_sql("SELECT shipdate FROM orders").unwrap_err();
        assert!(matches!(err, ServerError::Compile(_)), "{err:?}");
    });
}

#[test]
fn text_queries_need_a_catalog() {
    let system = GpuSystem::c2070();
    let db = db();
    let tables = [q6_wide_table(&db)];
    let cfg = ServerConfig::new(ExecConfig::new(Strategy::Fusion, &system));
    QueryService::serve(&system, &tables, &cfg, |c| {
        let err = c.query_sql(&q6_sql()).unwrap_err();
        assert_eq!(err, ServerError::NoCatalog);
    });
}
