//! The plan cache: compile once per plan *shape*, share the result.
//!
//! `prepare_fusion` — verify, fuse, optimize — is a pure function of the
//! plan's structure, the register budget, and the optimization level
//! ([`PlanKey`] captures exactly those), plus the strategy *class* (serial
//! strategies take the singleton plan, fused ones run the fusion pass).
//! The cache keys on `(PlanKey, class)` and hands out `Arc<FusionPlan>`s,
//! so concurrent submissions of structurally identical plans pay the
//! compile side once and share the result by reference.
//!
//! Misses build **outside** the lock: two threads racing on the same fresh
//! shape may both compile it (a benign, bounded duplication — the second
//! insert defers to the first), but no thread ever executes a query while
//! holding the cache lock. The `compiles` counter counts real compile runs,
//! so the stress test can distinguish "once per shape, plus benign races"
//! from "once per query".

use crate::ServerError;
use kfusion_core::exec::{prepare_fusion, ExecConfig, Strategy};
use kfusion_core::fingerprint::fingerprint_multi;
use kfusion_core::fusion::FusionPlan;
use kfusion_core::graph::PlanGraph;
use kfusion_core::multiquery::MergedPlan;
use kfusion_core::PlanKey;
// Shimmed sync (std in production builds): the cache's racy-miss protocol
// is one of the fixed scenarios `kfusion-model` explores exhaustively.
use kfusion_model::sync::atomic::{AtomicU64, Ordering};
use kfusion_model::sync::{Arc, Mutex, MutexGuard};
use std::collections::HashMap;

/// Serial strategies prepare singleton plans, fused strategies run the
/// fusion pass; a cached entry is only valid within its class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum PlanClass {
    Singleton,
    Fused,
}

fn class_of(strategy: Strategy) -> PlanClass {
    match strategy {
        Strategy::Serial | Strategy::SerialRoundTrip => PlanClass::Singleton,
        Strategy::Fusion | Strategy::FusionFission { .. } => PlanClass::Fused,
    }
}

/// A point-in-time view of the cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that found no entry.
    pub misses: u64,
    /// Actual compile-pipeline runs (≥ distinct shapes; > only when two
    /// threads raced on the same fresh shape).
    pub compiles: u64,
    /// Distinct `(shape, budget, level, class)` entries resident.
    pub entries: usize,
}

/// A concurrent map from plan shape to its prepared [`FusionPlan`].
#[derive(Debug, Default)]
pub struct PlanCache {
    map: Mutex<HashMap<(PlanKey, PlanClass), Arc<FusionPlan>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    compiles: AtomicU64,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Prepared fusion plan for a single-root `graph` under `cfg`, cached.
    pub fn prepare(
        &self,
        graph: &PlanGraph,
        cfg: &ExecConfig,
    ) -> Result<Arc<FusionPlan>, ServerError> {
        self.prepare_observed(graph, cfg).map(|(plan, _)| plan)
    }

    /// Like [`PlanCache::prepare`], but also reports whether the lookup was
    /// a hit — the bit the service's `QueryRecord` attributes compile time
    /// against.
    pub fn prepare_observed(
        &self,
        graph: &PlanGraph,
        cfg: &ExecConfig,
    ) -> Result<(Arc<FusionPlan>, bool), ServerError> {
        let key = (PlanKey::new(graph, &cfg.budget, cfg.level), class_of(cfg.strategy));
        self.get_or_build(key, || prepare_fusion(graph, cfg).map_err(Into::into))
    }

    /// Prepared fusion plan for a merged multi-root batch, cached on the
    /// batch's combined fingerprint: a recurring batch *composition* (e.g.
    /// the same two dashboard queries admitted together every window) hits
    /// after its first compile.
    pub fn prepare_multi(
        &self,
        merged: &MergedPlan,
        cfg: &ExecConfig,
    ) -> Result<Arc<FusionPlan>, ServerError> {
        self.prepare_multi_observed(merged, cfg).map(|(plan, _)| plan)
    }

    /// Like [`PlanCache::prepare_multi`], but also reports hit/miss.
    pub fn prepare_multi_observed(
        &self,
        merged: &MergedPlan,
        cfg: &ExecConfig,
    ) -> Result<(Arc<FusionPlan>, bool), ServerError> {
        let key = PlanKey {
            plan: fingerprint_multi(&merged.graph, &merged.roots),
            max_regs_per_thread: cfg.budget.max_regs_per_thread,
            level: cfg.level,
        };
        self.get_or_build((key, class_of(cfg.strategy)), || {
            prepare_fusion(&merged.graph, cfg).map_err(Into::into)
        })
    }

    fn get_or_build(
        &self,
        key: (PlanKey, PlanClass),
        build: impl FnOnce() -> Result<FusionPlan, ServerError>,
    ) -> Result<(Arc<FusionPlan>, bool), ServerError> {
        if let Some(plan) = self.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            kfusion_trace::counter("kfusion_server_plan_cache_hits_total", 1);
            return Ok((plan.clone(), true));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        kfusion_trace::counter("kfusion_server_plan_cache_misses_total", 1);
        // Compile with the lock released; a racing thread duplicates work,
        // never blocks behind it.
        self.compiles.fetch_add(1, Ordering::Relaxed);
        kfusion_trace::counter("kfusion_server_plan_compiles_total", 1);
        let plan = Arc::new(build()?);
        Ok((self.lock().entry(key).or_insert(plan).clone(), false))
    }

    /// Current counters and residency.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            compiles: self.compiles.load(Ordering::Relaxed),
            entries: self.lock().len(),
        }
    }

    /// Number of cached shapes.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<(PlanKey, PlanClass), Arc<FusionPlan>>> {
        // The critical sections only touch the map; a poisoned lock means a
        // panic elsewhere, not a broken map.
        self.map.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kfusion_core::graph::OpKind;
    use kfusion_relalg::predicates;
    use kfusion_vgpu::GpuSystem;

    fn query(t: u64) -> PlanGraph {
        let mut g = PlanGraph::new();
        let i = g.input(0);
        g.add(OpKind::Select { pred: predicates::key_lt(t) }, vec![i]);
        g
    }

    #[test]
    fn same_shape_compiles_once() {
        let s = GpuSystem::c2070();
        let cfg = ExecConfig::new(Strategy::Fusion, &s);
        let cache = PlanCache::new();
        let a = cache.prepare(&query(10), &cfg).unwrap();
        let b = cache.prepare(&query(10), &cfg).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same shape must share one plan");
        let st = cache.stats();
        assert_eq!((st.hits, st.misses, st.compiles, st.entries), (1, 1, 1, 1));
    }

    #[test]
    fn predicate_constants_are_part_of_the_shape() {
        let s = GpuSystem::c2070();
        let cfg = ExecConfig::new(Strategy::Fusion, &s);
        let cache = PlanCache::new();
        cache.prepare(&query(10), &cfg).unwrap();
        cache.prepare(&query(11), &cfg).unwrap();
        assert_eq!(cache.len(), 2, "different constants are different shapes");
    }

    #[test]
    fn serial_and_fused_preparations_do_not_alias() {
        let s = GpuSystem::c2070();
        let cache = PlanCache::new();
        let mut g = PlanGraph::new();
        let i = g.input(0);
        let a = g.add(OpKind::Select { pred: predicates::key_lt(5) }, vec![i]);
        g.add(OpKind::Select { pred: predicates::key_lt(3) }, vec![a]);
        let fused = cache.prepare(&g, &ExecConfig::new(Strategy::Fusion, &s)).unwrap();
        let serial = cache.prepare(&g, &ExecConfig::new(Strategy::Serial, &s)).unwrap();
        assert_eq!(fused.groups.len(), 1);
        assert_eq!(serial.groups.len(), 2, "singleton plan per operator");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn multi_key_covers_batch_composition() {
        let s = GpuSystem::c2070();
        let cfg = ExecConfig::new(Strategy::Fusion, &s);
        let cache = PlanCache::new();
        let m2 = kfusion_core::multiquery::merge_plans(&[query(10), query(20)]);
        let m1 = kfusion_core::multiquery::merge_plans(&[query(10)]);
        cache.prepare_multi(&m2, &cfg).unwrap();
        cache.prepare_multi(&m1, &cfg).unwrap();
        cache.prepare_multi(&m2, &cfg).unwrap();
        let st = cache.stats();
        assert_eq!((st.hits, st.entries), (1, 2), "{st:?}");
    }
}
