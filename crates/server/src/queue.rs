//! A bounded MPMC queue on `Mutex` + `Condvar` — the service's
//! backpressure primitive (no external crates, per the workspace's
//! no-dependency rule).
//!
//! Both ends are timed: producers use [`BoundedQueue::push_timeout`] so an
//! overloaded service rejects ([`crate::ServerError::Overloaded`]) instead
//! of buffering without bound, and consumers use
//! [`BoundedQueue::pop_timeout`] so admission windows and shutdown drains
//! never block forever. [`BoundedQueue::close`] wakes everyone: queued
//! items stay poppable (shutdown *drains*), new pushes are refused.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Why a push was refused; the item comes back to the caller either way.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue stayed full for the whole timeout.
    Full(T),
    /// The queue is closed to new items.
    Closed(T),
}

/// What a timed pop observed.
#[derive(Debug, PartialEq, Eq)]
pub enum Pop<T> {
    /// An item.
    Item(T),
    /// Nothing arrived within the timeout; the queue may still produce.
    TimedOut,
    /// Closed and fully drained: no item will ever arrive again.
    Closed,
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner { items: VecDeque::new(), closed: false }),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Push `item`, waiting up to `timeout` for a slot.
    pub fn push_timeout(&self, item: T, timeout: Duration) -> Result<(), PushError<T>> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.lock();
        loop {
            if inner.closed {
                return Err(PushError::Closed(item));
            }
            if inner.items.len() < self.capacity {
                inner.items.push_back(item);
                self.not_empty.notify_one();
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(PushError::Full(item));
            }
            let (guard, _timed_out) = self
                .not_full
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
        }
    }

    /// Pop one item, waiting up to `timeout` for one to arrive.
    pub fn pop_timeout(&self, timeout: Duration) -> Pop<T> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                self.not_full.notify_one();
                return Pop::Item(item);
            }
            if inner.closed {
                return Pop::Closed;
            }
            let now = Instant::now();
            if now >= deadline {
                return Pop::TimedOut;
            }
            let (guard, _timed_out) = self
                .not_empty
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
        }
    }

    /// Refuse new pushes; queued items remain poppable until drained.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.lock().items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHORT: Duration = Duration::from_millis(5);

    #[test]
    fn fifo_within_capacity() {
        let q = BoundedQueue::new(2);
        q.push_timeout(1, SHORT).unwrap();
        q.push_timeout(2, SHORT).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_timeout(SHORT), Pop::Item(1));
        assert_eq!(q.pop_timeout(SHORT), Pop::Item(2));
        assert_eq!(q.pop_timeout(SHORT), Pop::TimedOut);
    }

    #[test]
    fn full_queue_times_out_with_item_returned() {
        let q = BoundedQueue::new(1);
        q.push_timeout(1, SHORT).unwrap();
        assert_eq!(q.push_timeout(2, SHORT), Err(PushError::Full(2)));
    }

    #[test]
    fn close_refuses_pushes_but_drains_pops() {
        let q = BoundedQueue::new(4);
        q.push_timeout(7, SHORT).unwrap();
        q.close();
        assert_eq!(q.push_timeout(8, SHORT), Err(PushError::Closed(8)));
        assert_eq!(q.pop_timeout(SHORT), Pop::Item(7));
        assert_eq!(q.pop_timeout(SHORT), Pop::Closed);
    }

    #[test]
    fn blocked_producer_wakes_when_a_slot_frees() {
        let q = BoundedQueue::new(1);
        q.push_timeout(1, SHORT).unwrap();
        std::thread::scope(|s| {
            s.spawn(|| {
                q.push_timeout(2, Duration::from_secs(5)).unwrap();
            });
            assert_eq!(q.pop_timeout(Duration::from_secs(5)), Pop::Item(1));
            // The producer's item lands once our pop freed the slot.
            assert_eq!(q.pop_timeout(Duration::from_secs(5)), Pop::Item(2));
        });
    }

    #[test]
    fn blocked_consumer_wakes_on_close() {
        let q: BoundedQueue<u32> = BoundedQueue::new(1);
        std::thread::scope(|s| {
            let h = s.spawn(|| q.pop_timeout(Duration::from_secs(5)));
            std::thread::sleep(Duration::from_millis(10));
            q.close();
            assert_eq!(h.join().unwrap(), Pop::Closed);
        });
    }
}
