//! A bounded MPMC queue on `Mutex` + `Condvar` — the service's
//! backpressure primitive (no external crates, per the workspace's
//! no-dependency rule).
//!
//! Both ends are timed: producers use [`BoundedQueue::push_timeout`] so an
//! overloaded service rejects ([`crate::ServerError::Overloaded`]) instead
//! of buffering without bound, and consumers use
//! [`BoundedQueue::pop_timeout`] so admission windows and shutdown drains
//! never block forever. [`BoundedQueue::close`] wakes everyone: queued
//! items stay poppable (shutdown *drains*), new pushes are refused.
//!
//! Sync primitives come from `kfusion_model::sync` — plain `std::sync`
//! re-exports in production builds, the model-checker shim under
//! `cfg(kfusion_model)` so the queue's whole interleaving space is
//! explored by `kfusion-model` (see `crates/checker/src/model_scenarios.rs`).

use kfusion_model::sync::{Condvar, Mutex, MutexGuard};
use kfusion_model::time::Instant;
use std::collections::VecDeque;
use std::time::Duration;

/// Why a push was refused; the item comes back to the caller either way.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue stayed full for the whole timeout.
    Full(T),
    /// The queue is closed to new items.
    Closed(T),
}

/// What a timed pop observed.
#[derive(Debug, PartialEq, Eq)]
pub enum Pop<T> {
    /// An item.
    Item(T),
    /// Nothing arrived within the timeout; the queue may still produce.
    TimedOut,
    /// Closed and fully drained: no item will ever arrive again.
    Closed,
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner { items: VecDeque::new(), closed: false }),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Push `item`, waiting up to `timeout` for a slot.
    ///
    /// The deadline is re-checked against the monotonic clock on every trip
    /// around the wait loop, so a spurious wakeup near the deadline neither
    /// returns [`PushError::Full`] early nor waits past the deadline. A
    /// `timeout` too large to represent as an instant (e.g.
    /// `Duration::MAX`) means "wait forever" — it used to panic on the
    /// `Instant + Duration` overflow.
    pub fn push_timeout(&self, item: T, timeout: Duration) -> Result<(), PushError<T>> {
        let deadline = Instant::now().checked_add(timeout);
        let mut inner = self.lock();
        loop {
            if inner.closed {
                return Err(PushError::Closed(item));
            }
            if inner.items.len() < self.capacity {
                inner.items.push_back(item);
                self.not_empty.notify_one();
                return Ok(());
            }
            inner = match deadline {
                None => self.not_full.wait(inner).unwrap_or_else(|e| e.into_inner()),
                Some(d) => {
                    let remaining = d.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        return Err(PushError::Full(item));
                    }
                    let (guard, _timed_out) = self
                        .not_full
                        .wait_timeout(inner, remaining)
                        .unwrap_or_else(|e| e.into_inner());
                    guard
                }
            };
        }
    }

    /// Pop one item, waiting up to `timeout` for one to arrive.
    ///
    /// Same deadline discipline as [`BoundedQueue::push_timeout`]: the
    /// deadline is re-derived from the clock after every wakeup, and an
    /// unrepresentable deadline waits forever instead of panicking.
    pub fn pop_timeout(&self, timeout: Duration) -> Pop<T> {
        let deadline = Instant::now().checked_add(timeout);
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                self.not_full.notify_one();
                return Pop::Item(item);
            }
            if inner.closed {
                return Pop::Closed;
            }
            inner = match deadline {
                None => self.not_empty.wait(inner).unwrap_or_else(|e| e.into_inner()),
                Some(d) => {
                    let remaining = d.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        return Pop::TimedOut;
                    }
                    let (guard, _timed_out) = self
                        .not_empty
                        .wait_timeout(inner, remaining)
                        .unwrap_or_else(|e| e.into_inner());
                    guard
                }
            };
        }
    }

    /// Refuse new pushes; queued items remain poppable until drained.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.lock().items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHORT: Duration = Duration::from_millis(5);

    #[test]
    fn fifo_within_capacity() {
        let q = BoundedQueue::new(2);
        q.push_timeout(1, SHORT).unwrap();
        q.push_timeout(2, SHORT).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_timeout(SHORT), Pop::Item(1));
        assert_eq!(q.pop_timeout(SHORT), Pop::Item(2));
        assert_eq!(q.pop_timeout(SHORT), Pop::TimedOut);
    }

    #[test]
    fn full_queue_times_out_with_item_returned() {
        let q = BoundedQueue::new(1);
        q.push_timeout(1, SHORT).unwrap();
        assert_eq!(q.push_timeout(2, SHORT), Err(PushError::Full(2)));
    }

    #[test]
    fn close_refuses_pushes_but_drains_pops() {
        let q = BoundedQueue::new(4);
        q.push_timeout(7, SHORT).unwrap();
        q.close();
        assert_eq!(q.push_timeout(8, SHORT), Err(PushError::Closed(8)));
        assert_eq!(q.pop_timeout(SHORT), Pop::Item(7));
        assert_eq!(q.pop_timeout(SHORT), Pop::Closed);
    }

    #[test]
    fn blocked_producer_wakes_when_a_slot_frees() {
        let q = BoundedQueue::new(1);
        q.push_timeout(1, SHORT).unwrap();
        std::thread::scope(|s| {
            s.spawn(|| {
                q.push_timeout(2, Duration::from_secs(5)).unwrap();
            });
            assert_eq!(q.pop_timeout(Duration::from_secs(5)), Pop::Item(1));
            // The producer's item lands once our pop freed the slot.
            assert_eq!(q.pop_timeout(Duration::from_secs(5)), Pop::Item(2));
        });
    }

    #[test]
    fn duration_max_means_wait_forever_not_panic() {
        // Regression: `Instant::now() + Duration::MAX` used to panic on
        // overflow before any wait happened.
        let q: BoundedQueue<u32> = BoundedQueue::new(1);
        std::thread::scope(|s| {
            let h = s.spawn(|| q.pop_timeout(Duration::MAX));
            std::thread::sleep(Duration::from_millis(10));
            q.push_timeout(9, Duration::MAX).unwrap();
            assert_eq!(h.join().unwrap(), Pop::Item(9));
        });
    }

    #[test]
    fn closing_unblocks_an_unbounded_wait() {
        let q: BoundedQueue<u32> = BoundedQueue::new(1);
        std::thread::scope(|s| {
            let h = s.spawn(|| q.pop_timeout(Duration::MAX));
            std::thread::sleep(Duration::from_millis(10));
            q.close();
            assert_eq!(h.join().unwrap(), Pop::Closed);
        });
    }

    #[test]
    fn timeout_is_honored_against_the_monotonic_clock() {
        // The deadline must hold even across (possibly spurious) wakeups:
        // an empty queue's pop may not return TimedOut before the deadline.
        let q: BoundedQueue<u32> = BoundedQueue::new(1);
        let t0 = std::time::Instant::now();
        assert_eq!(q.pop_timeout(Duration::from_millis(30)), Pop::TimedOut);
        assert!(t0.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn blocked_consumer_wakes_on_close() {
        let q: BoundedQueue<u32> = BoundedQueue::new(1);
        std::thread::scope(|s| {
            let h = s.spawn(|| q.pop_timeout(Duration::from_secs(5)));
            std::thread::sleep(Duration::from_millis(10));
            q.close();
            assert_eq!(h.join().unwrap(), Pop::Closed);
        });
    }
}
