//! The query service: admission window, shared-scan grouping, worker pool.
//!
//! One admission thread and `workers` execution threads run inside a
//! `std::thread::scope` for the duration of [`QueryService::serve`]; the
//! caller's closure gets a [`ServiceClient`] and drives load against it
//! (typically from its own scoped client threads). Submissions flow
//!
//! ```text
//! submit → [submission queue] → admission window → shared-input grouping
//!        → [dispatch queue] → worker: plan cache → execute → reply channel
//! ```
//!
//! The admission window is bounded in both count ([`ServerConfig::max_batch`])
//! and time ([`ServerConfig::window`]): the first submission opens the
//! window, and everything admitted before it closes is grouped by
//! overlapping scan inputs (union-find). Groups of two or more splice
//! through [`merge_plans`] and run as one cross-query-fused batch — shared
//! scans uploaded once, SELECTs from different queries in one kernel — while
//! singletons take the ordinary path. Either way the compile side comes
//! from the shared [`PlanCache`].
//!
//! Both queues are bounded: a full submission queue rejects with
//! [`ServerError::Overloaded`] (backpressure at the edge), and a full
//! dispatch queue blocks *admission*, which in turn fills the submission
//! queue — load sheds at the client, never as unbounded memory. Shutdown is
//! a drain: closing the submission queue lets admission flush every queued
//! query into final batches, then close the dispatch queue, which the
//! workers drain before exiting; nothing accepted is dropped.

use crate::cache::{CacheStats, PlanCache};
use crate::queue::{BoundedQueue, Pop, PushError};
use crate::sql::{SqlTicket, TableRegistry};
use crate::stats::{QueryRecord, RecordOutcome, ServerStats, StatsHub, SIM_STAGES};
use crate::ServerError;
use kfusion_core::exec::{execute_prepared, ExecConfig};
use kfusion_core::graph::{OpKind, PlanGraph};
use kfusion_core::multiquery::{execute_multi_prepared, merge_plans};
use kfusion_core::report::Report;
use kfusion_relalg::Relation;
use kfusion_vgpu::{Engine, GpuSystem};
use std::collections::HashMap;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// How long a blocked-but-not-closed queue end sleeps between re-checks.
const POLL: Duration = Duration::from_millis(50);

/// Lane carrying the retroactive `queue_wait` spans on the `server` track —
/// far above the recorder's per-thread lane counter, so waits (which
/// overlap freely) never interleave with a worker's own `execute` spans.
const QUEUE_WAIT_LANE: u32 = 1 << 16;

/// Service tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Executor configuration shared by every query the service runs. One
    /// service instance serves one `(strategy, budget, level)` regime —
    /// exactly the regime its plan cache is sound for.
    pub exec: ExecConfig,
    /// Worker threads executing dispatched groups.
    pub workers: usize,
    /// Count bound of the admission window: a window dispatches as soon as
    /// this many queries are admitted.
    pub max_batch: usize,
    /// Time bound of the admission window, measured from the first
    /// submission that opens it.
    pub window: Duration,
    /// Capacity of the submission and dispatch queues.
    pub queue_depth: usize,
    /// How long `submit` waits for a submission-queue slot before
    /// rejecting with [`ServerError::Overloaded`].
    pub submit_timeout: Duration,
    /// Deadline applied to submissions that do not carry their own: a query
    /// still queued when its deadline passes is rejected, not executed.
    pub default_deadline: Option<Duration>,
    /// How many recent [`QueryRecord`]s the flight recorder retains.
    pub flight_recorder_depth: usize,
    /// How many slow-query records the slow log retains.
    pub slow_log_depth: usize,
    /// End-to-end host latency at which a completed query is copied into
    /// the slow log (`None` disables the log).
    pub slow_query_threshold: Option<Duration>,
}

impl ServerConfig {
    /// A config for `exec` with small-service defaults: 2 workers, windows
    /// of up to 4 queries or 2 ms, queues of 64, 20 ms submit patience, no
    /// deadline, a 256-record flight recorder, and the slow log disabled.
    pub fn new(exec: ExecConfig) -> Self {
        ServerConfig {
            exec,
            workers: 2,
            max_batch: 4,
            window: Duration::from_millis(2),
            queue_depth: 64,
            submit_timeout: Duration::from_millis(20),
            default_deadline: None,
            flight_recorder_depth: 256,
            slow_log_depth: 32,
            slow_query_threshold: None,
        }
    }
}

/// What a successful query gets back.
#[derive(Debug)]
pub struct QueryOutcome {
    /// The query result — byte-identical to a standalone
    /// [`kfusion_core::exec::execute`] of the same plan over the service's
    /// tables.
    pub output: Relation,
    /// How many queries co-executed in this dispatch (1 = ran alone).
    pub batch_size: usize,
    /// Simulated seconds of the whole dispatch this query rode in. Summing
    /// `sim_batch_total / batch_size` over queries reproduces the exact
    /// aggregate simulated time of the run.
    pub sim_batch_total: f64,
    /// The closed per-stage lifecycle record of this query (queue wait,
    /// batch formation, compile, execute, reply on the host clock; its
    /// engine-time share on the simulated clock). The same record is
    /// retained in the service's flight recorder.
    pub record: QueryRecord,
}

/// One queued query: its plan plus everything needed to time it out and to
/// route its result home.
struct Submission {
    plan: PlanGraph,
    seq: u64,
    enqueued_at: Instant,
    admitted_at: Option<Instant>,
    deadline: Option<Instant>,
    reply: mpsc::Sender<Result<QueryOutcome, ServerError>>,
}

/// A dispatched unit of work: one or more submissions that share inputs.
struct GroupJob {
    members: Vec<Submission>,
}

/// The receiving end of one submission.
#[derive(Debug)]
pub struct QueryTicket {
    rx: mpsc::Receiver<Result<QueryOutcome, ServerError>>,
}

impl QueryTicket {
    /// Block until the service delivers this query's outcome.
    pub fn wait(self) -> Result<QueryOutcome, ServerError> {
        self.rx.recv().map_err(|_| ServerError::Disconnected)?
    }

    /// Wait at most `timeout` for the outcome. On expiry the ticket is
    /// *not* consumed: the error is [`ServerError::WaitTimedOut`] and the
    /// caller can poll again (or fall back to [`QueryTicket::wait`]).
    pub fn wait_timeout(&self, timeout: Duration) -> Result<QueryOutcome, ServerError> {
        match self.rx.recv_timeout(timeout) {
            Ok(res) => res,
            Err(mpsc::RecvTimeoutError::Timeout) => Err(ServerError::WaitTimedOut),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServerError::Disconnected),
        }
    }
}

/// The submission handle passed to [`QueryService::serve`]'s closure; share
/// it across client threads freely (`&self` everywhere).
pub struct ServiceClient<'a> {
    submissions: &'a BoundedQueue<Submission>,
    cache: &'a PlanCache,
    config: &'a ServerConfig,
    hub: &'a StatsHub,
    /// Present only under [`QueryService::serve_catalog`]; text queries
    /// need it to resolve table names.
    registry: Option<&'a TableRegistry>,
}

impl ServiceClient<'_> {
    /// Submit `plan` (over the service's table registry) under the
    /// config's default deadline.
    pub fn submit(&self, plan: PlanGraph) -> Result<QueryTicket, ServerError> {
        self.submit_with_deadline(plan, self.config.default_deadline)
    }

    /// Submit with an explicit deadline (`None` = never times out).
    pub fn submit_with_deadline(
        &self,
        plan: PlanGraph,
        deadline: Option<Duration>,
    ) -> Result<QueryTicket, ServerError> {
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        let sub = Submission {
            plan,
            seq: self.hub.submission_attempt(),
            enqueued_at: now,
            admitted_at: None,
            deadline: deadline.map(|d| now + d),
            reply: tx,
        };
        kfusion_trace::counter("kfusion_server_submissions_total", 1);
        match self.submissions.push_timeout(sub, self.config.submit_timeout) {
            Ok(()) => Ok(QueryTicket { rx }),
            Err(PushError::Full(_)) => {
                self.hub.shed_overload();
                Err(ServerError::Overloaded)
            }
            Err(PushError::Closed(_)) => {
                self.hub.shed_overload();
                Err(ServerError::ShuttingDown)
            }
        }
    }

    /// Convenience: submit and wait.
    pub fn query(&self, plan: PlanGraph) -> Result<QueryOutcome, ServerError> {
        self.submit(plan)?.wait()
    }

    /// Submit SQL text under the config's default deadline. The query
    /// compiles against the service's table registry
    /// ([`ServerError::NoCatalog`] if the service was started without one,
    /// [`ServerError::Compile`] with the positioned diagnostic if the text
    /// is bad), then rides the ordinary admission/batching/plan-cache path:
    /// repeated text compiles to the same plan shape and hits the cache,
    /// and a text query fuses into cross-query batches exactly like a
    /// hand-built plan.
    pub fn submit_sql(&self, sql: &str) -> Result<SqlTicket, ServerError> {
        self.submit_sql_with_deadline(sql, self.config.default_deadline)
    }

    /// [`ServiceClient::submit_sql`] with an explicit deadline.
    pub fn submit_sql_with_deadline(
        &self,
        sql: &str,
        deadline: Option<Duration>,
    ) -> Result<SqlTicket, ServerError> {
        let registry = self.registry.ok_or(ServerError::NoCatalog)?;
        let compiled = registry.compile(sql).map_err(ServerError::Compile)?;
        let ticket = self.submit_with_deadline(compiled.plan, deadline)?;
        Ok(SqlTicket { columns: compiled.columns, ticket })
    }

    /// Convenience: submit SQL text and wait; returns the output column
    /// names alongside the outcome.
    pub fn query_sql(&self, sql: &str) -> Result<(Vec<String>, QueryOutcome), ServerError> {
        self.submit_sql(sql)?.wait()
    }

    /// Point-in-time plan-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Dump the service's observability state: per-stage p50/p95/p99 in
    /// both clock domains, cache hit rate, queue depth, shed/deadline
    /// counts, and the flight-recorder + slow-query rings. Always
    /// available — the service-local histograms do not depend on the
    /// global recorder being enabled.
    pub fn server_stats(&self) -> ServerStats {
        self.hub.snapshot(self.cache.stats(), self.submissions.len())
    }
}

/// The service itself; see the module docs for the pipeline it runs.
pub struct QueryService;

impl QueryService {
    /// Run a service over `system` and the table registry `tables` (plan
    /// `Input { i }` leaves read `tables[i]`), call `f` with a client, then
    /// shut down gracefully: every query accepted before `f` returned is
    /// executed and answered before `serve` returns.
    pub fn serve<R>(
        system: &GpuSystem,
        tables: &[Relation],
        config: &ServerConfig,
        f: impl FnOnce(&ServiceClient<'_>) -> R,
    ) -> R {
        Self::serve_inner(system, tables, None, config, f)
    }

    /// Like [`QueryService::serve`], but over a named [`TableRegistry`]:
    /// the registry's slot array backs positional plans, and its catalog
    /// makes [`ServiceClient::submit_sql`] /
    /// [`ServiceClient::query_sql`] available for text queries.
    pub fn serve_catalog<R>(
        system: &GpuSystem,
        registry: &TableRegistry,
        config: &ServerConfig,
        f: impl FnOnce(&ServiceClient<'_>) -> R,
    ) -> R {
        Self::serve_inner(system, registry.tables(), Some(registry), config, f)
    }

    fn serve_inner<R>(
        system: &GpuSystem,
        tables: &[Relation],
        registry: Option<&TableRegistry>,
        config: &ServerConfig,
        f: impl FnOnce(&ServiceClient<'_>) -> R,
    ) -> R {
        let cache = PlanCache::new();
        let hub = StatsHub::new(
            config.flight_recorder_depth,
            config.slow_log_depth,
            config.slow_query_threshold,
        );
        let submissions: BoundedQueue<Submission> = BoundedQueue::new(config.queue_depth);
        let dispatch: BoundedQueue<GroupJob> = BoundedQueue::new(config.queue_depth);
        let (subs, disp, cache_ref, hub_ref) = (&submissions, &dispatch, &cache, &hub);
        std::thread::scope(|s| {
            s.spawn(move || admission_loop(subs, disp, config));
            for _ in 0..config.workers.max(1) {
                s.spawn(move || worker_loop(system, tables, config, cache_ref, hub_ref, disp));
            }
            let client = ServiceClient {
                submissions: subs,
                cache: cache_ref,
                config,
                hub: hub_ref,
                registry,
            };
            let out = f(&client);
            // Drain, don't drop: admission flushes what is queued into
            // final batches and then closes the dispatch queue itself.
            subs.close();
            out
        })
    }
}

/// The admission thread: open a window on the first arrival, fill it until
/// the count or time bound, group by shared inputs, dispatch.
fn admission_loop(
    subs: &BoundedQueue<Submission>,
    dispatch: &BoundedQueue<GroupJob>,
    config: &ServerConfig,
) {
    loop {
        let mut first = match subs.pop_timeout(POLL) {
            Pop::Item(x) => x,
            Pop::TimedOut => continue,
            // Closed is only returned once fully drained.
            Pop::Closed => break,
        };
        let window_open = Instant::now();
        first.admitted_at = Some(window_open);
        let closes_at = window_open + config.window;
        let mut batch = vec![first];
        while batch.len() < config.max_batch.max(1) {
            let now = Instant::now();
            if now >= closes_at {
                break;
            }
            match subs.pop_timeout(closes_at - now) {
                Pop::Item(mut x) => {
                    x.admitted_at = Some(Instant::now());
                    batch.push(x);
                }
                Pop::TimedOut | Pop::Closed => break,
            }
        }
        kfusion_trace::counter("kfusion_server_windows_total", 1);
        kfusion_trace::record_host_span("server", "batch_form", window_open);
        for members in group_by_shared_inputs(batch) {
            push_until_placed(dispatch, GroupJob { members });
        }
    }
    dispatch.close();
}

/// Block until the dispatch queue takes `job` — this is the backpressure
/// path: admission stalls, the submission queue fills, submitters see
/// `Overloaded`. Only admission closes the dispatch queue, so `Closed`
/// cannot happen while it still holds a job.
fn push_until_placed(dispatch: &BoundedQueue<GroupJob>, mut job: GroupJob) {
    loop {
        match dispatch.push_timeout(job, POLL) {
            Ok(()) => return,
            Err(PushError::Full(j)) => job = j,
            Err(PushError::Closed(_)) => unreachable!("dispatch closes only after admission exits"),
        }
    }
}

/// The executor-input indices a plan scans, sorted and deduplicated.
fn input_set(plan: &PlanGraph) -> Vec<usize> {
    let mut v: Vec<usize> = plan
        .nodes
        .iter()
        .filter_map(|n| match n.kind {
            OpKind::Input { input } => Some(input),
            _ => None,
        })
        .collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// Partition a window into groups of submissions with overlapping scan-input
/// sets (transitively: if A shares with B and B with C, all three group),
/// preserving submission order within each group.
fn group_by_shared_inputs(batch: Vec<Submission>) -> Vec<Vec<Submission>> {
    let n = batch.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    let mut first_scanner: HashMap<usize, usize> = HashMap::new();
    for (i, sub) in batch.iter().enumerate() {
        for input in input_set(&sub.plan) {
            match first_scanner.get(&input) {
                Some(&j) => {
                    let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                    parent[a] = b;
                }
                None => {
                    first_scanner.insert(input, i);
                }
            }
        }
    }
    let mut groups: Vec<Vec<Submission>> = Vec::new();
    let mut slot_of_root: HashMap<usize, usize> = HashMap::new();
    for (i, sub) in batch.into_iter().enumerate() {
        let root = find(&mut parent, i);
        let slot = *slot_of_root.entry(root).or_insert_with(|| {
            groups.push(Vec::new());
            groups.len() - 1
        });
        groups[slot].push(sub);
    }
    groups
}

/// A worker thread: pop groups, execute, route results.
fn worker_loop(
    system: &GpuSystem,
    tables: &[Relation],
    config: &ServerConfig,
    cache: &PlanCache,
    hub: &StatsHub,
    dispatch: &BoundedQueue<GroupJob>,
) {
    loop {
        match dispatch.pop_timeout(POLL) {
            Pop::Item(job) => run_group(system, tables, config, cache, hub, job.members),
            Pop::TimedOut => continue,
            Pop::Closed => break,
        }
    }
}

/// A dispatch's per-query simulated-stage attribution: each member's share
/// of the report's H2D / compute / D2H engine seconds and makespan (in
/// [`SIM_STAGES`] order).
fn sim_shares(report: &Report, batch_size: usize) -> [f64; SIM_STAGES.len()] {
    let n = batch_size.max(1) as f64;
    [
        report.engine_time(Engine::CopyH2D) / n,
        report.engine_time(Engine::Compute) / n,
        report.engine_time(Engine::CopyD2H) / n,
        report.total() / n,
    ]
}

/// Close one member's lifecycle record: compute its host stage durations
/// (queue wait → admission, batch form → pickup, compile, execute, reply,
/// total), hand the record to the hub (histograms + flight recorder), and
/// return it for the [`QueryOutcome`].
#[allow(clippy::too_many_arguments)]
fn close_record(
    hub: &StatsHub,
    m: &Submission,
    picked_up: Instant,
    compile_s: f64,
    exec_end: Instant,
    exec_s: f64,
    cache_hit: bool,
    batch_size: usize,
    sim: [f64; SIM_STAGES.len()],
    outcome: RecordOutcome,
) -> QueryRecord {
    let done = Instant::now();
    let admitted = m.admitted_at.unwrap_or(picked_up);
    // Host stages in `stats::HOST_STAGES` order.
    let host = [
        admitted.saturating_duration_since(m.enqueued_at).as_secs_f64(),
        picked_up.saturating_duration_since(admitted).as_secs_f64(),
        compile_s,
        exec_s,
        done.saturating_duration_since(exec_end).as_secs_f64(),
        done.saturating_duration_since(m.enqueued_at).as_secs_f64(),
    ];
    let record = QueryRecord { seq: m.seq, batch_size, cache_hit, outcome, host, sim };
    hub.close_record(record.clone());
    record
}

/// Execute one dispatched group and answer every member exactly once —
/// closing every member's [`QueryRecord`] exactly once on every path
/// (success, execution failure, deadline shed); the `unobserved-stage`
/// lint cross-checks that invariant from the emitted counters.
fn run_group(
    system: &GpuSystem,
    tables: &[Relation],
    config: &ServerConfig,
    cache: &PlanCache,
    hub: &StatsHub,
    members: Vec<Submission>,
) {
    let picked_up = Instant::now();
    let mut live = Vec::with_capacity(members.len());
    for m in members {
        // Recorded retroactively on a dedicated lane: the wait reaches back
        // across spans this worker has already closed on its own lane.
        kfusion_trace::record_host_span_on("server", QUEUE_WAIT_LANE, "queue_wait", m.enqueued_at);
        if m.deadline.is_some_and(|d| picked_up > d) {
            kfusion_trace::counter("kfusion_server_deadline_rejections_total", 1);
            close_record(
                hub,
                &m,
                picked_up,
                0.0,
                picked_up,
                0.0,
                false,
                1,
                [0.0; SIM_STAGES.len()],
                RecordOutcome::DeadlineExceeded,
            );
            let _ = m.reply.send(Err(ServerError::DeadlineExceeded));
        } else {
            live.push(m);
        }
    }
    if live.is_empty() {
        return;
    }
    let _span = kfusion_trace::host_span("server", "execute");
    kfusion_trace::counter("kfusion_server_queries_executed_total", live.len() as u64);
    if live.len() == 1 {
        let m = live.pop().expect("one member");
        let compile_began = Instant::now();
        let prepared = cache.prepare_observed(&m.plan, &config.exec);
        let compile_s = compile_began.elapsed().as_secs_f64();
        let (fusion, hit) = match prepared {
            Ok(p) => p,
            Err(e) => {
                let now = Instant::now();
                close_record(
                    hub,
                    &m,
                    picked_up,
                    compile_s,
                    now,
                    0.0,
                    false,
                    1,
                    [0.0; SIM_STAGES.len()],
                    RecordOutcome::Failed,
                );
                let _ = m.reply.send(Err(e));
                return;
            }
        };
        let exec_began = Instant::now();
        let res = execute_prepared(system, &m.plan, tables, &config.exec, &fusion)
            .map_err(ServerError::from);
        let exec_end = Instant::now();
        let exec_s = exec_end.saturating_duration_since(exec_began).as_secs_f64();
        match res {
            Ok(r) => {
                let sim = sim_shares(&r.report, 1);
                let record = close_record(
                    hub,
                    &m,
                    picked_up,
                    compile_s,
                    exec_end,
                    exec_s,
                    hit,
                    1,
                    sim,
                    RecordOutcome::Completed,
                );
                let _ = m.reply.send(Ok(QueryOutcome {
                    output: r.output,
                    batch_size: 1,
                    sim_batch_total: r.report.total(),
                    record,
                }));
            }
            Err(e) => {
                close_record(
                    hub,
                    &m,
                    picked_up,
                    compile_s,
                    exec_end,
                    exec_s,
                    hit,
                    1,
                    [0.0; SIM_STAGES.len()],
                    RecordOutcome::Failed,
                );
                let _ = m.reply.send(Err(e));
            }
        }
        return;
    }
    kfusion_trace::counter("kfusion_server_batched_queries_total", live.len() as u64);
    // Canonicalize member order by structural fingerprint: a recurring batch
    // *composition* then always merges into the same graph regardless of
    // arrival order, so it re-keys in the plan cache. Results still route by
    // member (outputs come back in `live` order), so reordering is safe.
    live.sort_by_key(|m| kfusion_core::fingerprint_plan(&m.plan).0);
    let plans: Vec<PlanGraph> = live.iter().map(|m| m.plan.clone()).collect();
    let merged = merge_plans(&plans);
    let n = live.len();
    let compile_began = Instant::now();
    let prepared = cache.prepare_multi_observed(&merged, &config.exec);
    let compile_s = compile_began.elapsed().as_secs_f64();
    let res = prepared.and_then(|(fusion, hit)| {
        let exec_began = Instant::now();
        let r = execute_multi_prepared(system, &merged, tables, &config.exec, &fusion)
            .map_err(ServerError::from);
        let exec_end = Instant::now();
        let exec_s = exec_end.saturating_duration_since(exec_began).as_secs_f64();
        r.map(|multi| (multi, hit, exec_end, exec_s))
    });
    match res {
        Ok((multi, hit, exec_end, exec_s)) => {
            let total = multi.report.total();
            let sim = sim_shares(&multi.report, n);
            for (m, output) in live.into_iter().zip(multi.outputs) {
                let record = close_record(
                    hub,
                    &m,
                    picked_up,
                    compile_s,
                    exec_end,
                    exec_s,
                    hit,
                    n,
                    sim,
                    RecordOutcome::Completed,
                );
                let _ = m.reply.send(Ok(QueryOutcome {
                    output,
                    batch_size: n,
                    sim_batch_total: total,
                    record,
                }));
            }
        }
        Err(e) => {
            let now = Instant::now();
            for m in live {
                close_record(
                    hub,
                    &m,
                    picked_up,
                    compile_s,
                    now,
                    0.0,
                    false,
                    n,
                    [0.0; SIM_STAGES.len()],
                    RecordOutcome::Failed,
                );
                let _ = m.reply.send(Err(e.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kfusion_core::exec::{execute, Strategy};
    use kfusion_relalg::{gen, predicates};

    fn sys() -> GpuSystem {
        GpuSystem::c2070()
    }

    fn query(input: usize, t: u64) -> PlanGraph {
        let mut g = PlanGraph::new();
        let i = g.input(input);
        g.add(OpKind::Select { pred: predicates::key_lt(t) }, vec![i]);
        g
    }

    #[test]
    fn single_query_round_trips_byte_identical() {
        let s = sys();
        let tables = [gen::random_keys(100_000, 3)];
        let cfg = ServerConfig::new(ExecConfig::new(Strategy::Fusion, &s));
        let outcome = QueryService::serve(&s, &tables, &cfg, |c| c.query(query(0, 1 << 30)))
            .expect("query succeeds");
        let alone = execute(&s, &query(0, 1 << 30), &tables, &cfg.exec).unwrap();
        assert_eq!(outcome.output, alone.output);
        assert!(outcome.sim_batch_total > 0.0);
    }

    #[test]
    fn same_window_shared_input_queries_batch_together() {
        let s = sys();
        let tables = [gen::random_keys(50_000, 5)];
        let mut cfg = ServerConfig::new(ExecConfig::new(Strategy::Fusion, &s));
        // A generous window and one worker so both submissions land in the
        // same admission window deterministically.
        cfg.window = Duration::from_millis(200);
        cfg.workers = 1;
        let (a, b) = QueryService::serve(&s, &tables, &cfg, |c| {
            let ta = c.submit(query(0, 1 << 30)).unwrap();
            let tb = c.submit(query(0, 1 << 29)).unwrap();
            (ta.wait().unwrap(), tb.wait().unwrap())
        });
        assert_eq!(a.batch_size, 2, "both queries must ride one dispatch");
        assert_eq!(b.batch_size, 2);
        assert_eq!(a.sim_batch_total, b.sim_batch_total);
        for (q, out) in [(query(0, 1 << 30), &a), (query(0, 1 << 29), &b)] {
            assert_eq!(out.output, execute(&s, &q, &tables, &cfg.exec).unwrap().output);
        }
    }

    #[test]
    fn disjoint_inputs_do_not_merge() {
        let s = sys();
        let tables = [gen::random_keys(20_000, 7), gen::random_keys(20_000, 8)];
        let mut cfg = ServerConfig::new(ExecConfig::new(Strategy::Fusion, &s));
        cfg.window = Duration::from_millis(200);
        cfg.workers = 1;
        let (a, b) = QueryService::serve(&s, &tables, &cfg, |c| {
            let ta = c.submit(query(0, 1 << 30)).unwrap();
            let tb = c.submit(query(1, 1 << 30)).unwrap();
            (ta.wait().unwrap(), tb.wait().unwrap())
        });
        assert_eq!((a.batch_size, b.batch_size), (1, 1), "no shared scans, no merge");
    }

    #[test]
    fn expired_deadline_rejects_instead_of_executing() {
        let s = sys();
        let tables = [gen::random_keys(10_000, 9)];
        let mut cfg = ServerConfig::new(ExecConfig::new(Strategy::Fusion, &s));
        // One-query windows held open long past the deadline.
        cfg.window = Duration::from_millis(100);
        cfg.max_batch = 4;
        let res = QueryService::serve(&s, &tables, &cfg, |c| {
            c.submit_with_deadline(query(0, 100), Some(Duration::from_millis(1))).unwrap().wait()
        });
        assert!(matches!(res, Err(ServerError::DeadlineExceeded)), "{res:?}");
    }

    #[test]
    fn shutdown_drains_accepted_queries() {
        let s = sys();
        let tables = [gen::random_keys(50_000, 11)];
        let mut cfg = ServerConfig::new(ExecConfig::new(Strategy::Fusion, &s));
        cfg.workers = 1;
        // Submit and return the tickets unwaited: serve must still answer
        // them all before returning.
        let tickets = QueryService::serve(&s, &tables, &cfg, |c| {
            (0..6).map(|i| c.submit(query(0, 1 << (20 + i))).unwrap()).collect::<Vec<_>>()
        });
        for t in tickets {
            t.wait().expect("drained query still answered");
        }
    }

    #[test]
    fn repeated_shapes_hit_the_cache() {
        let s = sys();
        let tables = [gen::random_keys(10_000, 13)];
        let cfg = ServerConfig::new(ExecConfig::new(Strategy::Fusion, &s));
        let stats = QueryService::serve(&s, &tables, &cfg, |c| {
            for _ in 0..5 {
                c.query(query(0, 42)).unwrap();
            }
            c.cache_stats()
        });
        assert!(stats.hits >= 3, "repeats must hit: {stats:?}");
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn wait_timeout_is_non_consuming() {
        let s = sys();
        let tables = [gen::random_keys(50_000, 15)];
        let mut cfg = ServerConfig::new(ExecConfig::new(Strategy::Fusion, &s));
        // A long window delays the reply well past the first poll.
        cfg.window = Duration::from_millis(300);
        cfg.max_batch = 8;
        let outcome = QueryService::serve(&s, &tables, &cfg, |c| {
            let ticket = c.submit(query(0, 1 << 30)).unwrap();
            let early = ticket.wait_timeout(Duration::from_millis(1));
            assert!(matches!(early, Err(ServerError::WaitTimedOut)), "{early:?}");
            // The ticket survives the timeout; the result still arrives.
            ticket.wait()
        })
        .expect("query succeeds after timed-out poll");
        assert_eq!(outcome.batch_size, 1);
    }

    #[test]
    fn outcomes_carry_closed_stage_records() {
        let s = sys();
        let tables = [gen::random_keys(50_000, 17)];
        let mut cfg = ServerConfig::new(ExecConfig::new(Strategy::Fusion, &s));
        cfg.window = Duration::from_millis(200);
        cfg.workers = 1;
        let (a, b) = QueryService::serve(&s, &tables, &cfg, |c| {
            let ta = c.submit(query(0, 1 << 30)).unwrap();
            let tb = c.submit(query(0, 1 << 29)).unwrap();
            (ta.wait().unwrap(), tb.wait().unwrap())
        });
        for out in [&a, &b] {
            let r = &out.record;
            assert_eq!(r.outcome, RecordOutcome::Completed);
            assert_eq!(r.batch_size, 2);
            // Host total covers every other host stage.
            let total = r.host_stage(crate::stats::HostStage::Total);
            for stage in crate::stats::HOST_STAGES {
                assert!(r.host_stage(stage) >= 0.0);
                if stage != crate::stats::HostStage::Total {
                    assert!(r.host_stage(stage) <= total + 1e-9, "{stage:?}");
                }
            }
            // The sim share is the batch total split across members.
            let share = r.sim_stage(crate::stats::SimStage::Total);
            assert!((share - out.sim_batch_total / 2.0).abs() < 1e-12);
        }
        assert_ne!(a.record.seq, b.record.seq);
    }

    #[test]
    fn server_stats_snapshot_counts_and_percentiles() {
        let s = sys();
        let tables = [gen::random_keys(20_000, 19)];
        let mut cfg = ServerConfig::new(ExecConfig::new(Strategy::Fusion, &s));
        cfg.slow_query_threshold = Some(Duration::ZERO); // everything is "slow"
        let stats = QueryService::serve(&s, &tables, &cfg, |c| {
            // One shape five times: the repeats hit the plan cache.
            for _ in 0..5 {
                c.query(query(0, 1 << 12)).unwrap();
            }
            c.server_stats()
        });
        assert_eq!(stats.submitted, 5);
        assert_eq!(stats.completed, 5);
        assert_eq!((stats.shed_overload, stats.shed_deadline, stats.failed), (0, 0, 0));
        assert_eq!(stats.recent.len(), 5);
        assert_eq!(stats.slow.len(), 5, "zero threshold logs every query");
        let summaries: Vec<_> =
            stats.host.iter().map(|(_, s)| *s).chain(stats.sim.iter().map(|(_, s)| *s)).collect();
        for sum in summaries {
            assert_eq!(sum.count, 5);
            assert!(sum.p50 <= sum.p95 && sum.p95 <= sum.p99);
        }
        assert!(stats.cache_hit_rate > 0.5, "{}", stats.cache_hit_rate);
    }

    #[test]
    fn grouping_is_transitive_over_shared_inputs() {
        // A scans {0}, B scans {0,1}, C scans {1}: one group of three.
        let subs: Vec<Submission> = [vec![0], vec![0, 1], vec![1]]
            .into_iter()
            .map(|ins| {
                let mut g = PlanGraph::new();
                let nodes: Vec<_> = ins.into_iter().map(|i| g.input(i)).collect();
                let mut acc = nodes[0];
                for &n in &nodes[1..] {
                    acc = g.add(OpKind::ColumnJoin, vec![acc, n]);
                }
                let _ = acc;
                let (tx, _rx) = mpsc::channel();
                Submission {
                    plan: g,
                    seq: 0,
                    enqueued_at: Instant::now(),
                    admitted_at: None,
                    deadline: None,
                    reply: tx,
                }
            })
            .collect();
        let groups = group_by_shared_inputs(subs);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 3);
    }
}
