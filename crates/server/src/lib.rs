//! `kfusion-server` — a concurrent query service over the fusion engine.
//!
//! The paper's §III-A observes that "there are opportunities to apply
//! kernel fusion across queries since RA operators from different queries
//! can be fused" — but the executor crates below this one are
//! one-query-at-a-time libraries. This crate adds the serving layer a data
//! warehouse actually runs: many clients submit plans concurrently, and the
//! service turns that concurrency into the paper's cross-query fusion
//! opportunities instead of serializing it away. Three pieces compose:
//!
//! * **Plan cache** ([`cache::PlanCache`]) — the compile side of an
//!   execution (verify → fuse → optimize) depends only on the plan's
//!   *structure* plus the register budget and optimization level, so it is
//!   keyed by [`kfusion_core::PlanKey`] (a 128-bit structural fingerprint +
//!   budget + level) and computed once per shape. Concurrent submissions of
//!   the same shape share one `Arc<FusionPlan>`; hits and misses surface as
//!   `kfusion_server_plan_cache_*` counters.
//! * **Admission window** ([`service::QueryService`]'s admission thread) —
//!   submissions are grouped for a bounded count/time window; queries that
//!   scan overlapping inputs merge through
//!   [`kfusion_core::multiquery::merge_plans`] and execute as one batch
//!   (shared scans, cross-query fused kernels), with each query's result
//!   routed back over its own channel.
//! * **Worker pool** — a `std::thread::scope`-based pool with bounded
//!   queues for backpressure ([`queue::BoundedQueue`]), per-query deadlines
//!   that reject rather than hang, and a graceful shutdown that drains
//!   in-flight batches.
//!
//! Everything the service does is traced on its own `server` track —
//! queue-wait, batch-form, and execute spans — so `kfusion-trace-check
//! --require-tracks server` can validate a load run end to end.
//!
//! The service changes *when* and *with whom* a plan executes, never *what*
//! it computes: the functional phase ignores the fusion plan entirely, so a
//! batched or cache-hit execution is byte-identical to a standalone
//! [`kfusion_core::exec::execute`] (the equivalence tests enforce this).

pub mod cache;
pub mod queue;
pub mod service;
pub mod sql;
pub mod stats;

pub use cache::{CacheStats, PlanCache};
pub use queue::BoundedQueue;
pub use service::{QueryOutcome, QueryService, QueryTicket, ServerConfig, ServiceClient};
pub use sql::{CompiledSql, RegistryError, SqlTicket, TableRegistry};
pub use stats::{
    FlightRecorder, HostStage, QueryRecord, RecordOutcome, ServerStats, SimStage, StageSummary,
    StatsHub, HOST_STAGES, SIM_STAGES,
};

use kfusion_core::CoreError;

/// Service-level errors delivered to submitters.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerError {
    /// The engine rejected or failed the query (verifier, executor, or
    /// simulator error, stringified across the channel).
    Exec(String),
    /// The query's deadline passed while it was still queued; it was
    /// rejected without executing.
    DeadlineExceeded,
    /// The submission queue stayed full past the configured admission
    /// timeout — backpressure instead of unbounded buffering.
    Overloaded,
    /// The service is draining and no longer accepts submissions.
    ShuttingDown,
    /// The internal reply channel dropped without a result (a worker
    /// panicked); the query's fate is unknown.
    Disconnected,
    /// A [`QueryTicket::wait_timeout`] poll elapsed before the result
    /// arrived; the ticket is still live and can be waited on again.
    WaitTimedOut,
    /// SQL text failed to compile; carries the front end's positioned
    /// parse or lowering diagnostic.
    Compile(kfusion_frontend::CompileError),
    /// A text query was submitted to a service started without a table
    /// registry ([`QueryService::serve`] rather than
    /// [`QueryService::serve_catalog`]), so there are no named tables to
    /// compile against.
    NoCatalog,
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Exec(e) => write!(f, "query execution failed: {e}"),
            ServerError::DeadlineExceeded => write!(f, "deadline exceeded before execution"),
            ServerError::Overloaded => write!(f, "submission queue full (service overloaded)"),
            ServerError::ShuttingDown => write!(f, "service is shutting down"),
            ServerError::Disconnected => write!(f, "reply channel disconnected"),
            ServerError::WaitTimedOut => write!(f, "wait timed out (ticket still pending)"),
            ServerError::Compile(e) => write!(f, "SQL did not compile: {e}"),
            ServerError::NoCatalog => {
                write!(f, "service has no table registry (text queries need serve_catalog)")
            }
        }
    }
}

impl std::error::Error for ServerError {}

impl From<CoreError> for ServerError {
    fn from(e: CoreError) -> Self {
        ServerError::Exec(e.to_string())
    }
}
