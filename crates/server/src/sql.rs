//! Text-query serving: a named-table registry that binds SQL table names
//! to the service's positional input slots.
//!
//! The executor below the service is purely positional — a plan's
//! `Input { i }` leaves read `tables[i]` — while the SQL front end compiles
//! against *named* tables and always emits `Input { 0 }` for its single
//! source table. [`TableRegistry`] bridges the two: it owns the slot array
//! handed to [`crate::QueryService::serve_catalog`], the
//! [`kfusion_frontend::Catalog`] the front end compiles against, and the
//! name → slot map used to rewrite each compiled plan's input leaves to the
//! right slot before submission.
//!
//! Because the rewrite happens *before* the plan enters the service, a text
//! query is indistinguishable from a hand-built [`PlanGraph`] downstream:
//! it shares the same admission window, groups into the same cross-query
//! fused batches, and hits the same plan cache (identical SQL text compiles
//! to a structurally identical plan, so repeated text queries are cache
//! hits — the service tests pin this).

use crate::ServerError;
use kfusion_core::graph::{OpKind, PlanGraph};
use kfusion_frontend::{Catalog, ColType, CompileError, TableSchema};
use kfusion_relalg::{Column, Relation};
use std::collections::HashMap;

/// Why a relation could not be registered under a schema.
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryError {
    /// The schema and the relation disagree on the number of payload
    /// columns.
    ArityMismatch {
        /// Table being registered.
        table: String,
        /// Columns the schema declares.
        schema_cols: usize,
        /// Columns the relation actually has.
        relation_cols: usize,
    },
    /// A column's declared type does not match the relation's storage.
    TypeMismatch {
        /// Table being registered.
        table: String,
        /// Offending column name.
        column: String,
        /// Type the schema declares for it.
        declared: ColType,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::ArityMismatch { table, schema_cols, relation_cols } => write!(
                f,
                "table {table:?}: schema declares {schema_cols} columns but relation has {relation_cols}"
            ),
            RegistryError::TypeMismatch { table, column, declared } => {
                write!(f, "table {table:?}: column {column:?} is declared {declared:?} but the relation stores the other type")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// A compiled text query, ready to submit: the plan's input leaves already
/// point at the registry slot of its source table.
#[derive(Debug, Clone)]
pub struct CompiledSql {
    /// The rewritten plan.
    pub plan: PlanGraph,
    /// Output column names, in relation column order.
    pub columns: Vec<String>,
    /// The registry slot the plan reads.
    pub slot: usize,
}

/// Named tables for a service instance: the positional slot array, the SQL
/// catalog over it, and the name → slot binding.
#[derive(Debug, Clone, Default)]
pub struct TableRegistry {
    tables: Vec<Relation>,
    catalog: Catalog,
    slots: HashMap<String, usize>,
}

impl TableRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an *unnamed* relation, reserving a slot for hand-built
    /// plans that address inputs positionally. Returns the slot index.
    pub fn add_relation(&mut self, rel: Relation) -> usize {
        self.tables.push(rel);
        self.tables.len() - 1
    }

    /// Register a named table: validates that `schema` matches `rel`
    /// column-for-column, then makes the name addressable from SQL and the
    /// relation addressable positionally. Returns the slot index.
    pub fn add_table(
        &mut self,
        name: impl Into<String>,
        schema: TableSchema,
        rel: Relation,
    ) -> Result<usize, RegistryError> {
        let name = name.into();
        if schema.len() != rel.n_cols() {
            return Err(RegistryError::ArityMismatch {
                table: name,
                schema_cols: schema.len(),
                relation_cols: rel.n_cols(),
            });
        }
        for (i, col_name) in schema.names().enumerate() {
            let ok = matches!(
                (schema.col_type(i), &rel.cols[i]),
                (ColType::I64, Column::I64(_)) | (ColType::F64, Column::F64(_))
            );
            if !ok {
                return Err(RegistryError::TypeMismatch {
                    table: name,
                    column: col_name.to_string(),
                    declared: schema.col_type(i),
                });
            }
        }
        let slot = self.add_relation(rel);
        self.slots.insert(name.to_ascii_lowercase(), slot);
        self.catalog.add_table(name, schema);
        Ok(slot)
    }

    /// The positional slot array, in registration order — what
    /// [`crate::QueryService::serve_catalog`] hands the executor.
    pub fn tables(&self) -> &[Relation] {
        &self.tables
    }

    /// The SQL catalog over the named tables.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The slot a named table occupies (case-insensitive).
    pub fn slot(&self, name: &str) -> Option<usize> {
        self.slots.get(&name.to_ascii_lowercase()).copied()
    }

    /// Compile SQL text against this registry: parse, lower against the
    /// catalog, then rewrite the plan's `Input` leaves from the front end's
    /// slot 0 to the named table's registry slot.
    pub fn compile(&self, sql: &str) -> Result<CompiledSql, CompileError> {
        let query = kfusion_frontend::parse(sql)?;
        let compiled =
            kfusion_frontend::lower::lower(&query, &self.catalog).map_err(CompileError::Lower)?;
        let slot = self
            .slot(&query.table)
            .expect("lowering succeeded, so the table is registered with a slot");
        let mut plan = compiled.plan;
        for node in &mut plan.nodes {
            if let OpKind::Input { input } = &mut node.kind {
                *input = slot;
            }
        }
        Ok(CompiledSql { plan, columns: compiled.output_names, slot })
    }
}

/// The receiving end of one text-query submission: a [`crate::QueryTicket`]
/// plus the compiled output column names, so the caller can interpret the
/// positional [`Relation`] it gets back.
#[derive(Debug)]
pub struct SqlTicket {
    /// Output column names, in relation column order.
    pub columns: Vec<String>,
    /// The underlying positional ticket.
    pub ticket: crate::QueryTicket,
}

impl SqlTicket {
    /// Block until the service delivers the outcome; returns the column
    /// names alongside it.
    pub fn wait(self) -> Result<(Vec<String>, crate::QueryOutcome), ServerError> {
        let outcome = self.ticket.wait()?;
        Ok((self.columns, outcome))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kfusion_frontend::{ColType, TableSchema};

    fn rel() -> Relation {
        Relation::new(
            vec![0, 1, 2],
            vec![Column::I64(vec![1, 2, 3]), Column::F64(vec![0.5, 1.5, 2.5])],
        )
        .unwrap()
    }

    fn schema() -> TableSchema {
        TableSchema::new([("a", ColType::I64), ("b", ColType::F64)])
    }

    #[test]
    fn add_table_validates_shape() {
        let mut reg = TableRegistry::new();
        let err = reg.add_table("t", TableSchema::new([("a", ColType::I64)]), rel()).unwrap_err();
        assert!(matches!(
            err,
            RegistryError::ArityMismatch { schema_cols: 1, relation_cols: 2, .. }
        ));

        let err = reg
            .add_table("t", TableSchema::new([("a", ColType::F64), ("b", ColType::F64)]), rel())
            .unwrap_err();
        assert!(matches!(err, RegistryError::TypeMismatch { ref column, .. } if column == "a"));

        assert_eq!(reg.add_table("t", schema(), rel()).unwrap(), 0);
        assert_eq!(reg.slot("T"), Some(0), "slot lookup is case-insensitive");
    }

    #[test]
    fn compile_rewrites_input_slots() {
        let mut reg = TableRegistry::new();
        // Occupy slots 0 and 1 so the named table lands on slot 2.
        reg.add_relation(rel());
        reg.add_relation(rel());
        let slot = reg.add_table("t", schema(), rel()).unwrap();
        assert_eq!(slot, 2);

        let compiled = reg.compile("SELECT a, b FROM t WHERE a < 3").unwrap();
        assert_eq!(compiled.slot, 2);
        assert_eq!(compiled.columns, vec!["a", "b"]);
        let inputs: Vec<usize> = compiled
            .plan
            .nodes
            .iter()
            .filter_map(|n| match n.kind {
                OpKind::Input { input } => Some(input),
                _ => None,
            })
            .collect();
        assert!(!inputs.is_empty());
        assert!(inputs.iter().all(|&i| i == 2), "all input leaves rewritten, got {inputs:?}");
    }

    #[test]
    fn compile_surfaces_positioned_diagnostics() {
        let mut reg = TableRegistry::new();
        reg.add_table("t", schema(), rel()).unwrap();
        let err = reg.compile("SELECT a FROM t WHERE a < 1.2.3").unwrap_err();
        assert!(err.to_string().contains("byte"), "positioned: {err}");
        let err = reg.compile("SELECT nope FROM t").unwrap_err();
        assert!(matches!(err, CompileError::Lower(_)));
    }
}
