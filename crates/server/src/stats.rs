//! Per-query lifecycle attribution and the service flight recorder
//! (DESIGN.md §15).
//!
//! Every query the service answers carries a [`QueryRecord`] timing each
//! pipeline stage on the host clock (queue wait → batch formation →
//! compile → execute → reply) and attributing its share of the dispatch's
//! simulated time (H2D / compute / D2H engine seconds ÷ batch size). The
//! worker closes the record exactly once, just before replying; closing it
//!
//! * feeds the service-local stage histograms (always on — the service
//!   owns its own [`Hist`]s so `server_stats()` works with the global
//!   recorder disabled),
//! * mirrors every stage into the process-global recorder via
//!   [`kfusion_trace::observe`] (which self-gates on the recorder's
//!   enabled flag, keeping the disabled path at one relaxed atomic load),
//! * pushes the record into the bounded lock-striped flight-recorder ring
//!   (last N records, striped by sequence number so concurrent workers
//!   rarely contend), and into the slow-query ring when the end-to-end
//!   host latency crosses the configured threshold,
//! * bumps `kfusion_server_query_records_closed_total` — the counter the
//!   `unobserved-stage` lint balances against
//!   `kfusion_server_queries_executed_total`.
//!
//! [`ServerStats`] is the on-demand snapshot: per-stage p50/p95/p99 in
//! both clock domains, cache hit rate, queue depth, shed/deadline/failure
//! counts, and the recent + slow record rings.

use crate::cache::CacheStats;
use kfusion_model::sync::atomic::{AtomicU64, Ordering};
use kfusion_model::sync::Mutex;
use kfusion_trace::hist::Hist;
use kfusion_trace::metrics::metric_key;
use std::collections::VecDeque;
use std::time::Duration;

/// Host-clock pipeline stages of one query, in lifecycle order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostStage {
    /// Submission push → admission pop.
    QueueWait,
    /// Admission pop → worker pickup (the window the query waited to fill,
    /// plus dispatch-queue time).
    BatchForm,
    /// Plan-cache prepare, shared across the group (near zero on a hit).
    Compile,
    /// The execute call (functional phase + DES timing phase).
    Execute,
    /// Execute end → result handed to the reply channel.
    Reply,
    /// Submission push → reply handoff (the submitter-visible latency).
    Total,
}

/// Every host stage, in lifecycle order.
pub const HOST_STAGES: [HostStage; 6] = [
    HostStage::QueueWait,
    HostStage::BatchForm,
    HostStage::Compile,
    HostStage::Execute,
    HostStage::Reply,
    HostStage::Total,
];

impl HostStage {
    /// The `stage` label value of this stage's histogram series.
    pub fn as_str(self) -> &'static str {
        match self {
            HostStage::QueueWait => "queue_wait",
            HostStage::BatchForm => "batch_form",
            HostStage::Compile => "compile",
            HostStage::Execute => "execute",
            HostStage::Reply => "reply",
            HostStage::Total => "total",
        }
    }
}

/// Simulated-clock stages: this query's share of the dispatch's engine
/// time (engine seconds ÷ batch size), plus the share of the makespan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimStage {
    /// Host→device DMA engine seconds.
    H2d,
    /// Kernel execution engine seconds.
    Compute,
    /// Device→host DMA engine seconds.
    D2h,
    /// The dispatch's simulated makespan share.
    Total,
}

/// Every sim stage.
pub const SIM_STAGES: [SimStage; 4] =
    [SimStage::H2d, SimStage::Compute, SimStage::D2h, SimStage::Total];

impl SimStage {
    /// The `stage` label value of this stage's histogram series.
    pub fn as_str(self) -> &'static str {
        match self {
            SimStage::H2d => "h2d",
            SimStage::Compute => "compute",
            SimStage::D2h => "d2h",
            SimStage::Total => "total",
        }
    }
}

/// How a query's lifecycle ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordOutcome {
    /// Executed and answered.
    Completed,
    /// Rejected at pickup: its deadline had already passed.
    DeadlineExceeded,
    /// Execution failed; the error went back on the reply channel.
    Failed,
}

/// The closed lifecycle record of one query — surfaced on
/// [`crate::QueryOutcome`] and retained in the flight recorder.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRecord {
    /// Service-wide submission sequence number (assignment order).
    pub seq: u64,
    /// Queries that co-executed in this dispatch (1 = ran alone).
    pub batch_size: usize,
    /// Whether the compile side came from the plan cache.
    pub cache_hit: bool,
    /// How the lifecycle ended.
    pub outcome: RecordOutcome,
    /// Host seconds per [`HostStage`], indexed by [`HOST_STAGES`] order.
    pub host: [f64; HOST_STAGES.len()],
    /// Simulated seconds per [`SimStage`], indexed by [`SIM_STAGES`] order.
    pub sim: [f64; SIM_STAGES.len()],
}

impl QueryRecord {
    /// Host seconds spent in `stage`.
    pub fn host_stage(&self, stage: HostStage) -> f64 {
        self.host[HOST_STAGES.iter().position(|&s| s == stage).expect("stage in table")]
    }

    /// Simulated seconds attributed to `stage`.
    pub fn sim_stage(&self, stage: SimStage) -> f64 {
        self.sim[SIM_STAGES.iter().position(|&s| s == stage).expect("stage in table")]
    }
}

/// A bounded, lock-striped ring of the most recent [`QueryRecord`]s.
///
/// Records are striped by sequence number, so concurrent workers closing
/// records almost always take different locks; each stripe is a
/// fixed-capacity `VecDeque` that evicts its oldest record on overflow.
/// `snapshot()` re-interleaves the stripes by `seq`.
#[derive(Debug)]
pub struct FlightRecorder {
    stripes: Vec<Mutex<VecDeque<QueryRecord>>>,
    per_stripe: usize,
}

/// Stripe count — a small power of two; contention, not parallelism,
/// is the thing being bounded.
const STRIPES: usize = 8;

impl FlightRecorder {
    /// A recorder retaining (at least) the last `capacity` records.
    pub fn new(capacity: usize) -> Self {
        let per_stripe = capacity.div_ceil(STRIPES).max(1);
        FlightRecorder {
            stripes: (0..STRIPES).map(|_| Mutex::new(VecDeque::new())).collect(),
            per_stripe,
        }
    }

    /// Retain `record`, evicting the stripe's oldest when full.
    pub fn push(&self, record: QueryRecord) {
        let stripe = &self.stripes[(record.seq % STRIPES as u64) as usize];
        let mut ring = stripe.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() == self.per_stripe {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// The retained records, oldest first (by sequence number).
    pub fn snapshot(&self) -> Vec<QueryRecord> {
        let mut all: Vec<QueryRecord> = self
            .stripes
            .iter()
            .flat_map(|s| {
                s.lock().unwrap_or_else(|e| e.into_inner()).iter().cloned().collect::<Vec<_>>()
            })
            .collect();
        all.sort_by_key(|r| r.seq);
        all
    }

    /// Upper bound on retained records.
    pub fn capacity(&self) -> usize {
        self.per_stripe * STRIPES
    }
}

/// p50/p95/p99 of one stage's histogram, plus its observation count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageSummary {
    /// Observations (completed queries).
    pub count: u64,
    /// Median, seconds (bucket upper bound — see `kfusion_trace::hist`).
    pub p50: f64,
    /// 95th percentile, seconds.
    pub p95: f64,
    /// 99th percentile, seconds.
    pub p99: f64,
}

impl StageSummary {
    fn of(h: &Hist) -> Self {
        StageSummary {
            count: h.count(),
            p50: h.quantile(0.5),
            p95: h.quantile(0.95),
            p99: h.quantile(0.99),
        }
    }
}

/// A point-in-time service observability snapshot.
#[derive(Debug, Clone)]
pub struct ServerStats {
    /// Per-host-stage latency summaries, in [`HOST_STAGES`] order.
    pub host: Vec<(HostStage, StageSummary)>,
    /// Per-sim-stage latency summaries, in [`SIM_STAGES`] order.
    pub sim: Vec<(SimStage, StageSummary)>,
    /// Plan-cache counters at snapshot time.
    pub cache: CacheStats,
    /// `hits / (hits + misses)`, 0 when the cache is cold.
    pub cache_hit_rate: f64,
    /// Submissions sitting in the queue right now.
    pub queue_depth: usize,
    /// Submission attempts (accepted or shed at the door).
    pub submitted: u64,
    /// Queries executed and answered.
    pub completed: u64,
    /// Submissions rejected at the door (`Overloaded`).
    pub shed_overload: u64,
    /// Queries rejected at pickup (deadline passed while queued).
    pub shed_deadline: u64,
    /// Queries whose execution failed.
    pub failed: u64,
    /// The flight-recorder ring, oldest first.
    pub recent: Vec<QueryRecord>,
    /// The slow-query ring (host total ≥ threshold), oldest first.
    pub slow: Vec<QueryRecord>,
}

/// The service's always-on observability hub: stage histograms, counters,
/// the flight recorder, and the slow-query log. One per `serve` call.
#[derive(Debug)]
pub struct StatsHub {
    host: Vec<Mutex<Hist>>,
    sim: Vec<Mutex<Hist>>,
    host_keys: Vec<String>,
    sim_keys: Vec<String>,
    recorder: FlightRecorder,
    slow: Mutex<VecDeque<QueryRecord>>,
    slow_threshold: Option<Duration>,
    slow_depth: usize,
    seq: AtomicU64,
    submitted: AtomicU64,
    completed: AtomicU64,
    shed_overload: AtomicU64,
    shed_deadline: AtomicU64,
    failed: AtomicU64,
}

/// Host-stage histogram family name (global recorder / Prometheus export).
pub const HOST_FAMILY: &str = "kfusion_server_stage_host_seconds";
/// Sim-stage histogram family name.
pub const SIM_FAMILY: &str = "kfusion_server_stage_sim_seconds";

impl StatsHub {
    /// A hub retaining `recorder_depth` recent records and `slow_depth`
    /// slow ones (host total ≥ `slow_threshold`; `None` disables the log).
    pub fn new(recorder_depth: usize, slow_depth: usize, slow_threshold: Option<Duration>) -> Self {
        StatsHub {
            host: HOST_STAGES.iter().map(|_| Mutex::new(Hist::new())).collect(),
            sim: SIM_STAGES.iter().map(|_| Mutex::new(Hist::new())).collect(),
            host_keys: HOST_STAGES
                .iter()
                .map(|s| metric_key(HOST_FAMILY, &[("stage", s.as_str())]))
                .collect(),
            sim_keys: SIM_STAGES
                .iter()
                .map(|s| metric_key(SIM_FAMILY, &[("stage", s.as_str())]))
                .collect(),
            recorder: FlightRecorder::new(recorder_depth),
            slow: Mutex::new(VecDeque::new()),
            slow_threshold,
            slow_depth: slow_depth.max(1),
            seq: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed_overload: AtomicU64::new(0),
            shed_deadline: AtomicU64::new(0),
            failed: AtomicU64::new(0),
        }
    }

    /// Count a submission attempt and assign its sequence number. Every
    /// attempt counts — attempts that are then shed at the door show up in
    /// `shed_overload`, so `submitted - shed - failed == completed` holds
    /// over any quiesced interval.
    pub fn submission_attempt(&self) -> u64 {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Count a submission shed at the door (`Overloaded`/`ShuttingDown`).
    pub fn shed_overload(&self) {
        self.shed_overload.fetch_add(1, Ordering::Relaxed);
    }

    /// Close a query's lifecycle record: exactly once per accepted query
    /// that reached a worker. Completed records feed the stage histograms;
    /// every record lands in the flight recorder.
    pub fn close_record(&self, record: QueryRecord) {
        kfusion_trace::counter("kfusion_server_query_records_closed_total", 1);
        match record.outcome {
            RecordOutcome::Completed => {
                self.completed.fetch_add(1, Ordering::Relaxed);
                kfusion_trace::counter("kfusion_server_queries_completed_total", 1);
                for (i, &v) in record.host.iter().enumerate() {
                    self.host[i].lock().unwrap_or_else(|e| e.into_inner()).record(v);
                    kfusion_trace::observe(&self.host_keys[i], v);
                }
                for (i, &v) in record.sim.iter().enumerate() {
                    self.sim[i].lock().unwrap_or_else(|e| e.into_inner()).record(v);
                    kfusion_trace::observe(&self.sim_keys[i], v);
                }
            }
            RecordOutcome::DeadlineExceeded => {
                self.shed_deadline.fetch_add(1, Ordering::Relaxed);
            }
            RecordOutcome::Failed => {
                self.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
        if record.outcome == RecordOutcome::Completed {
            if let Some(thresh) = self.slow_threshold {
                if record.host_stage(HostStage::Total) >= thresh.as_secs_f64() {
                    kfusion_trace::counter("kfusion_server_slow_queries_total", 1);
                    let mut ring = self.slow.lock().unwrap_or_else(|e| e.into_inner());
                    if ring.len() == self.slow_depth {
                        ring.pop_front();
                    }
                    ring.push_back(record.clone());
                }
            }
        }
        self.recorder.push(record);
    }

    /// Snapshot every histogram, counter, and ring. `cache` and
    /// `queue_depth` come from the service (the hub doesn't own them).
    pub fn snapshot(&self, cache: CacheStats, queue_depth: usize) -> ServerStats {
        let summarize = |hists: &[Mutex<Hist>]| -> Vec<StageSummary> {
            hists
                .iter()
                .map(|m| StageSummary::of(&m.lock().unwrap_or_else(|e| e.into_inner())))
                .collect()
        };
        let host = HOST_STAGES.iter().copied().zip(summarize(&self.host)).collect();
        let sim = SIM_STAGES.iter().copied().zip(summarize(&self.sim)).collect();
        let denom = cache.hits + cache.misses;
        ServerStats {
            host,
            sim,
            cache,
            cache_hit_rate: if denom == 0 { 0.0 } else { cache.hits as f64 / denom as f64 },
            queue_depth,
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            shed_overload: self.shed_overload.load(Ordering::Relaxed),
            shed_deadline: self.shed_deadline.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            recent: self.recorder.snapshot(),
            slow: self.slow.lock().unwrap_or_else(|e| e.into_inner()).iter().cloned().collect(),
        }
    }
}

impl ServerStats {
    /// One host stage's summary.
    pub fn host_stage(&self, stage: HostStage) -> StageSummary {
        self.host.iter().find(|(s, _)| *s == stage).map(|(_, v)| *v).expect("stage present")
    }

    /// One sim stage's summary.
    pub fn sim_stage(&self, stage: SimStage) -> StageSummary {
        self.sim.iter().find(|(s, _)| *s == stage).map(|(_, v)| *v).expect("stage present")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seq: u64, total: f64, outcome: RecordOutcome) -> QueryRecord {
        QueryRecord {
            seq,
            batch_size: 1,
            cache_hit: seq.is_multiple_of(2),
            outcome,
            host: [total / 10.0, total / 10.0, 0.0, total / 2.0, total / 10.0, total],
            sim: [0.001, 0.002, 0.001, 0.004],
        }
    }

    fn empty_cache() -> CacheStats {
        CacheStats { hits: 0, misses: 0, compiles: 0, entries: 0 }
    }

    #[test]
    fn flight_recorder_keeps_the_most_recent_and_orders_by_seq() {
        let fr = FlightRecorder::new(16);
        for seq in 0..100 {
            fr.push(record(seq, 0.01, RecordOutcome::Completed));
        }
        let snap = fr.snapshot();
        assert!(snap.len() <= fr.capacity());
        assert!(!snap.is_empty());
        // Ordered by seq, and every stripe retains its newest.
        for w in snap.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
        assert_eq!(snap.last().unwrap().seq, 99);
        // Oldest retained is from the tail, not the head, of the stream.
        assert!(snap[0].seq >= 100 - fr.capacity() as u64);
    }

    #[test]
    fn close_record_routes_outcomes_and_feeds_histograms() {
        let hub = StatsHub::new(8, 4, Some(Duration::from_millis(50)));
        hub.submission_attempt();
        hub.submission_attempt();
        hub.submission_attempt();
        hub.close_record(record(0, 0.01, RecordOutcome::Completed));
        hub.close_record(record(1, 0.2, RecordOutcome::Completed)); // slow
        hub.close_record(record(2, 0.01, RecordOutcome::DeadlineExceeded));
        let stats = hub.snapshot(empty_cache(), 0);
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.shed_deadline, 1);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.host_stage(HostStage::Total).count, 2);
        assert_eq!(stats.sim_stage(SimStage::Compute).count, 2);
        // Only the 0.2 s query crossed the 50 ms slow threshold.
        assert_eq!(stats.slow.len(), 1);
        assert_eq!(stats.slow[0].seq, 1);
        // All three lifecycles (including the shed one) are in the ring.
        assert_eq!(stats.recent.len(), 3);
        // Quantiles are monotone.
        let t = stats.host_stage(HostStage::Total);
        assert!(t.p50 <= t.p95 && t.p95 <= t.p99);
    }

    #[test]
    fn snapshot_reports_cache_hit_rate() {
        let hub = StatsHub::new(4, 4, None);
        let stats = hub.snapshot(CacheStats { hits: 3, misses: 1, compiles: 1, entries: 1 }, 5);
        assert_eq!(stats.cache_hit_rate, 0.75);
        assert_eq!(stats.queue_depth, 5);
        // No threshold → nothing is ever logged slow.
        assert!(stats.slow.is_empty());
    }
}
