//! Seeded workload generators.
//!
//! The paper's micro-benchmarks run over "randomly generated 32-bit integers
//! representing compressed row data"; selectivity is dialed by filtering a
//! uniform key space with a proportional threshold. Everything is seeded so
//! every figure regenerates identically.

use crate::data::{Column, Relation};
use kfusion_prng::Rng;

/// Key space of the micro-benchmark inputs (32-bit, as in the paper).
pub const KEY_SPACE: u64 = 1 << 32;

/// A relation of `n` uniform random keys in `[0, KEY_SPACE)`.
pub fn random_keys(n: usize, seed: u64) -> Relation {
    let mut rng = Rng::seed_from_u64(seed);
    Relation::from_keys((0..n).map(|_| rng.gen_range(0..KEY_SPACE)).collect())
}

/// The `key < threshold` cutoff that selects fraction `frac` of a uniform
/// key space.
pub fn threshold_for_selectivity(frac: f64) -> u64 {
    (frac.clamp(0.0, 1.0) * KEY_SPACE as f64) as u64
}

/// A sorted relation of `n` distinct keys `0..n` with `cols` random i64
/// payload columns — the substrate's sorted key-value layout, ready for
/// merge joins.
pub fn sorted_table(n: usize, cols: usize, seed: u64) -> Relation {
    let mut rng = Rng::seed_from_u64(seed);
    let payload = (0..cols)
        .map(|_| Column::I64((0..n).map(|_| rng.gen_range(-1000i64..1000)).collect()))
        .collect();
    Relation::new((0..n as u64).collect(), payload).expect("rectangular by construction")
}

/// A sorted relation with an f64 payload column in `[lo, hi)`.
pub fn sorted_f64_table(n: usize, lo: f64, hi: f64, seed: u64) -> Relation {
    let mut rng = Rng::seed_from_u64(seed);
    Relation::new(
        (0..n as u64).collect(),
        vec![Column::F64((0..n).map(|_| rng.gen_range(lo..hi)).collect())],
    )
    .expect("rectangular by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::select::count_selected;
    use crate::predicates;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(random_keys(1000, 42), random_keys(1000, 42));
        assert_ne!(random_keys(1000, 42), random_keys(1000, 43));
    }

    #[test]
    fn threshold_yields_requested_selectivity() {
        let r = random_keys(200_000, 7);
        for frac in [0.1, 0.5, 0.9] {
            let pred = predicates::key_lt(threshold_for_selectivity(frac));
            let got = count_selected(&r, &pred).unwrap() as f64 / r.len() as f64;
            assert!((got - frac).abs() < 0.01, "selectivity {frac}: measured {got}");
        }
    }

    #[test]
    fn sorted_table_is_sorted_and_rectangular() {
        let t = sorted_table(1000, 3, 1);
        assert!(t.is_key_sorted());
        assert_eq!(t.n_cols(), 3);
        assert_eq!(t.len(), 1000);
    }

    #[test]
    fn f64_table_in_range() {
        let t = sorted_f64_table(1000, 0.0, 0.1, 2);
        let v = t.cols[0].as_f64().unwrap();
        assert!(v.iter().all(|&x| (0.0..0.1).contains(&x)));
    }
}
