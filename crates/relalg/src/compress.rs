//! Column compression for PCIe transfer reduction — the extension the
//! paper's related work points at: "He et al. also point out that the PCIe
//! transfer time may outweigh the speedup brought by the GPUs and suggest
//! the use of data compression techniques to reduce the amount of
//! transfered data" (Fang, He & Luo, VLDB 2010).
//!
//! Three real, lossless schemes over `u64` key columns:
//!
//! * [`Scheme::BitPack`] — fixed-width packing at `⌈log2(max+1)⌉` bits;
//! * [`Scheme::Delta`] — delta + bit-packing for sorted columns (frame of
//!   reference is the first value);
//! * [`Scheme::Rle`] — run-length encoding for low-cardinality columns.
//!
//! [`best_for`] picks the smallest encoding. The decompression kernel's
//! cost profile lives here too, so the executor can weigh *compressed
//! transfer + decompress kernel* against plain transfers — and, in the
//! spirit of the paper, the decompress stage is elementwise, so it can
//! **fuse** with the consuming filter: the decompressed column then never
//! touches GPU global memory at all.

use crate::profiles::STREAM_MEM_EFF;
use kfusion_vgpu::KernelProfile;

/// A compression scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Fixed-width bit packing.
    BitPack,
    /// Delta encoding (sorted inputs) + bit packing of the gaps.
    Delta,
    /// Run-length encoding: `(value, run)` pairs, bit-packed.
    Rle,
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scheme::BitPack => write!(f, "bitpack"),
            Scheme::Delta => write!(f, "delta+bitpack"),
            Scheme::Rle => write!(f, "rle"),
        }
    }
}

/// A compressed column block.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedBlock {
    /// Scheme used.
    pub scheme: Scheme,
    /// Bits per packed element (or per RLE field).
    pub bits: u32,
    /// Original element count.
    pub n: usize,
    /// Frame of reference (Delta) — the first value.
    pub base: u64,
    /// Packed payload.
    pub payload: Vec<u8>,
}

impl CompressedBlock {
    /// Bytes on the wire (payload plus a small fixed header).
    pub fn wire_bytes(&self) -> u64 {
        self.payload.len() as u64 + 24
    }

    /// Compression ratio versus 4-byte elements (the paper's compressed
    /// 32-bit row representation).
    pub fn ratio_vs_u32(&self) -> f64 {
        (self.n as f64 * 4.0) / self.wire_bytes() as f64
    }
}

/// Errors from compression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressError {
    /// Delta encoding requires a non-decreasing column.
    NotSorted,
}

impl std::fmt::Display for CompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompressError::NotSorted => write!(f, "delta compression requires sorted input"),
        }
    }
}

impl std::error::Error for CompressError {}

fn bits_for(max: u64) -> u32 {
    64 - max.leading_zeros()
}

/// Pack `values` at `bits` bits each (little-endian bit order).
fn pack(values: impl Iterator<Item = u64>, bits: u32, n_hint: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity((n_hint * bits as usize).div_ceil(8));
    let mut acc: u64 = 0;
    let mut filled: u32 = 0;
    for v in values {
        debug_assert!(bits == 64 || v < (1u64 << bits));
        acc |= v << filled;
        let take = (64 - filled).min(bits);
        filled += take;
        if filled == 64 {
            out.extend_from_slice(&acc.to_le_bytes());
            let rem = bits - take;
            acc = if rem > 0 { v >> take } else { 0 };
            filled = rem;
        }
    }
    if filled > 0 {
        out.extend_from_slice(&acc.to_le_bytes()[..(filled as usize).div_ceil(8)]);
    }
    out
}

/// Unpack `n` values of `bits` bits each.
fn unpack(payload: &[u8], bits: u32, n: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(n);
    let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
    for i in 0..n {
        let bit_pos = i as u64 * bits as u64;
        let byte = (bit_pos / 8) as usize;
        let shift = (bit_pos % 8) as u32;
        // Read up to 16 bytes to cover any 64-bit value straddling bytes.
        let mut word = [0u8; 16];
        let take = (payload.len() - byte).min(16);
        word[..take].copy_from_slice(&payload[byte..byte + take]);
        let lo = u64::from_le_bytes(word[..8].try_into().expect("8 bytes"));
        let hi = u64::from_le_bytes(word[8..].try_into().expect("8 bytes"));
        let v = if shift == 0 { lo } else { (lo >> shift) | (hi << (64 - shift)) };
        out.push(v & mask);
    }
    out
}

/// Compress with a specific scheme.
pub fn compress(values: &[u64], scheme: Scheme) -> Result<CompressedBlock, CompressError> {
    match scheme {
        Scheme::BitPack => {
            let max = values.iter().copied().max().unwrap_or(0);
            let bits = bits_for(max).max(1);
            Ok(CompressedBlock {
                scheme,
                bits,
                n: values.len(),
                base: 0,
                payload: pack(values.iter().copied(), bits, values.len()),
            })
        }
        Scheme::Delta => {
            if values.windows(2).any(|w| w[0] > w[1]) {
                return Err(CompressError::NotSorted);
            }
            let base = values.first().copied().unwrap_or(0);
            let gaps: Vec<u64> = values.windows(2).map(|w| w[1] - w[0]).collect();
            let max_gap = gaps.iter().copied().max().unwrap_or(0);
            let bits = bits_for(max_gap).max(1);
            Ok(CompressedBlock {
                scheme,
                bits,
                n: values.len(),
                base,
                payload: pack(gaps.into_iter(), bits, values.len().saturating_sub(1)),
            })
        }
        Scheme::Rle => {
            // (value, run-1) pairs, both bit-packed at the same width.
            let mut pairs: Vec<u64> = Vec::new();
            let mut i = 0;
            let mut max_field = 0u64;
            while i < values.len() {
                let v = values[i];
                let mut run = 1u64;
                while i + (run as usize) < values.len() && values[i + run as usize] == v {
                    run += 1;
                }
                pairs.push(v);
                pairs.push(run - 1);
                max_field = max_field.max(v).max(run - 1);
                i += run as usize;
            }
            let bits = bits_for(max_field).max(1);
            let n_fields = pairs.len();
            Ok(CompressedBlock {
                scheme,
                bits,
                n: values.len(),
                base: n_fields as u64,
                payload: pack(pairs.into_iter(), bits, n_fields),
            })
        }
    }
}

/// Decompress a block back to the original values.
pub fn decompress(block: &CompressedBlock) -> Vec<u64> {
    match block.scheme {
        Scheme::BitPack => unpack(&block.payload, block.bits, block.n),
        Scheme::Delta => {
            if block.n == 0 {
                return Vec::new();
            }
            let gaps = unpack(&block.payload, block.bits, block.n - 1);
            let mut out = Vec::with_capacity(block.n);
            let mut cur = block.base;
            out.push(cur);
            for g in gaps {
                cur += g;
                out.push(cur);
            }
            out
        }
        Scheme::Rle => {
            let fields = unpack(&block.payload, block.bits, block.base as usize);
            let mut out = Vec::with_capacity(block.n);
            for pair in fields.chunks_exact(2) {
                for _ in 0..=pair[1] {
                    out.push(pair[0]);
                }
            }
            out
        }
    }
}

/// Try every scheme (Delta only on sorted input) and return the smallest.
pub fn best_for(values: &[u64]) -> CompressedBlock {
    let mut best = compress(values, Scheme::BitPack).expect("bitpack never fails");
    for scheme in [Scheme::Delta, Scheme::Rle] {
        if let Ok(block) = compress(values, scheme) {
            if block.wire_bytes() < best.wire_bytes() {
                best = block;
            }
        }
    }
    best
}

/// Cost profile of the GPU decompression kernel: read packed bits, write
/// the expanded column. When *fused* with the consumer, the write
/// disappears (expanded values stay in registers) — set `fused_consumer`.
pub fn decompress_kernel(
    block: &CompressedBlock,
    out_bytes: f64,
    fused_consumer: bool,
) -> KernelProfile {
    let read = block.wire_bytes() as f64 / block.n.max(1) as f64;
    let instr = match block.scheme {
        Scheme::BitPack => 7.0,
        Scheme::Delta => 10.0, // gap unpack + prefix-sum step
        Scheme::Rle => 9.0,
    };
    KernelProfile::new(if fused_consumer { "decompress_fused" } else { "decompress" })
        .instr_per_elem(instr)
        .bytes_read_per_elem(read)
        .bytes_written_per_elem(if fused_consumer { 0.0 } else { out_bytes })
        .regs_per_thread(crate::profiles::STAGE_REGS + 4)
        .mem_efficiency(STREAM_MEM_EFF)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitpack_roundtrip() {
        let vals: Vec<u64> = (0..10_000).map(|i| (i * 2_654_435_761u64) % 1000).collect();
        let block = compress(&vals, Scheme::BitPack).unwrap();
        assert_eq!(block.bits, 10);
        assert_eq!(decompress(&block), vals);
        assert!(block.ratio_vs_u32() > 2.5, "ratio {}", block.ratio_vs_u32());
    }

    #[test]
    fn delta_roundtrip_on_sorted() {
        let vals: Vec<u64> = (0..5_000u64).map(|i| i * 3 + (i % 7)).collect();
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        let block = compress(&sorted, Scheme::Delta).unwrap();
        assert_eq!(decompress(&block), sorted);
        // Small gaps pack far tighter than the absolute values.
        let plain = compress(&sorted, Scheme::BitPack).unwrap();
        assert!(block.wire_bytes() < plain.wire_bytes());
    }

    #[test]
    fn delta_rejects_unsorted() {
        assert_eq!(compress(&[3, 1, 2], Scheme::Delta), Err(CompressError::NotSorted));
    }

    #[test]
    fn rle_roundtrip_and_wins_on_runs() {
        let mut vals = Vec::new();
        for v in 0..50u64 {
            vals.extend(std::iter::repeat_n(v, 200));
        }
        let block = compress(&vals, Scheme::Rle).unwrap();
        assert_eq!(decompress(&block), vals);
        let plain = compress(&vals, Scheme::BitPack).unwrap();
        assert!(block.wire_bytes() < plain.wire_bytes() / 10);
    }

    #[test]
    fn best_for_picks_the_smallest() {
        let runs: Vec<u64> = std::iter::repeat_n(7u64, 10_000).collect();
        assert_eq!(best_for(&runs).scheme, Scheme::Rle);
        let sorted: Vec<u64> = (0..10_000).collect();
        assert_eq!(best_for(&sorted).scheme, Scheme::Delta);
        let random: Vec<u64> = (0..10_000).map(|i| (i * 48_271) % (1 << 20)).collect();
        assert_eq!(best_for(&random).scheme, Scheme::BitPack);
    }

    #[test]
    fn empty_and_single_element_edge_cases() {
        for scheme in [Scheme::BitPack, Scheme::Rle] {
            let b = compress(&[], scheme).unwrap();
            assert_eq!(decompress(&b), Vec::<u64>::new());
        }
        let b = compress(&[], Scheme::Delta).unwrap();
        assert_eq!(decompress(&b), Vec::<u64>::new());
        for scheme in [Scheme::BitPack, Scheme::Delta, Scheme::Rle] {
            let b = compress(&[42], scheme).unwrap();
            assert_eq!(decompress(&b), vec![42]);
        }
    }

    #[test]
    fn wide_values_roundtrip() {
        let vals = vec![u64::MAX, 0, u64::MAX / 2, 1];
        let b = compress(&vals, Scheme::BitPack).unwrap();
        assert_eq!(b.bits, 64);
        assert_eq!(decompress(&b), vals);
    }

    #[test]
    fn fused_decompress_writes_nothing() {
        let vals: Vec<u64> = (0..1000).collect();
        let block = compress(&vals, Scheme::Delta).unwrap();
        let plain = decompress_kernel(&block, 4.0, false);
        let fused = decompress_kernel(&block, 4.0, true);
        assert_eq!(fused.bytes_written_per_elem, 0.0);
        assert!(plain.bytes_written_per_elem > 0.0);
    }
}
