//! Host-engine selection: vectorized batch kernels vs the scalar
//! interpreter.
//!
//! The functional phase can evaluate IR bodies two ways: compiled
//! [`kfusion_ir::batch::CompiledKernel`]s over typed columnar batches (the
//! default), or the per-tuple [`kfusion_ir::interp::Machine`]. Both produce
//! bit-identical results — the equivalence tests in
//! `tests/engine_equivalence.rs` and the batch property tests enforce it —
//! so the toggle exists for benchmarking (`throughput_host` measures the
//! gap) and as a diagnostic escape hatch. Bodies that fail batch
//! compilation fall back to the scalar path regardless of this setting.
//!
//! Simulated GPU timings are computed from kernel cost profiles, not from
//! host wall-clock, so they are unchanged by the engine choice by
//! construction.

use std::sync::atomic::{AtomicBool, Ordering};

static BATCH_ENABLED: AtomicBool = AtomicBool::new(true);

/// Enable or disable the vectorized batch engine process-wide.
pub fn set_batch_enabled(on: bool) {
    BATCH_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether operators should try the batch engine (true by default).
pub fn batch_enabled() -> bool {
    BATCH_ENABLED.load(Ordering::Relaxed)
}

/// Enable or disable scratch-arena reuse of [`BatchMachine`]s and index
/// buffers across morsels (on by default). Re-exported from
/// [`kfusion_ir::batch`] so engine toggles live in one place; both engines
/// produce bit-identical results either way — the scratch-poisoning
/// equivalence suite enforces it.
///
/// [`BatchMachine`]: kfusion_ir::batch::BatchMachine
pub use kfusion_ir::batch::{scratch_poison, scratch_reuse, set_scratch_poison, set_scratch_reuse};
