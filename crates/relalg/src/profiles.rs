//! Kernel cost profiles for every operator — the timing half of the
//! substrate.
//!
//! Each relational operator compiles to one or more CUDA-kernel-equivalents
//! whose per-element costs are assembled here from (a) the *optimized* IR
//! instruction count of its user body (predicate/expression), (b) fixed
//! per-stage overheads of the multi-stage skeleton (partition / buffer /
//! gather bookkeeping, CTA-count scans, global synchronization), and (c)
//! the bytes the stage moves through global memory.
//!
//! Fusion manifests concretely in these formulas:
//! * a fused filter evaluates the *fused+O3* body — fewer instructions than
//!   the sum of parts (Table III);
//! * a fused chain reads its input **once** and never materializes
//!   intermediates (Fig. 7(c)/(d));
//! * the partition/buffer skeleton and the trailing gather kernel are paid
//!   **once** per fused kernel instead of once per operator (Fig. 7(e)).
//!
//! Constants are calibrated so the virtual C2070 lands in the throughput
//! bands of the paper's Fig. 4(a); see EXPERIMENTS.md for paper-vs-measured.

use kfusion_ir::cost::{instruction_count, max_live_regs};
use kfusion_ir::opt::{optimize, OptLevel};
use kfusion_ir::KernelBody;
use kfusion_vgpu::KernelProfile;

/// Per-element overhead of the filter stage skeleton (partition index math,
/// match-flag bookkeeping, buffered compaction write with intra-CTA scan).
pub const FILTER_STAGE_INSTR: f64 = 24.0;

/// Per-element overhead of the gather stage (prefix-sum offset lookup plus
/// the copy loop).
pub const GATHER_STAGE_INSTR: f64 = 18.0;

/// Registers consumed by the multi-stage skeleton itself.
pub const STAGE_REGS: u32 = 12;

/// Memory-coalescing efficiency of streaming stages (sequential reads,
/// compacted writes).
pub const STREAM_MEM_EFF: f64 = 0.35;

/// Memory-coalescing efficiency of scatter/gather-heavy stages.
pub const SCATTER_MEM_EFF: f64 = 0.22;

/// Extra bookkeeping bytes per element in the filter stage (per-CTA match
/// counts, amortized).
pub const FILTER_BOOKKEEPING_BYTES: f64 = 1.0;

/// Optimized per-element instruction count of an IR body plus the `extra`
/// skeleton overhead.
pub fn body_instr(body: &KernelBody, level: OptLevel) -> f64 {
    instruction_count(&optimize(body, level)) as f64
}

/// Register footprint of an IR body at `level`, plus the skeleton registers.
/// Uses the liveness-precise maximum (`max_live_regs`), not the distinct
/// register count — what occupancy actually depends on.
pub fn body_regs(body: &KernelBody, level: OptLevel) -> u32 {
    max_live_regs(&optimize(body, level)) as u32 + STAGE_REGS
}

/// The filter kernel of one (possibly fused) SELECT: evaluates `body` per
/// input element, buffers survivors.
///
/// * `body` — the predicate (for a fused chain, the *fused* predicate).
/// * `row_bytes` — logical bytes per tuple.
/// * `selectivity` — fraction of tuples surviving **all** predicates in the
///   kernel (what the buffer stage writes).
pub fn select_filter(
    name: impl Into<String>,
    body: &KernelBody,
    level: OptLevel,
    row_bytes: f64,
    selectivity: f64,
) -> KernelProfile {
    KernelProfile::new(name)
        .instr_per_elem(body_instr(body, level) + FILTER_STAGE_INSTR)
        .bytes_read_per_elem(row_bytes)
        .bytes_written_per_elem(selectivity * row_bytes + FILTER_BOOKKEEPING_BYTES)
        .regs_per_thread(body_regs(body, level))
        .mem_efficiency(STREAM_MEM_EFF)
}

/// The gather kernel of a SELECT: invoked over the *matched* elements,
/// copying each from its CTA buffer to its final position.
pub fn select_gather(name: impl Into<String>, row_bytes: f64) -> KernelProfile {
    KernelProfile::new(name)
        .instr_per_elem(GATHER_STAGE_INSTR)
        .bytes_read_per_elem(row_bytes)
        .bytes_written_per_elem(row_bytes)
        .regs_per_thread(STAGE_REGS)
        .mem_efficiency(SCATTER_MEM_EFF)
}

/// The CPU's multi-threaded SELECT (one pass, no separate gather — each
/// thread appends to a private buffer that is concatenated).
///
/// Per-element cost is calibrated to the paper's measured CPU curve
/// (Fig. 4(a)): a small fixed scan cost, a large per-*selected*-element
/// write-path cost (the 16-thread implementation's buffered appends), and a
/// branch-misprediction term peaking at 50% selectivity — together these
/// reproduce GPU speedups of ≈2.9×/8.8×/8.4× at 10/50/90% selectivity.
pub fn cpu_select(row_bytes: f64, selectivity: f64) -> KernelProfile {
    let s = selectivity;
    let write_path = 170.0 * s;
    let branch_penalty = 48.0 * s.min(1.0 - s);
    KernelProfile::new("cpu_select")
        .instr_per_elem(0.6 + write_path + branch_penalty)
        .bytes_read_per_elem(row_bytes)
        .bytes_written_per_elem(selectivity * row_bytes)
        .mem_efficiency(0.8)
}

/// Sort-merge JOIN kernels over presorted inputs: one matching kernel that
/// streams both sides and buffers matches, one gather. `match_factor` =
/// output rows / input rows.
pub fn join_kernels(row_bytes_a: f64, row_bytes_b: f64, match_factor: f64) -> Vec<KernelProfile> {
    let out_bytes = (row_bytes_a + row_bytes_b - 8.0).max(8.0);
    vec![
        KernelProfile::new("join_match")
            .instr_per_elem(30.0)
            .bytes_read_per_elem(row_bytes_a + row_bytes_b)
            .bytes_written_per_elem(match_factor * out_bytes + FILTER_BOOKKEEPING_BYTES)
            .regs_per_thread(STAGE_REGS + 10)
            .mem_efficiency(STREAM_MEM_EFF),
        select_gather("join_gather", out_bytes),
    ]
}

/// SORT: a bitonic sorting network, the style of sort 2012-era GPU RA
/// libraries used. A full network is `log2(n)·(log2(n)+1)/2` compare-swap
/// passes; the early passes run in shared memory, which the `/2` efficiency
/// factor accounts for, leaving `log²(n)/4` global-memory passes. The
/// superlinear pass count is why SORT dominates the unoptimized Q1 (~71% of
/// execution, paper §V) and why it is the plan's immovable barrier.
pub fn sort_kernel(n: u64, row_bytes: f64) -> KernelProfile {
    let lg = (n.max(2) as f64).log2().ceil();
    let passes = (lg * (lg + 1.0) / 4.0).max(1.0);
    KernelProfile::new("sort")
        .instr_per_elem(10.0 * passes)
        .bytes_read_per_elem(row_bytes * passes)
        .bytes_written_per_elem(row_bytes * passes)
        .regs_per_thread(STAGE_REGS + 8)
        .mem_efficiency(STREAM_MEM_EFF)
}

/// AGGREGATION (reduce-by-key on sorted input): one segmented-scan pass.
pub fn aggregate_kernel(row_bytes: f64, n_aggs: usize) -> KernelProfile {
    KernelProfile::new("aggregate")
        .instr_per_elem(10.0 + 6.0 * n_aggs as f64)
        .bytes_read_per_elem(row_bytes)
        // Output is one row per group: negligible next to the input scan.
        .bytes_written_per_elem(0.5)
        .regs_per_thread(STAGE_REGS + 2 * n_aggs as u32)
        .mem_efficiency(STREAM_MEM_EFF)
}

/// ARITH map: evaluates `body` per tuple, writing one column per output.
pub fn arith_kernel(
    name: impl Into<String>,
    body: &KernelBody,
    level: OptLevel,
    in_bytes: f64,
    out_bytes: f64,
) -> KernelProfile {
    KernelProfile::new(name)
        .instr_per_elem(body_instr(body, level) + 6.0)
        .bytes_read_per_elem(in_bytes)
        .bytes_written_per_elem(out_bytes)
        .regs_per_thread(body_regs(body, level))
        .mem_efficiency(STREAM_MEM_EFF)
}

/// UNIQUE: one neighbour-compare pass plus compaction.
pub fn unique_kernel(row_bytes: f64, keep_factor: f64) -> KernelProfile {
    KernelProfile::new("unique")
        .instr_per_elem(12.0)
        .bytes_read_per_elem(row_bytes)
        .bytes_written_per_elem(keep_factor * row_bytes)
        .regs_per_thread(STAGE_REGS)
        .mem_efficiency(STREAM_MEM_EFF)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicates;
    use kfusion_ir::fuse::fuse_predicate_chain;
    use kfusion_vgpu::{DeviceSpec, LaunchConfig};

    fn throughput_gbps(p: &KernelProfile, n: u64, input_bytes_per_elem: f64) -> f64 {
        let spec = DeviceSpec::tesla_c2070();
        let launch = LaunchConfig::for_elements(n, &spec);
        let t = p.time(&spec, &launch, n);
        n as f64 * input_bytes_per_elem / t / 1e9
    }

    #[test]
    fn gpu_select_lands_in_paper_throughput_band() {
        // Fig. 4(a): GPU SELECT compute throughput, 32-bit elements. The
        // paper's curves run ~10–25 GB/s depending on selectivity; filter +
        // gather combined should land in that band at 50%.
        let pred = predicates::key_lt(1 << 31);
        let n = 256u64 << 20;
        let f = select_filter("f", &pred, OptLevel::O3, 4.0, 0.5);
        let g = select_gather("g", 4.0);
        let spec = DeviceSpec::tesla_c2070();
        let launch = LaunchConfig::for_elements(n, &spec);
        let total = f.time(&spec, &launch, n)
            + g.time(&spec, &LaunchConfig::for_elements(n / 2, &spec), n / 2);
        let gbps = n as f64 * 4.0 / total / 1e9;
        assert!((8.0..30.0).contains(&gbps), "GPU SELECT 50%: {gbps} GB/s");
    }

    #[test]
    fn gpu_beats_cpu_select_by_paper_ratios() {
        // Fig. 4(a): GPU/CPU ≈ 2.88x (10%), 8.80x (50%), 8.35x (90%).
        let n = 128u64 << 20;
        let cpu_spec = DeviceSpec::xeon_e5520_pair();
        let gpu_spec = DeviceSpec::tesla_c2070();
        let cpu_launch = LaunchConfig { ctas: 16, threads_per_cta: 1 };
        for (sel, lo, hi) in [(0.1, 2.0, 4.5), (0.5, 5.5, 12.0), (0.9, 5.0, 12.0)] {
            let pred = predicates::key_lt((sel * 4.0e9) as u64);
            let f = select_filter("f", &pred, OptLevel::O3, 4.0, sel);
            let g = select_gather("g", 4.0);
            let matched = (n as f64 * sel) as u64;
            let t_gpu = f.time(&gpu_spec, &LaunchConfig::for_elements(n, &gpu_spec), n)
                + g.time(&gpu_spec, &LaunchConfig::for_elements(matched, &gpu_spec), matched);
            let t_cpu = cpu_select(4.0, sel).time(&cpu_spec, &cpu_launch, n);
            let ratio = t_cpu / t_gpu;
            assert!(
                (lo..hi).contains(&ratio),
                "GPU/CPU ratio at sel {sel}: {ratio:.2} (want {lo}..{hi})"
            );
        }
    }

    #[test]
    fn lower_selectivity_is_faster_for_both() {
        // Paper: "the less data selected, the better performance on both".
        let n = 64u64 << 20;
        let mut prev_gpu = 0.0;
        let mut prev_cpu = 0.0;
        for sel in [0.1, 0.5, 0.9] {
            let pred = predicates::key_lt((sel * 4.0e9) as u64);
            let f = select_filter("f", &pred, OptLevel::O3, 4.0, sel);
            let gpu = throughput_gbps(&f, n, 4.0);
            if prev_gpu > 0.0 {
                assert!(gpu < prev_gpu, "GPU throughput should fall with selectivity");
            }
            prev_gpu = gpu;
            let cpu_spec = DeviceSpec::xeon_e5520_pair();
            let t = cpu_select(4.0, sel).time(
                &cpu_spec,
                &LaunchConfig { ctas: 16, threads_per_cta: 1 },
                n,
            );
            let cpu = n as f64 * 4.0 / t / 1e9;
            if prev_cpu > 0.0 {
                assert!(cpu < prev_cpu, "CPU throughput should fall with selectivity");
            }
            prev_cpu = cpu;
        }
    }

    #[test]
    fn fused_filter_cheaper_than_two_filters() {
        let a = predicates::key_lt(100);
        let b = predicates::key_lt(70);
        let fused = fuse_predicate_chain(&[a.clone(), b.clone()]);
        let two =
            body_instr(&a, OptLevel::O3) + body_instr(&b, OptLevel::O3) + 2.0 * FILTER_STAGE_INSTR;
        let one = body_instr(&fused, OptLevel::O3) + FILTER_STAGE_INSTR;
        assert!(one < two / 1.8, "fused {one} vs separate {two}");
    }

    #[test]
    fn sort_dwarfs_linear_operators() {
        let n = 1u64 << 22;
        let spec = DeviceSpec::tesla_c2070();
        let launch = LaunchConfig::for_elements(n, &spec);
        let t_sort = sort_kernel(n, 32.0).time(&spec, &launch, n);
        let t_agg = aggregate_kernel(32.0, 5).time(&spec, &launch, n);
        assert!(t_sort > 8.0 * t_agg, "sort {t_sort} vs agg {t_agg}");
    }

    #[test]
    fn join_profiles_scale_with_match_factor() {
        let spec = DeviceSpec::tesla_c2070();
        let n = 1u64 << 22;
        let launch = LaunchConfig::for_elements(n, &spec);
        let small: f64 =
            join_kernels(16.0, 16.0, 0.1).iter().map(|k| k.time(&spec, &launch, n)).sum();
        let big: f64 =
            join_kernels(16.0, 16.0, 1.0).iter().map(|k| k.time(&spec, &launch, n)).sum();
        assert!(big > small);
    }
}
