//! `kfusion-relalg` — relational-algebra operators as multi-stage
//! data-parallel kernels.
//!
//! This crate is the substrate the paper's optimizations act on: the RA
//! operators of its Table I (SELECT, PROJECT, PRODUCT, JOIN, UNION,
//! INTERSECTION, DIFFERENCE), plus the ARITH, AGGREGATION, SORT, and UNIQUE
//! operators its query plans use (Fig. 17). Implementations follow the
//! multi-stage structure of Diamos et al. (GIT-CERCS-12-01): partition the
//! input across CTAs, compute per CTA, buffer survivors, and gather after a
//! global synchronization — which is exactly the structure kernel fusion
//! interleaves (one partition + one gather per *fused* kernel).
//!
//! Every operator has two faces:
//!
//! * **Functional** ([`ops`]) — computes real results on host threads,
//!   validated against the paper's Table I examples and by property tests.
//! * **Cost** ([`profiles`]) — the [`kfusion_vgpu::KernelProfile`]s of its
//!   CUDA-kernel-equivalents, which the executor in `kfusion-core` prices on
//!   the virtual GPU.
//!
//! Predicates and arithmetic expressions are `kfusion-ir` bodies
//! ([`predicates`] has stock builders), so the *same* body that filters
//! tuples functionally also supplies the instruction count its kernel is
//! charged for — fusing predicates speeds up both stories coherently.
//!
//! # Example
//!
//! ```
//! use kfusion_relalg::{gen, ops, predicates};
//!
//! // 100k random 32-bit keys; keep the half below the midpoint.
//! let input = gen::random_keys(100_000, 42);
//! let pred = predicates::key_lt(gen::threshold_for_selectivity(0.5));
//! let out = ops::select(&input, &pred).unwrap();
//! assert!((out.len() as f64 / input.len() as f64 - 0.5).abs() < 0.01);
//! ```

pub mod compress;
pub mod data;
pub mod engine;
pub mod gen;
pub mod ops;
pub mod predicates;
pub mod profiles;
pub mod scratch;

pub use data::{Column, RelError, Relation};
