//! AGGREGATION: group by key, reduce payload columns.
//!
//! TPC-H Q1's tail is exactly this — sums, averages, and counts per
//! `(returnflag, linestatus)` group. Callers pack compound group attributes
//! into the key with [`pack_key2`]. Input must be key-sorted (the paper's
//! Q1 plan SORTs before aggregating, Fig. 17(a)), making the reduction a
//! single linear segmented scan.

use crate::data::{Column, RelError, Relation};
use kfusion_vgpu::exec::{par_cta_map, DEFAULT_CTA_CHUNK};
use std::ops::Range;

/// One aggregate over a payload column (or over the rows themselves).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agg {
    /// Sum of column `c` (result type = column type).
    Sum(usize),
    /// Count of rows in the group (i64).
    Count,
    /// Minimum of column `c`.
    Min(usize),
    /// Maximum of column `c`.
    Max(usize),
    /// Arithmetic mean of column `c` (always f64).
    Avg(usize),
}

impl Agg {
    fn col(&self) -> Option<usize> {
        match self {
            Agg::Sum(c) | Agg::Min(c) | Agg::Max(c) | Agg::Avg(c) => Some(*c),
            Agg::Count => None,
        }
    }
}

/// Pack two small group attributes into one key (16 bits each is ample for
/// flags/statuses).
pub fn pack_key2(a: u64, b: u64) -> u64 {
    (a << 16) | (b & 0xFFFF)
}

/// Unpack a [`pack_key2`] key.
pub fn unpack_key2(k: u64) -> (u64, u64) {
    (k >> 16, k & 0xFFFF)
}

enum Acc {
    I64(i64),
    F64(f64),
    Count(i64),
    AvgF { sum: f64, n: u64 },
    AvgI { sum: i64, n: u64 },
}

fn make_acc(rel: &Relation, agg: Agg) -> Result<Acc, RelError> {
    let col_ty = |c: usize| -> Result<&Column, RelError> {
        rel.cols.get(c).ok_or(RelError::NoSuchColumn { col: c, available: rel.n_cols() })
    };
    Ok(match agg {
        Agg::Count => Acc::Count(0),
        Agg::Sum(c) => match col_ty(c)? {
            Column::I64(_) => Acc::I64(0),
            Column::F64(_) => Acc::F64(0.0),
        },
        Agg::Min(c) => match col_ty(c)? {
            Column::I64(_) => Acc::I64(i64::MAX),
            Column::F64(_) => Acc::F64(f64::INFINITY),
        },
        Agg::Max(c) => match col_ty(c)? {
            Column::I64(_) => Acc::I64(i64::MIN),
            Column::F64(_) => Acc::F64(f64::NEG_INFINITY),
        },
        Agg::Avg(c) => match col_ty(c)? {
            Column::I64(_) => Acc::AvgI { sum: 0, n: 0 },
            Column::F64(_) => Acc::AvgF { sum: 0.0, n: 0 },
        },
    })
}

fn feed(acc: &mut Acc, agg: Agg, rel: &Relation, i: usize) {
    match (acc, agg) {
        (Acc::Count(n), Agg::Count) => *n += 1,
        (Acc::I64(s), Agg::Sum(c)) => *s += rel.cols[c].as_i64().unwrap()[i],
        (Acc::F64(s), Agg::Sum(c)) => *s += rel.cols[c].as_f64().unwrap()[i],
        (Acc::I64(s), Agg::Min(c)) => *s = (*s).min(rel.cols[c].as_i64().unwrap()[i]),
        (Acc::F64(s), Agg::Min(c)) => *s = (*s).min(rel.cols[c].as_f64().unwrap()[i]),
        (Acc::I64(s), Agg::Max(c)) => *s = (*s).max(rel.cols[c].as_i64().unwrap()[i]),
        (Acc::F64(s), Agg::Max(c)) => *s = (*s).max(rel.cols[c].as_f64().unwrap()[i]),
        (Acc::AvgI { sum, n }, Agg::Avg(c)) => {
            *sum += rel.cols[c].as_i64().unwrap()[i];
            *n += 1;
        }
        (Acc::AvgF { sum, n }, Agg::Avg(c)) => {
            *sum += rel.cols[c].as_f64().unwrap()[i];
            *n += 1;
        }
        _ => unreachable!("accumulator/aggregate mismatch"),
    }
}

fn out_column(aggs: &[Agg], rel: &Relation, k: usize) -> Column {
    match aggs[k] {
        Agg::Count => Column::I64(Vec::new()),
        Agg::Avg(_) => Column::F64(Vec::new()),
        Agg::Sum(c) | Agg::Min(c) | Agg::Max(c) => match &rel.cols[c] {
            Column::I64(_) => Column::I64(Vec::new()),
            Column::F64(_) => Column::F64(Vec::new()),
        },
    }
}

fn flush(acc: Acc, col: &mut Column) {
    match (acc, col) {
        (Acc::Count(n), Column::I64(v)) => v.push(n),
        (Acc::I64(s), Column::I64(v)) => v.push(s),
        (Acc::F64(s), Column::F64(v)) => v.push(s),
        (Acc::AvgF { sum, n }, Column::F64(v)) => v.push(if n == 0 { 0.0 } else { sum / n as f64 }),
        (Acc::AvgI { sum, n }, Column::F64(v)) => {
            v.push(if n == 0 { 0.0 } else { sum as f64 / n as f64 })
        }
        _ => unreachable!("accumulator/column mismatch"),
    }
}

fn validate_agg_cols(input: &Relation, aggs: &[Agg]) -> Result<(), RelError> {
    for a in aggs {
        if let Some(c) = a.col() {
            if c >= input.n_cols() {
                return Err(RelError::NoSuchColumn { col: c, available: input.n_cols() });
            }
        }
    }
    Ok(())
}

/// The serial segmented scan over one row range; `range` must start and end
/// on group boundaries for the result to compose with neighbors.
fn aggregate_range(input: &Relation, aggs: &[Agg], range: Range<usize>) -> Relation {
    let mut out = Relation {
        key: Vec::new(),
        cols: (0..aggs.len()).map(|k| out_column(aggs, input, k)).collect(),
    };
    aggregate_range_into(input, aggs, range, &mut out);
    out
}

/// [`aggregate_range`] as an appending partial (the `_into` contract,
/// DESIGN.md §14): group rows are *appended* to `out`, whose columns must
/// already match the aggregate schema. The fold is the same serial scan, so
/// float sums are bit-identical no matter which buffer receives them.
fn aggregate_range_into(input: &Relation, aggs: &[Agg], range: Range<usize>, out: &mut Relation) {
    let mut i = range.start;
    while i < range.end {
        let k = input.key[i];
        let mut accs: Vec<Acc> = aggs
            .iter()
            .map(|&a| make_acc(input, a))
            .collect::<Result<_, _>>()
            .expect("columns validated by caller");
        while i < range.end && input.key[i] == k {
            for (acc, &agg) in accs.iter_mut().zip(aggs) {
                feed(acc, agg, input, i);
            }
            i += 1;
        }
        out.key.push(k);
        for (acc, col) in accs.into_iter().zip(out.cols.iter_mut()) {
            flush(acc, col);
        }
    }
}

/// Split `0..keys.len()` into ~`chunk`-row morsels whose boundaries sit on
/// key-run boundaries, so every group lands wholly inside one morsel and
/// per-group accumulation order (hence float summation order) is exactly
/// the serial scan's.
fn group_aligned_ranges(keys: &[u64], chunk: usize) -> Vec<Range<usize>> {
    let n = keys.len();
    let mut bounds = vec![0usize];
    loop {
        let start = *bounds.last().unwrap();
        let tentative = start + chunk;
        if tentative >= n {
            break;
        }
        // Snap forward past the run of the key straddling the cut.
        let run_key = keys[tentative - 1];
        let end = keys.partition_point(|&x| x <= run_key).max(tentative);
        if end >= n {
            break;
        }
        bounds.push(end);
    }
    bounds.push(n);
    bounds.windows(2).map(|w| w[0]..w[1]).collect()
}

/// Group the (key-sorted) input by key and compute `aggs` per group. The
/// result has one row per distinct key and one column per aggregate.
///
/// Large inputs aggregate in parallel over group-aligned morsels; because
/// no group spans a morsel boundary, the per-group fold order — and thus
/// every float sum — is bit-identical to the serial scan.
pub fn aggregate_by_key(input: &Relation, aggs: &[Agg]) -> Result<Relation, RelError> {
    let mut out = Relation::default();
    aggregate_by_key_into(input, aggs, &mut out)?;
    Ok(out)
}

/// [`aggregate_by_key`] writing into a caller-owned relation (the `_into`
/// contract, DESIGN.md §14): `out` is cleared and refilled, reusing its key
/// and column buffers whenever they already match the aggregate schema.
pub fn aggregate_by_key_into(
    input: &Relation,
    aggs: &[Agg],
    out: &mut Relation,
) -> Result<(), RelError> {
    input.require_sorted()?;
    validate_agg_cols(input, aggs)?;
    kfusion_trace::counter("kfusion_rows_in_total{op=\"aggregate\"}", input.len() as u64);
    out.key.clear();
    let matches = out.cols.len() == aggs.len()
        && (0..aggs.len()).all(|k| {
            matches!(
                (&out.cols[k], out_column(aggs, input, k)),
                (Column::I64(_), Column::I64(_)) | (Column::F64(_), Column::F64(_))
            )
        });
    if matches {
        for c in &mut out.cols {
            c.clear();
        }
    } else {
        out.cols = (0..aggs.len()).map(|k| out_column(aggs, input, k)).collect();
    }
    if input.len() <= DEFAULT_CTA_CHUNK {
        aggregate_range_into(input, aggs, 0..input.len(), out);
    } else {
        let ranges = group_aligned_ranges(&input.key, DEFAULT_CTA_CHUNK);
        let parts: Vec<Relation> =
            par_cta_map(&ranges, 1, |_cta, r| aggregate_range(input, aggs, r[0].clone()));
        for p in &parts {
            out.extend_from(p);
        }
    }
    kfusion_trace::counter("kfusion_rows_out_total{op=\"aggregate\"}", out.len() as u64);
    Ok(())
}

/// Aggregate the whole relation as a single group (no key), producing a
/// one-row relation with key 0 — the paper's plain AGGREGATION after a
/// SELECT (Fig. 2(g)). One linear pass; no re-keyed copy of the input.
pub fn aggregate_all(input: &Relation, aggs: &[Agg]) -> Result<Relation, RelError> {
    validate_agg_cols(input, aggs)?;
    kfusion_trace::counter("kfusion_rows_in_total{op=\"aggregate\"}", input.len() as u64);
    let mut out_cols: Vec<Column> = (0..aggs.len()).map(|k| out_column(aggs, input, k)).collect();
    if input.is_empty() {
        return Relation::new(Vec::new(), out_cols);
    }
    kfusion_trace::counter("kfusion_rows_out_total{op=\"aggregate\"}", 1);
    let mut accs: Vec<Acc> = aggs
        .iter()
        .map(|&a| make_acc(input, a))
        .collect::<Result<_, _>>()
        .expect("columns validated above");
    for i in 0..input.len() {
        for (acc, &agg) in accs.iter_mut().zip(aggs) {
            feed(acc, agg, input, i);
        }
    }
    for (acc, col) in accs.into_iter().zip(out_cols.iter_mut()) {
        flush(acc, col);
    }
    Relation::new(vec![0], out_cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sales() -> Relation {
        // key = group, col0 = i64 quantity, col1 = f64 price.
        Relation::new(
            vec![1, 1, 1, 2, 2, 5],
            vec![
                Column::I64(vec![10, 20, 30, 1, 2, 7]),
                Column::F64(vec![1.0, 2.0, 3.0, 10.0, 20.0, 5.0]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn grouped_sums_counts_avgs() {
        let out = aggregate_by_key(
            &sales(),
            &[Agg::Sum(0), Agg::Count, Agg::Avg(1), Agg::Min(0), Agg::Max(1)],
        )
        .unwrap();
        assert_eq!(out.key, vec![1, 2, 5]);
        assert_eq!(out.cols[0].as_i64().unwrap(), &[60, 3, 7]);
        assert_eq!(out.cols[1].as_i64().unwrap(), &[3, 2, 1]);
        assert_eq!(out.cols[2].as_f64().unwrap(), &[2.0, 15.0, 5.0]);
        assert_eq!(out.cols[3].as_i64().unwrap(), &[10, 1, 7]);
        assert_eq!(out.cols[4].as_f64().unwrap(), &[3.0, 20.0, 5.0]);
    }

    #[test]
    fn unsorted_input_rejected() {
        let r = Relation::new(vec![2, 1], vec![Column::I64(vec![1, 2])]).unwrap();
        assert!(matches!(aggregate_by_key(&r, &[Agg::Count]), Err(RelError::NotSorted)));
    }

    #[test]
    fn aggregate_all_single_group() {
        let out = aggregate_all(&sales(), &[Agg::Sum(0), Agg::Count]).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.cols[0].as_i64().unwrap(), &[70]);
        assert_eq!(out.cols[1].as_i64().unwrap(), &[6]);
    }

    #[test]
    fn missing_column_is_reported() {
        assert!(matches!(
            aggregate_by_key(&sales(), &[Agg::Sum(9)]),
            Err(RelError::NoSuchColumn { col: 9, .. })
        ));
    }

    #[test]
    fn empty_input_empty_output() {
        let r = Relation::new(vec![], vec![Column::I64(vec![])]).unwrap();
        let out = aggregate_by_key(&r, &[Agg::Sum(0)]).unwrap();
        assert!(out.is_empty());
        assert_eq!(out.n_cols(), 1);
    }

    #[test]
    fn key_packing_roundtrips() {
        for (a, b) in [(0u64, 0u64), (65, 78), (65535, 65535), (1, 0)] {
            assert_eq!(unpack_key2(pack_key2(a, b)), (a, b));
        }
        // Order matters: (a,b) and (b,a) pack differently.
        assert_ne!(pack_key2(1, 2), pack_key2(2, 1));
    }

    #[test]
    fn parallel_morsels_match_serial_scan_bitwise() {
        // Rows well past DEFAULT_CTA_CHUNK with long runs per key, so morsel
        // boundaries must snap; compare against a forced single-range scan.
        let n = 3 * DEFAULT_CTA_CHUNK + 17;
        let keys: Vec<u64> = (0..n).map(|i| (i / 40_000) as u64).collect();
        let vals: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let ints: Vec<i64> = (0..n).map(|i| i as i64 % 101 - 50).collect();
        let r = Relation::new(keys, vec![Column::F64(vals), Column::I64(ints)]).unwrap();
        let aggs = [Agg::Sum(0), Agg::Avg(0), Agg::Sum(1), Agg::Min(1), Agg::Count];
        let serial = aggregate_range(&r, &aggs, 0..r.len());
        let parallel = aggregate_by_key(&r, &aggs).unwrap();
        assert_eq!(serial.key, parallel.key);
        for (a, b) in serial.cols.iter().zip(&parallel.cols) {
            match (a, b) {
                (Column::I64(x), Column::I64(y)) => assert_eq!(x, y),
                (Column::F64(x), Column::F64(y)) => {
                    assert!(x.iter().zip(y).all(|(u, v)| u.to_bits() == v.to_bits()))
                }
                _ => panic!("column types diverged"),
            }
        }
    }

    #[test]
    fn group_aligned_ranges_land_on_run_boundaries() {
        let keys: Vec<u64> = (0..1000u64).map(|i| i / 90).collect();
        let ranges = group_aligned_ranges(&keys, 100);
        assert_eq!(ranges.first().unwrap().start, 0);
        assert_eq!(ranges.last().unwrap().end, keys.len());
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start);
            assert_ne!(keys[w[0].end - 1], keys[w[0].end], "cut inside a run");
        }
    }

    #[test]
    fn avg_of_i64_column_is_f64() {
        let r = Relation::new(vec![1, 1], vec![Column::I64(vec![1, 2])]).unwrap();
        let out = aggregate_by_key(&r, &[Agg::Avg(0)]).unwrap();
        assert_eq!(out.cols[0].as_f64().unwrap(), &[1.5]);
    }
}
