//! PROJECT: keep a subset of payload columns.
//!
//! Table I's `project [0,2] x` keeps fields 0 and 2; in our layout the key
//! is always retained and `keep` names the payload columns that survive.
//! The paper's Fig. 2(h) uses PROJECT to discard arithmetic sources and keep
//! only results.

use crate::data::{RelError, Relation, PAR_COPY_MIN_ROWS};

/// Re-key the relation by an i64 payload column: the column's values become
/// the tuple keys and the column leaves the payload. The query plans use
/// this before a SORT "by a different key" (paper Fig. 17(a)) — e.g. Q1
/// re-keys the wide lineitem table by its packed group attribute before
/// sorting and aggregating.
///
/// Values must be non-negative (keys are unsigned).
pub fn rekey(input: &Relation, col: usize) -> Result<Relation, RelError> {
    let vals = input
        .cols
        .get(col)
        .ok_or(RelError::NoSuchColumn { col, available: input.n_cols() })?
        .as_i64()
        .ok_or(RelError::SchemaMismatch)?;
    if vals.iter().any(|&v| v < 0) {
        return Err(RelError::SchemaMismatch);
    }
    let kept = input.cols.iter().enumerate().filter(|(i, _)| *i != col).map(|(_, c)| c);
    let (key, cols) = if input.len() < PAR_COPY_MIN_ROWS {
        (vals.iter().map(|&v| v as u64).collect(), kept.cloned().collect())
    } else {
        // Wide-relation materialization: one worker per surviving column
        // (plus one for the new key), so the copy's page faults spread
        // across threads instead of landing serially on the caller.
        std::thread::scope(|scope| {
            let kh = scope.spawn(|| vals.iter().map(|&v| v as u64).collect::<Vec<u64>>());
            let hs: Vec<_> = kept.map(|c| scope.spawn(move || c.clone())).collect();
            (
                kh.join().expect("rekey worker panicked"),
                hs.into_iter().map(|h| h.join().expect("rekey worker panicked")).collect(),
            )
        })
    };
    Relation::new(key, cols)
}

/// [`rekey`] for a caller that owns the input relation: only the new key
/// vector is materialized; the surviving payload columns move instead of
/// cloning. Used by the plan executor for single-consumer intermediates.
pub fn rekey_owned(mut input: Relation, col: usize) -> Result<Relation, RelError> {
    let key: Vec<u64> = {
        let vals = input
            .cols
            .get(col)
            .ok_or(RelError::NoSuchColumn { col, available: input.n_cols() })?
            .as_i64()
            .ok_or(RelError::SchemaMismatch)?;
        if vals.iter().any(|&v| v < 0) {
            return Err(RelError::SchemaMismatch);
        }
        vals.iter().map(|&v| v as u64).collect()
    };
    input.key = key;
    input.cols.remove(col);
    Ok(input)
}

/// Keep the key plus the payload columns listed in `keep`, in that order.
pub fn project(input: &Relation, keep: &[usize]) -> Result<Relation, RelError> {
    let mut srcs = Vec::with_capacity(keep.len());
    for &c in keep {
        srcs.push(
            input
                .cols
                .get(c)
                .ok_or(RelError::NoSuchColumn { col: c, available: input.n_cols() })?,
        );
    }
    if input.len() < PAR_COPY_MIN_ROWS {
        return Ok(Relation { key: input.key.clone(), cols: srcs.into_iter().cloned().collect() });
    }
    // Parallel per-column materialization, as in [`rekey`].
    let (key, cols) = std::thread::scope(|scope| {
        let kh = scope.spawn(|| input.key.clone());
        let hs: Vec<_> = srcs.into_iter().map(|c| scope.spawn(move || c.clone())).collect();
        (
            kh.join().expect("project worker panicked"),
            hs.into_iter().map(|h| h.join().expect("project worker panicked")).collect(),
        )
    });
    Ok(Relation { key, cols })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Column;

    fn x() -> Relation {
        // Table I: x = {(3,True,a), (4,True,a), (2,False,b)} with True/False
        // as 1/0 and a/b as 1/2. Key is field 0; payload cols are fields 1,2.
        Relation::new(vec![3, 4, 2], vec![Column::I64(vec![1, 1, 0]), Column::I64(vec![1, 1, 2])])
            .unwrap()
    }

    /// Table I: project [0,2] x → {(3,a), (4,a), (2,b)}.
    #[test]
    fn table1_project_example() {
        let out = project(&x(), &[1]).unwrap();
        assert_eq!(out.key, vec![3, 4, 2]);
        assert_eq!(out.n_cols(), 1);
        assert_eq!(out.cols[0].as_i64().unwrap(), &[1, 1, 2]);
    }

    #[test]
    fn project_can_duplicate_and_reorder() {
        let out = project(&x(), &[1, 0, 1]).unwrap();
        assert_eq!(out.n_cols(), 3);
        assert_eq!(out.cols[0].as_i64().unwrap(), &[1, 1, 2]);
        assert_eq!(out.cols[1].as_i64().unwrap(), &[1, 1, 0]);
    }

    #[test]
    fn project_to_key_only() {
        let out = project(&x(), &[]).unwrap();
        assert_eq!(out.n_cols(), 0);
        assert_eq!(out.key, vec![3, 4, 2]);
    }

    #[test]
    fn missing_column_is_reported() {
        assert!(matches!(
            project(&x(), &[5]),
            Err(RelError::NoSuchColumn { col: 5, available: 2 })
        ));
    }
}

#[cfg(test)]
mod rekey_tests {
    use super::*;
    use crate::data::Column;

    #[test]
    fn rekey_moves_column_to_key() {
        let r = Relation::new(
            vec![0, 1, 2],
            vec![Column::I64(vec![30, 10, 20]), Column::F64(vec![0.3, 0.1, 0.2])],
        )
        .unwrap();
        let out = rekey(&r, 0).unwrap();
        assert_eq!(out.key, vec![30, 10, 20]);
        assert_eq!(out.n_cols(), 1);
        assert_eq!(out.cols[0].as_f64().unwrap(), &[0.3, 0.1, 0.2]);
    }

    #[test]
    fn rekey_rejects_f64_and_negative() {
        let r = Relation::new(vec![0], vec![Column::F64(vec![1.0])]).unwrap();
        assert!(matches!(rekey(&r, 0), Err(RelError::SchemaMismatch)));
        let r = Relation::new(vec![0], vec![Column::I64(vec![-1])]).unwrap();
        assert!(matches!(rekey(&r, 0), Err(RelError::SchemaMismatch)));
    }

    #[test]
    fn rekey_missing_column() {
        let r = Relation::from_keys(vec![1]);
        assert!(matches!(rekey(&r, 0), Err(RelError::NoSuchColumn { .. })));
    }
}
