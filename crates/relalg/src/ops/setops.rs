//! UNION, INTERSECTION, DIFFERENCE — set semantics over whole tuples, as in
//! the paper's Table I examples (note `intersection` there matches `(2,b)`
//! by both fields, and `difference` removes tuples irrespective of listing
//! order).
//!
//! Implementation: a key-indexed probe table over `other`, with full-tuple
//! comparison on key hits. Works on unsorted inputs (Table I's literals are
//! unsorted) and preserves the left argument's tuple order.

use crate::data::{RelError, Relation};
use std::collections::HashMap;

fn key_index(r: &Relation) -> HashMap<u64, Vec<usize>> {
    let mut idx: HashMap<u64, Vec<usize>> = HashMap::with_capacity(r.len());
    for (i, &k) in r.key.iter().enumerate() {
        idx.entry(k).or_default().push(i);
    }
    idx
}

fn contains_tuple(
    idx: &HashMap<u64, Vec<usize>>,
    rel: &Relation,
    probe: &Relation,
    i: usize,
) -> bool {
    idx.get(&probe.key[i]).is_some_and(|cands| cands.iter().any(|&j| probe.tuple_eq(i, rel, j)))
}

/// Schema check shared by the set operators.
fn check_schemas(a: &Relation, b: &Relation) -> Result<(), RelError> {
    if a.n_cols() != b.n_cols() {
        return Err(RelError::SchemaMismatch);
    }
    for (x, y) in a.cols.iter().zip(&b.cols) {
        if std::mem::discriminant(x) != std::mem::discriminant(y) {
            return Err(RelError::SchemaMismatch);
        }
    }
    Ok(())
}

/// Tuples of `a` (in order, deduplicated) followed by tuples of `b` not in
/// `a`. Table I: `union x y → {(3,a), (4,a), (2,b), (0,a)}`.
pub fn union(a: &Relation, b: &Relation) -> Result<Relation, RelError> {
    check_schemas(a, b)?;
    let mut out = a.empty_like();
    // Dedup within `a` while preserving first occurrence.
    let mut seen = key_index(&out);
    for i in 0..a.len() {
        if !contains_tuple(&seen, &out, a, i) {
            seen.entry(a.key[i]).or_default().push(out.len());
            out.push_row_from(a, i);
        }
    }
    for i in 0..b.len() {
        if !contains_tuple(&seen, &out, b, i) {
            seen.entry(b.key[i]).or_default().push(out.len());
            out.push_row_from(b, i);
        }
    }
    Ok(out)
}

/// Tuples of `a` that also appear in `b` (in `a`'s order, deduplicated).
/// Table I: `intersection x y → {(2,b)}`.
pub fn intersection(a: &Relation, b: &Relation) -> Result<Relation, RelError> {
    check_schemas(a, b)?;
    let b_idx = key_index(b);
    let mut out = a.empty_like();
    let mut emitted = key_index(&out);
    for i in 0..a.len() {
        if contains_tuple(&b_idx, b, a, i) && !contains_tuple(&emitted, &out, a, i) {
            emitted.entry(a.key[i]).or_default().push(out.len());
            out.push_row_from(a, i);
        }
    }
    Ok(out)
}

/// Tuples of `a` that do not appear in `b`. Table I:
/// `difference x y → {(2,b)}`.
pub fn difference(a: &Relation, b: &Relation) -> Result<Relation, RelError> {
    check_schemas(a, b)?;
    let b_idx = key_index(b);
    let mut out = a.empty_like();
    for i in 0..a.len() {
        if !contains_tuple(&b_idx, b, a, i) {
            out.push_row_from(a, i);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Column;

    // Table I encodings: a=1, b=2, f=6, c=3.
    fn x() -> Relation {
        Relation::new(vec![3, 4, 2], vec![Column::I64(vec![1, 1, 2])]).unwrap()
    }

    fn y_union() -> Relation {
        // y = {(0,a), (2,b)}
        Relation::new(vec![0, 2], vec![Column::I64(vec![1, 2])]).unwrap()
    }

    /// Table I: union x y → {(3,a), (4,a), (2,b), (0,a)}.
    #[test]
    fn table1_union_example() {
        let out = union(&x(), &y_union()).unwrap();
        assert_eq!(out.key, vec![3, 4, 2, 0]);
        assert_eq!(out.cols[0].as_i64().unwrap(), &[1, 1, 2, 1]);
    }

    /// Table I: intersection x y → {(2,b)}.
    #[test]
    fn table1_intersection_example() {
        let out = intersection(&x(), &y_union()).unwrap();
        assert_eq!(out.key, vec![2]);
        assert_eq!(out.cols[0].as_i64().unwrap(), &[2]);
    }

    /// Table I: difference x y with y = {(4,a),(3,a)} → {(2,b)}.
    #[test]
    fn table1_difference_example() {
        let y = Relation::new(vec![4, 3], vec![Column::I64(vec![1, 1])]).unwrap();
        let out = difference(&x(), &y).unwrap();
        assert_eq!(out.key, vec![2]);
        assert_eq!(out.cols[0].as_i64().unwrap(), &[2]);
    }

    #[test]
    fn set_ops_compare_whole_tuples_not_keys() {
        // Same key 7, different payload: not equal tuples.
        let a = Relation::new(vec![7], vec![Column::I64(vec![1])]).unwrap();
        let b = Relation::new(vec![7], vec![Column::I64(vec![2])]).unwrap();
        assert!(intersection(&a, &b).unwrap().is_empty());
        assert_eq!(difference(&a, &b).unwrap().len(), 1);
        assert_eq!(union(&a, &b).unwrap().len(), 2);
    }

    #[test]
    fn union_dedupes_left_argument() {
        let a = Relation::from_keys(vec![1, 1, 2]);
        let b = Relation::from_keys(vec![]);
        assert_eq!(union(&a, &b).unwrap().key, vec![1, 2]);
    }

    #[test]
    fn schema_mismatch_rejected() {
        let a = Relation::new(vec![1], vec![Column::I64(vec![1])]).unwrap();
        let b = Relation::new(vec![1], vec![Column::F64(vec![1.0])]).unwrap();
        assert!(matches!(union(&a, &b), Err(RelError::SchemaMismatch)));
        let c = Relation::from_keys(vec![1]);
        assert!(matches!(intersection(&a, &c), Err(RelError::SchemaMismatch)));
    }

    #[test]
    fn difference_with_self_is_empty() {
        assert!(difference(&x(), &x()).unwrap().is_empty());
    }

    #[test]
    fn union_with_empty_is_identity() {
        let e = Relation::new(vec![], vec![Column::I64(vec![])]).unwrap();
        assert_eq!(union(&x(), &e).unwrap(), x());
    }
}
