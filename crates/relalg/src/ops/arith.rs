//! Elementwise arithmetic over columns (the paper's ARITH operator,
//! Fig. 2(e)/(h)).
//!
//! An arithmetic map runs one IR body per tuple; each body output becomes a
//! column of the result. Like SELECT, it is a partition/compute/gather
//! multi-stage kernel, and because each output element depends on exactly
//! one input element it is freely fusable with its neighbours (dependence
//! class (i) of §III-C).

use crate::data::{Column, RelError, Relation};
use crate::engine;
use kfusion_ir::batch::{mask_lane, BankView, CompiledKernel, BATCH_ROWS};
use kfusion_ir::interp::Machine;
use kfusion_ir::opt::infer_types;
use kfusion_ir::{KernelBody, Ty, Value};
use kfusion_vgpu::exec::{par_range_map, DEFAULT_CTA_CHUNK};

fn output_tys(body: &KernelBody) -> Vec<Ty> {
    let tys = infer_types(body);
    body.outputs
        .iter()
        // Untypeable outputs (rare: a bare input passthrough) default to i64.
        .map(|&r| tys[r as usize].unwrap_or(Ty::I64))
        .collect()
}

fn empty_cols(tys: &[Ty], cap: usize) -> Vec<Column> {
    tys.iter()
        .map(|t| match t {
            Ty::F64 => Column::F64(Vec::with_capacity(cap)),
            _ => Column::I64(Vec::with_capacity(cap)),
        })
        .collect()
}

/// Compute `body` per tuple; the result keeps the input keys and has one
/// column per body output (the sources are discarded, as PROJECT does in
/// the paper's ARITH→PROJECT idiom).
///
/// Runs on the vectorized batch engine when the body compiles against the
/// input's column types ([`crate::engine`]); otherwise falls back to the
/// per-tuple interpreter, preserving its error behavior.
pub fn arith_map(input: &Relation, body: &KernelBody) -> Result<Relation, RelError> {
    let mut out = Relation::default();
    arith_map_into(input, body, &mut out)?;
    Ok(out)
}

/// [`arith_map`] writing into a caller-owned relation (the `_into`
/// contract, DESIGN.md §14): `out` is cleared and refilled; its key and
/// column buffers are reused whenever the output schema matches what `out`
/// already holds, so repeated maps into one buffer stop allocating once
/// capacity has grown to fit.
pub fn arith_map_into(
    input: &Relation,
    body: &KernelBody,
    out: &mut Relation,
) -> Result<(), RelError> {
    let (tys, parts) = arith_parts(input, body)?;
    reset_cols(out, &tys);
    assemble_parallel(out, &input.key, &[], &parts);
    Ok(())
}

/// Assemble an ARITH output in parallel: the key copies from `key`, the
/// first `passthrough.len()` columns copy whole from `passthrough` (the
/// extend variant's sources), and the remaining columns concatenate the
/// per-chunk computed `parts` — every worker writing a disjoint window of
/// buffers sized once up front. Small results assemble serially.
fn assemble_parallel(
    out: &mut Relation,
    key: &[u64],
    passthrough: &[Column],
    parts: &[Vec<Column>],
) {
    let n = key.len();
    let n_pass = passthrough.len();
    if n < crate::data::PAR_COPY_MIN_ROWS {
        out.key.extend_from_slice(key);
        for (d, s) in out.cols.iter_mut().zip(passthrough) {
            d.extend_from(s);
        }
        for p in parts {
            for (d, s) in out.cols[n_pass..].iter_mut().zip(p.iter()) {
                d.extend_from(s);
            }
        }
        return;
    }
    let Relation { key: out_key, cols: out_cols } = out;
    crate::data::resize_zeroed_vec(out_key, n);
    for c in out_cols.iter_mut() {
        c.resize_zeroed(n);
    }
    let lens: Vec<usize> = parts.iter().map(|p| p.first().map_or(0, Column::len)).collect();
    let (pass_cols, computed_cols) = out_cols.split_at_mut(n_pass);
    let computed_wins = crate::data::col_windows(computed_cols, &lens);
    std::thread::scope(|scope| {
        scope.spawn(|| out_key.copy_from_slice(key));
        for (d, s) in pass_cols.iter_mut().zip(passthrough) {
            scope.spawn(move || match (d, s) {
                (Column::I64(d), Column::I64(s)) => d.copy_from_slice(s),
                (Column::F64(d), Column::F64(s)) => d.copy_from_slice(s),
                _ => unreachable!("schema fixed by reset_cols"),
            });
        }
        for (cw, part) in computed_wins.into_iter().zip(parts) {
            scope.spawn(move || {
                for (mut w, s) in cw.into_iter().zip(part) {
                    w.copy_from(s);
                }
            });
        }
    });
}

/// Per-chunk output columns of `body` over `input`, on whichever engine
/// applies — the compute stage both `_into` assemblers share.
fn arith_parts(
    input: &Relation,
    body: &KernelBody,
) -> Result<(Vec<Ty>, Vec<Vec<Column>>), RelError> {
    // ARITH preserves cardinality: rows out == rows in, counted up front.
    kfusion_trace::counter("kfusion_rows_in_total{op=\"arith\"}", input.len() as u64);
    kfusion_trace::counter("kfusion_rows_out_total{op=\"arith\"}", input.len() as u64);
    if engine::batch_enabled() && !input.is_empty() {
        let compiled = CompiledKernel::compile(body, &input.ir_slot_types())
            .ok()
            .filter(|k| k.check_binding(&input.ir_cols()).is_ok());
        match compiled {
            Some(k) => return Ok(arith_parts_batch(input, &k)),
            None => kfusion_trace::counter("kfusion_batch_fallback_total{op=\"arith\"}", 1),
        }
    }
    // Output column types: static inference can't see through input slots
    // (they are bound at execution time), so type from the first row's
    // actual values when there is one; inference covers the empty case.
    let tys = if input.is_empty() {
        output_tys(body)
    } else {
        let mut m = Machine::new();
        let mut row: Vec<Value> = Vec::new();
        input.ir_inputs(0, &mut row);
        (0..body.outputs.len())
            .map(|slot| Ok(m.run_output(body, &row, slot)?.ty()))
            .collect::<Result<Vec<Ty>, RelError>>()?
    };
    let parts: Vec<Result<Vec<Column>, RelError>> =
        par_range_map(input.len(), DEFAULT_CTA_CHUNK, |_cta, range| {
            let mut m = Machine::for_body(body);
            let mut row: Vec<Value> = Vec::with_capacity(1 + input.n_cols());
            let mut cols = empty_cols(&tys, range.len());
            for i in range {
                input.ir_inputs(i, &mut row);
                for (slot, col) in cols.iter_mut().enumerate() {
                    let v = m.run_output(body, &row, slot)?;
                    push_coerced(col, v)?;
                }
            }
            Ok(cols)
        });
    let parts = parts.into_iter().collect::<Result<Vec<Vec<Column>>, RelError>>()?;
    Ok((tys, parts))
}

/// Clear `out` and make its columns match `tys` exactly, reusing each
/// already-matching column buffer (a bool output occupies an i64 column,
/// as in the scalar path). Mismatched columns become *empty* vectors on
/// purpose: the parallel assembler then requests fresh zeroed allocations,
/// whose pages fault in on the workers that first write them rather than
/// serially up front.
fn reset_cols(out: &mut Relation, tys: &[Ty]) {
    out.key.clear();
    let matches = out.cols.len() == tys.len()
        && out.cols.iter().zip(tys).all(|(c, t)| match (c, t) {
            (Column::F64(_), Ty::F64) => true,
            (Column::I64(_), Ty::F64) => false,
            (Column::I64(_), _) => true,
            _ => false,
        });
    if matches {
        for c in &mut out.cols {
            c.clear();
        }
    } else {
        out.cols = empty_cols(tys, 0);
    }
}

/// Batch-engine ARITH: each CTA evaluates the compiled kernel over
/// [`BATCH_ROWS`]-row batches and appends whole typed lanes to its output
/// columns. Boolean outputs become i64 flag columns, as in the scalar path.
fn arith_parts_batch(input: &Relation, k: &CompiledKernel) -> (Vec<Ty>, Vec<Vec<Column>>) {
    let tys: Vec<Ty> = (0..k.n_outputs()).map(|s| k.output_ty(s)).collect();
    let cols_in = input.ir_cols();
    let parts: Vec<Vec<Column>> = par_range_map(input.len(), DEFAULT_CTA_CHUNK, |_cta, range| {
        crate::scratch::with_scratch(|s| {
            // Per-morsel setup; the per-batch loop below runs inside a
            // steady-state region and appends into preallocated columns.
            let mut bm = s.machine(k);
            let mut cols = empty_cols(&tys, range.len());
            {
                let _steady = kfusion_trace::allocwatch::region();
                let mut base = range.start;
                while base < range.end {
                    let n = (range.end - base).min(BATCH_ROWS);
                    bm.run(k, &cols_in, base, n);
                    for (slot, col) in cols.iter_mut().enumerate() {
                        match (col, bm.output(k, slot)) {
                            (Column::I64(c), BankView::I64(v)) => c.extend_from_slice(&v[..n]),
                            (Column::F64(c), BankView::F64(v)) => c.extend_from_slice(&v[..n]),
                            (Column::I64(c), BankView::Bool(m)) => {
                                c.extend((0..n).map(|j| mask_lane(m, j) as i64))
                            }
                            _ => unreachable!("output column type fixed by compile"),
                        }
                    }
                    base += n;
                }
            }
            s.put_machine(k, bm);
            cols
        })
    });
    (tys, parts)
}

/// Like [`arith_map`] but *appends* the computed columns to the existing
/// payload instead of replacing it.
pub fn arith_extend(input: &Relation, body: &KernelBody) -> Result<Relation, RelError> {
    let mut out = Relation::default();
    arith_extend_into(input, body, &mut out)?;
    Ok(out)
}

/// [`arith_extend`] writing into a caller-owned relation (the `_into`
/// contract, DESIGN.md §14). The output schema is the input's columns
/// followed by one column per body output; as with [`arith_map_into`],
/// `out`'s buffers are reused when they already match that schema.
pub fn arith_extend_into(
    input: &Relation,
    body: &KernelBody,
    out: &mut Relation,
) -> Result<(), RelError> {
    let (tys, parts) = arith_parts(input, body)?;
    let mut all_tys: Vec<Ty> = input
        .cols
        .iter()
        .map(|c| match c {
            Column::F64(_) => Ty::F64,
            Column::I64(_) => Ty::I64,
        })
        .collect();
    all_tys.extend_from_slice(&tys);
    reset_cols(out, &all_tys);
    assemble_parallel(out, &input.key, &input.cols, &parts);
    Ok(())
}

/// [`arith_extend`] for a caller that owns the input relation: the computed
/// columns are appended in place, so the key and the existing payload are
/// never copied at all. The plan executor routes single-consumer owned
/// intermediates here — on the TPC-H plans that removes the widest copies
/// of the whole query.
pub fn arith_extend_owned(mut input: Relation, body: &KernelBody) -> Result<Relation, RelError> {
    let (tys, parts) = arith_parts(&input, body)?;
    let n = input.len();
    let mut computed = empty_cols(&tys, 0);
    if n < crate::data::PAR_COPY_MIN_ROWS {
        for p in &parts {
            for (d, s) in computed.iter_mut().zip(p) {
                d.extend_from(s);
            }
        }
    } else {
        for c in computed.iter_mut() {
            c.resize_zeroed(n);
        }
        let lens: Vec<usize> = parts.iter().map(|p| p.first().map_or(0, Column::len)).collect();
        let wins = crate::data::col_windows(&mut computed, &lens);
        std::thread::scope(|scope| {
            for (cw, part) in wins.into_iter().zip(&parts) {
                scope.spawn(move || {
                    for (mut w, s) in cw.into_iter().zip(part) {
                        w.copy_from(s);
                    }
                });
            }
        });
    }
    input.cols.extend(computed);
    Ok(input)
}

fn push_coerced(col: &mut Column, v: Value) -> Result<(), RelError> {
    match (col, v) {
        (Column::I64(c), Value::I64(x)) => c.push(x),
        (Column::I64(c), Value::Bool(x)) => c.push(x as i64),
        (Column::F64(c), Value::F64(x)) => c.push(x),
        _ => {
            return Err(RelError::Eval(kfusion_ir::interp::EvalError::TypeMismatch {
                what: "arith output column",
            }))
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicates;
    use kfusion_ir::builder::{BodyBuilder, Expr};

    #[test]
    fn discounted_price_column() {
        let r = Relation::new(
            vec![1, 2],
            vec![Column::F64(vec![100.0, 50.0]), Column::F64(vec![0.1, 0.5])],
        )
        .unwrap();
        let out = arith_map(&r, &predicates::discounted_price(0, 1)).unwrap();
        assert_eq!(out.n_cols(), 1);
        assert_eq!(out.cols[0].as_f64().unwrap(), &[90.0, 25.0]);
        assert_eq!(out.key, vec![1, 2]);
    }

    #[test]
    fn multi_output_body_makes_multiple_columns() {
        let r = Relation::new(vec![1, 2, 3], vec![Column::I64(vec![10, 20, 30])]).unwrap();
        let mut b = BodyBuilder::new(2);
        b.emit_output(Expr::input(1).add(Expr::lit(1i64)));
        b.emit_output(Expr::input(1).mul(Expr::lit(2i64)));
        let out = arith_map(&r, &b.build()).unwrap();
        assert_eq!(out.n_cols(), 2);
        assert_eq!(out.cols[0].as_i64().unwrap(), &[11, 21, 31]);
        assert_eq!(out.cols[1].as_i64().unwrap(), &[20, 40, 60]);
    }

    #[test]
    fn extend_keeps_sources() {
        let r = Relation::new(vec![1], vec![Column::I64(vec![5])]).unwrap();
        let mut b = BodyBuilder::new(2);
        b.emit_output(Expr::input(1).neg());
        let out = arith_extend(&r, &b.build()).unwrap();
        assert_eq!(out.n_cols(), 2);
        assert_eq!(out.cols[0].as_i64().unwrap(), &[5]);
        assert_eq!(out.cols[1].as_i64().unwrap(), &[-5]);
    }

    #[test]
    fn empty_input_keeps_schema() {
        let r = Relation::new(vec![], vec![Column::F64(vec![])]).unwrap();
        let out = arith_map(&r, &predicates::discounted_price(0, 0)).unwrap();
        assert_eq!(out.n_cols(), 1);
        assert!(out.is_empty());
        assert!(out.cols[0].as_f64().is_some(), "type inferred even when empty");
    }

    #[test]
    fn bool_outputs_become_i64_flags() {
        let r = Relation::from_keys(vec![1, 5, 9]);
        let mut b = BodyBuilder::new(1);
        b.emit_output(Expr::input(0).gt(Expr::lit(4i64)));
        let out = arith_map(&r, &b.build()).unwrap();
        assert_eq!(out.cols[0].as_i64().unwrap(), &[0, 1, 1]);
    }

    #[test]
    fn batch_and_scalar_engines_agree_bitwise() {
        let n = 5000usize;
        let keys: Vec<u64> = (0..n as u64).collect();
        let q: Vec<i64> = (0..n).map(|i| i as i64 * 31 - 700).collect();
        let p: Vec<f64> = (0..n).map(|i| i as f64 * 0.25 - 100.0).collect();
        let r = Relation::new(keys, vec![Column::I64(q), Column::F64(p)]).unwrap();
        let mut b = BodyBuilder::new(3);
        b.emit_output(Expr::input(2).mul(Expr::lit(1.0f64).sub(Expr::input(2))));
        b.emit_output(Expr::input(1).mul(Expr::input(1)).add(Expr::input(0)));
        b.emit_output(Expr::input(1).gt(Expr::lit(100i64)));
        let body = b.build();
        engine::set_batch_enabled(false);
        let scalar = arith_map(&r, &body).unwrap();
        engine::set_batch_enabled(true);
        let batch = arith_map(&r, &body).unwrap();
        assert_eq!(scalar.key, batch.key);
        for (a, c) in scalar.cols.iter().zip(&batch.cols) {
            match (a, c) {
                (Column::I64(x), Column::I64(y)) => assert_eq!(x, y),
                (Column::F64(x), Column::F64(y)) => {
                    assert!(x.iter().zip(y).all(|(u, v)| u.to_bits() == v.to_bits()))
                }
                _ => panic!("engines produced different column types"),
            }
        }
    }
}
