//! The relational operators of the paper's Table I, each implemented as a
//! functional host-side computation structured like its multi-stage GPU
//! kernel (partition → compute → buffer → gather).

pub mod aggregate;
pub mod arith;
pub mod join;
pub mod product;
pub mod project;
pub mod select;
pub mod setops;
pub mod sort;

pub use aggregate::{
    aggregate_all, aggregate_by_key, aggregate_by_key_into, pack_key2, unpack_key2, Agg,
};
pub use arith::{arith_extend, arith_extend_into, arith_extend_owned, arith_map, arith_map_into};
pub use join::{antijoin, column_join, join, semijoin};
pub use product::product;
pub use project::{project, rekey, rekey_owned};
pub use select::{count_selected, select, select_chain_unfused, select_into};
pub use setops::{difference, intersection, union};
pub use sort::{bitonic_pass_count, bitonic_sort, sort, unique, SortBy};
