//! The relational operators of the paper's Table I, each implemented as a
//! functional host-side computation structured like its multi-stage GPU
//! kernel (partition → compute → buffer → gather).

pub mod aggregate;
pub mod arith;
pub mod join;
pub mod product;
pub mod project;
pub mod select;
pub mod setops;
pub mod sort;

pub use aggregate::{aggregate_all, aggregate_by_key, pack_key2, unpack_key2, Agg};
pub use arith::{arith_extend, arith_map};
pub use join::{antijoin, column_join, join, semijoin};
pub use product::product;
pub use project::{project, rekey};
pub use select::{count_selected, select, select_chain_unfused};
pub use setops::{difference, intersection, union};
pub use sort::{bitonic_pass_count, bitonic_sort, sort, unique, SortBy};
