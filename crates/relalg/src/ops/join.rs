//! JOIN: sort-merge equijoin on the tuple key.
//!
//! The substrate stores relations key-sorted, so the equijoin is a linear
//! merge with group-wise cross products for duplicate keys. Semijoin and
//! antijoin variants implement the EXISTS / NOT EXISTS sub-queries of
//! TPC-H Q21.

use crate::data::{RelError, Relation};

fn group_end(keys: &[u64], start: usize) -> usize {
    let k = keys[start];
    let mut end = start + 1;
    while end < keys.len() && keys[end] == k {
        end += 1;
    }
    end
}

/// Inner equijoin of two key-sorted relations. Output schema: key, then
/// `a`'s payload columns, then `b`'s. Duplicate keys produce the group
/// cross-product, ordered `a`-major.
pub fn join(a: &Relation, b: &Relation) -> Result<Relation, RelError> {
    a.require_sorted()?;
    b.require_sorted()?;
    kfusion_trace::counter("kfusion_rows_in_total{op=\"join\"}", (a.len() + b.len()) as u64);
    let mut out_key = Vec::new();
    let mut a_idx: Vec<usize> = Vec::new();
    let mut b_idx: Vec<usize> = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a.key[i].cmp(&b.key[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let (ae, be) = (group_end(&a.key, i), group_end(&b.key, j));
                for ai in i..ae {
                    for bi in j..be {
                        out_key.push(a.key[ai]);
                        a_idx.push(ai);
                        b_idx.push(bi);
                    }
                }
                i = ae;
                j = be;
            }
        }
    }
    kfusion_trace::counter("kfusion_rows_out_total{op=\"join\"}", out_key.len() as u64);
    let mut cols = Vec::with_capacity(a.n_cols() + b.n_cols());
    for c in &a.cols {
        cols.push(c.gather(&a_idx));
    }
    for c in &b.cols {
        cols.push(c.gather(&b_idx));
    }
    Relation::new(out_key, cols)
}

/// Column-combining join: zip two relations with *identical* key vectors
/// into one wide relation (key + `a`'s columns + `b`'s columns).
///
/// This is the join the paper's Q1 plan uses to assemble a seven-column
/// table from per-column relations keyed by row id (Fig. 17(a)). Because
/// output element `i` depends only on input elements `i`, it is dependence
/// class (i) of §III-C — freely fusable *and* fissionable, unlike the
/// general merge join.
pub fn column_join(a: &Relation, b: &Relation) -> Result<Relation, RelError> {
    if a.key != b.key {
        return Err(RelError::SchemaMismatch);
    }
    let mut cols = Vec::with_capacity(a.n_cols() + b.n_cols());
    cols.extend(a.cols.iter().cloned());
    cols.extend(b.cols.iter().cloned());
    Relation::new(a.key.clone(), cols)
}

/// Semijoin: tuples of `a` whose key appears in `b` (EXISTS). Keeps `a`'s
/// schema; duplicate matches in `b` do not duplicate output.
pub fn semijoin(a: &Relation, b: &Relation) -> Result<Relation, RelError> {
    filter_by_membership(a, b, true)
}

/// Antijoin: tuples of `a` whose key does **not** appear in `b`
/// (NOT EXISTS). Keeps `a`'s schema.
pub fn antijoin(a: &Relation, b: &Relation) -> Result<Relation, RelError> {
    filter_by_membership(a, b, false)
}

fn filter_by_membership(
    a: &Relation,
    b: &Relation,
    keep_present: bool,
) -> Result<Relation, RelError> {
    a.require_sorted()?;
    b.require_sorted()?;
    let mut out = a.empty_like();
    let mut j = 0usize;
    for i in 0..a.len() {
        while j < b.len() && b.key[j] < a.key[i] {
            j += 1;
        }
        let present = j < b.len() && b.key[j] == a.key[i];
        if present == keep_present {
            out.push_row_from(a, i);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Column;

    /// Table I JOIN example: x = {(3,a),(4,a),(2,b)}, y = {(2,f),(3,c)};
    /// join x y → {(2,b,f),(3,a,c)} (we emit key order; the paper's listing
    /// order is presentation only).
    #[test]
    fn table1_join_example() {
        // a=1 b=2 c=3 f=6.
        let mut x = Relation::new(vec![3, 4, 2], vec![Column::I64(vec![1, 1, 2])]).unwrap();
        let mut y = Relation::new(vec![2, 3], vec![Column::I64(vec![6, 3])]).unwrap();
        x.sort_by_key();
        y.sort_by_key();
        let out = join(&x, &y).unwrap();
        assert_eq!(out.key, vec![2, 3]);
        assert_eq!(out.cols[0].as_i64().unwrap(), &[2, 1]);
        assert_eq!(out.cols[1].as_i64().unwrap(), &[6, 3]);
    }

    #[test]
    fn duplicate_keys_cross_product() {
        let a = Relation::new(vec![1, 1, 2], vec![Column::I64(vec![10, 11, 20])]).unwrap();
        let b = Relation::new(vec![1, 1], vec![Column::I64(vec![100, 101])]).unwrap();
        let out = join(&a, &b).unwrap();
        assert_eq!(out.key, vec![1, 1, 1, 1]);
        assert_eq!(out.cols[0].as_i64().unwrap(), &[10, 10, 11, 11]);
        assert_eq!(out.cols[1].as_i64().unwrap(), &[100, 101, 100, 101]);
    }

    #[test]
    fn unsorted_input_is_rejected() {
        let a = Relation::from_keys(vec![2, 1]);
        let b = Relation::from_keys(vec![1]);
        assert!(matches!(join(&a, &b), Err(RelError::NotSorted)));
    }

    #[test]
    fn disjoint_keys_give_empty_join() {
        let a = Relation::from_keys(vec![1, 3, 5]);
        let b = Relation::from_keys(vec![2, 4, 6]);
        assert!(join(&a, &b).unwrap().is_empty());
    }

    #[test]
    fn join_as_column_combiner() {
        // The paper's Q1 plan joins per-column relations on row-id to build
        // a wide table (Fig. 17(a)): same keys, different payloads.
        let c1 = Relation::new(vec![0, 1, 2], vec![Column::F64(vec![1.0, 2.0, 3.0])]).unwrap();
        let c2 = Relation::new(vec![0, 1, 2], vec![Column::I64(vec![7, 8, 9])]).unwrap();
        let wide = join(&c1, &c2).unwrap();
        assert_eq!(wide.n_cols(), 2);
        assert_eq!(wide.len(), 3);
        assert_eq!(wide.cols[1].as_i64().unwrap(), &[7, 8, 9]);
    }

    #[test]
    fn column_join_zips_identical_keys() {
        let a = Relation::new(vec![0, 1], vec![Column::F64(vec![1.0, 2.0])]).unwrap();
        let b = Relation::new(vec![0, 1], vec![Column::I64(vec![5, 6])]).unwrap();
        let wide = column_join(&a, &b).unwrap();
        assert_eq!(wide.n_cols(), 2);
        assert_eq!(wide.cols[0].as_f64().unwrap(), &[1.0, 2.0]);
        assert_eq!(wide.cols[1].as_i64().unwrap(), &[5, 6]);
    }

    #[test]
    fn column_join_rejects_mismatched_keys() {
        let a = Relation::from_keys(vec![0, 1]);
        let b = Relation::from_keys(vec![0, 2]);
        assert!(matches!(column_join(&a, &b), Err(RelError::SchemaMismatch)));
    }

    #[test]
    fn semijoin_and_antijoin_partition_input() {
        let a = Relation::from_keys(vec![1, 2, 3, 4, 5]);
        let b = Relation::from_keys(vec![2, 4, 9]);
        let semi = semijoin(&a, &b).unwrap();
        let anti = antijoin(&a, &b).unwrap();
        assert_eq!(semi.key, vec![2, 4]);
        assert_eq!(anti.key, vec![1, 3, 5]);
        assert_eq!(semi.len() + anti.len(), a.len());
    }

    #[test]
    fn semijoin_does_not_duplicate_on_multi_match() {
        let a = Relation::from_keys(vec![1, 2]);
        let b = Relation::from_keys(vec![2, 2, 2]);
        assert_eq!(semijoin(&a, &b).unwrap().key, vec![2]);
    }
}
