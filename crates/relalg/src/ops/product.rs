//! PRODUCT: Cartesian product.
//!
//! Table I: `product x y` concatenates every `y` tuple onto every `x`
//! tuple; the result keeps `x`'s key and absorbs `y`'s key as a payload
//! column (the paper's example keeps `y`'s first field inline:
//! `(3,a,True,2)`).

use crate::data::{Column, RelError, Relation};

/// Cartesian product, `x`-major. Output schema: `x.key`, `x` payload
/// columns, `y.key` as an i64 column, `y` payload columns.
pub fn product(x: &Relation, y: &Relation) -> Result<Relation, RelError> {
    let n = x.len() * y.len();
    let mut key = Vec::with_capacity(n);
    let mut x_idx = Vec::with_capacity(n);
    let mut y_idx = Vec::with_capacity(n);
    for i in 0..x.len() {
        for j in 0..y.len() {
            key.push(x.key[i]);
            x_idx.push(i);
            y_idx.push(j);
        }
    }
    let mut cols = Vec::with_capacity(x.n_cols() + 1 + y.n_cols());
    for c in &x.cols {
        cols.push(c.gather(&x_idx));
    }
    cols.push(Column::I64(y_idx.iter().map(|&j| y.key[j] as i64).collect()));
    for c in &y.cols {
        cols.push(c.gather(&y_idx));
    }
    Relation::new(key, cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table I PRODUCT example: x = {(3,a),(4,a)}, y = {(True,2)};
    /// product x y → {(3,a,True,2), (4,a,True,2)}.
    #[test]
    fn table1_product_example() {
        // a=1; True=1.
        let x = Relation::new(vec![3, 4], vec![Column::I64(vec![1, 1])]).unwrap();
        let y = Relation::new(vec![1], vec![Column::I64(vec![2])]).unwrap();
        let out = product(&x, &y).unwrap();
        assert_eq!(out.key, vec![3, 4]);
        assert_eq!(out.n_cols(), 3);
        assert_eq!(out.cols[0].as_i64().unwrap(), &[1, 1]); // x payload "a"
        assert_eq!(out.cols[1].as_i64().unwrap(), &[1, 1]); // y key "True"
        assert_eq!(out.cols[2].as_i64().unwrap(), &[2, 2]); // y payload 2
    }

    #[test]
    fn cardinality_is_product() {
        let x = Relation::from_keys(vec![1, 2, 3]);
        let y = Relation::from_keys(vec![10, 20]);
        let out = product(&x, &y).unwrap();
        assert_eq!(out.len(), 6);
        assert_eq!(out.key, vec![1, 1, 2, 2, 3, 3]);
        assert_eq!(out.cols[0].as_i64().unwrap(), &[10, 20, 10, 20, 10, 20]);
    }

    #[test]
    fn empty_side_gives_empty_product() {
        let x = Relation::from_keys(vec![1, 2]);
        let y = Relation::from_keys(vec![]);
        assert!(product(&x, &y).unwrap().is_empty());
        assert!(product(&y, &x).unwrap().is_empty());
    }
}
