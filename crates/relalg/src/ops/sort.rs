//! SORT and UNIQUE — the fusion *barriers*.
//!
//! The paper singles these out (§III-C): "SORT and UNIQUE cannot be fused
//! with any other operators", because every output element depends on the
//! whole input (dependence class (ii)). They bound fused regions in both
//! TPC-H query plans (Fig. 17).
//!
//! The functional sort is a parallel chunk-sort + k-way merge — the same
//! BSP shape a GPU merge sort has, and the cost model prices it as
//! `log2(n)` full read+write passes, which is what makes SORT ~71% of the
//! un-optimized Q1 runtime as the paper reports.

use crate::data::{RelError, Relation};
use kfusion_vgpu::exec::{par_range_map, DEFAULT_CTA_CHUNK};

/// What to order by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortBy {
    /// The tuple key.
    Key,
    /// An i64 payload column (tuples reordered; keys carried along).
    I64Col(usize),
    /// An f64 payload column, in `f64::total_cmp` order (so `-0.0 < 0.0`
    /// and NaNs sort deterministically at the extremes).
    F64Col(usize),
    /// The tuple key, descending.
    KeyDesc,
    /// An i64 payload column, descending.
    I64ColDesc(usize),
    /// An f64 payload column, descending (`f64::total_cmp` order reversed).
    F64ColDesc(usize),
}

impl SortBy {
    /// The payload column this sort keys on, if any.
    pub fn col(&self) -> Option<usize> {
        match self {
            SortBy::Key | SortBy::KeyDesc => None,
            SortBy::I64Col(c)
            | SortBy::F64Col(c)
            | SortBy::I64ColDesc(c)
            | SortBy::F64ColDesc(c) => Some(*c),
        }
    }

    /// Whether the order is descending.
    pub fn descending(&self) -> bool {
        matches!(self, SortBy::KeyDesc | SortBy::I64ColDesc(_) | SortBy::F64ColDesc(_))
    }
}

/// Order-preserving map f64 -> u64 matching [`f64::total_cmp`]: flip all
/// bits of negatives, flip only the sign bit of non-negatives.
fn f64_rank(v: f64) -> u64 {
    let b = v.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b ^ (1 << 63)
    }
}

/// Extract the u64 rank vector a sort orders by. Ranks are ascending; a
/// descending sort inverts the bits (stability ties still break by
/// ascending original index, which is what a stable descending SQL sort
/// does).
fn rank_vec(input: &Relation, by: SortBy) -> Result<Vec<u64>, RelError> {
    let ascending: Vec<u64> = match by {
        SortBy::Key | SortBy::KeyDesc => input.key.clone(),
        SortBy::I64Col(c) | SortBy::I64ColDesc(c) => {
            let col = input
                .cols
                .get(c)
                .ok_or(RelError::NoSuchColumn { col: c, available: input.n_cols() })?
                .as_i64()
                .ok_or(RelError::SchemaMismatch)?;
            // Order-preserving map i64 -> u64 so one comparator serves both.
            col.iter().map(|&v| (v as u64) ^ (1 << 63)).collect()
        }
        SortBy::F64Col(c) | SortBy::F64ColDesc(c) => {
            let col = input
                .cols
                .get(c)
                .ok_or(RelError::NoSuchColumn { col: c, available: input.n_cols() })?
                .as_f64()
                .ok_or(RelError::SchemaMismatch)?;
            col.iter().map(|&v| f64_rank(v)).collect()
        }
    };
    Ok(if by.descending() { ascending.into_iter().map(|r| !r).collect() } else { ascending })
}

/// Sort the relation (stable).
pub fn sort(input: &Relation, by: SortBy) -> Result<Relation, RelError> {
    let rank = rank_vec(input, by)?;
    let idx = sort_index(&rank);
    Ok(input.gathered(&idx))
}

/// Stable sort permutation over `rank`: position `p` of the output holds
/// `idx[p]`, the input row ranked `p`-th by `(rank, original index)`.
///
/// Picks between two stable algorithms that produce the *identical*
/// permutation (both order by `(rank, index)`), so the choice is invisible
/// to callers and to cross-engine bit-equality:
/// - a two-pass counting sort when the rank range is small relative to `n`
///   (the common case after REKEY packs a handful of group codes — Q1's
///   post-rekey sort has ~6 distinct ranks, turning `n log n` comparisons
///   into two linear sweeps);
/// - the parallel chunk-sort + pairwise-merge otherwise (the BSP shape the
///   cost model prices).
fn sort_index(rank: &[u64]) -> Vec<usize> {
    let n = rank.len();
    if n == 0 {
        return Vec::new();
    }
    let (mut lo, mut hi) = (u64::MAX, 0u64);
    for &r in rank {
        lo = lo.min(r);
        hi = hi.max(r);
    }
    // Counting-sort threshold: bucket array must stay O(n) (+ a fixed floor
    // so tiny inputs with moderate ranges still qualify).
    let limit = 4 * (n as u64) + 65_536;
    if hi - lo < limit {
        return counting_sort_index(rank, lo, (hi - lo) as usize + 1);
    }
    merge_sort_index(rank)
}

/// Stable counting sort: histogram, exclusive prefix sum, then a scatter in
/// original index order (equal ranks keep ascending index — the same
/// tie-break as `merge_sort_index`).
fn counting_sort_index(rank: &[u64], lo: u64, buckets: usize) -> Vec<usize> {
    let mut offsets = vec![0usize; buckets];
    for &r in rank {
        offsets[(r - lo) as usize] += 1;
    }
    let mut sum = 0usize;
    for slot in offsets.iter_mut() {
        let count = *slot;
        *slot = sum;
        sum += count;
    }
    let mut idx = vec![0usize; rank.len()];
    for (i, &r) in rank.iter().enumerate() {
        let b = (r - lo) as usize;
        idx[offsets[b]] = i;
        offsets[b] += 1;
    }
    idx
}

fn merge_sort_index(rank: &[u64]) -> Vec<usize> {
    let n = rank.len();
    // Parallel chunk sort (each "CTA" sorts its partition)...
    let mut runs: Vec<Vec<usize>> = par_range_map(n, DEFAULT_CTA_CHUNK.max(1), |_cta, range| {
        let mut idx: Vec<usize> = range.collect();
        idx.sort_by_key(|&i| (rank[i], i)); // (rank, index) => stable
        idx
    });
    // ...then k-way merge by repeated pairwise merging (log2(k) rounds).
    while runs.len() > 1 {
        let mut next = Vec::with_capacity(runs.len().div_ceil(2));
        let mut it = runs.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(merge_runs(&a, &b, rank)),
                None => next.push(a),
            }
        }
        runs = next;
    }
    runs.pop().unwrap_or_default()
}

fn merge_runs(a: &[usize], b: &[usize], rank: &[u64]) -> Vec<usize> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        // Tie-break on original index keeps the merge stable.
        if (rank[a[i]], a[i]) <= (rank[b[j]], b[j]) {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Sort via an actual **bitonic sorting network** — the algorithm family
/// 2012-era GPU libraries used and the one the cost model prices
/// (`log²n/4` global passes). Provided alongside the merge sort so the
/// model's structural assumptions are checkable against a real network:
/// the test suite counts the network's compare-exchange passes and verifies
/// both sorts produce identical orderings.
///
/// The network sorts a power-of-two padded index array; each pass is a
/// data-parallel sweep (run across CTA-shaped chunks), exactly the shape a
/// GPU implementation has.
pub fn bitonic_sort(input: &Relation, by: SortBy) -> Result<Relation, RelError> {
    let n = input.len();
    if n <= 1 {
        return Ok(input.clone());
    }
    let rank = rank_vec(input, by)?;
    // Pad to a power of two with +inf sentinels (index n == sentinel).
    let m = n.next_power_of_two();
    let sentinel = u64::MAX;
    let key_of =
        |idx: usize| if idx < n { (rank[idx], idx as u64) } else { (sentinel, idx as u64) };
    let mut idx: Vec<usize> = (0..m).collect();
    // The classic network: k = subsequence size, j = compare distance.
    let mut k = 2usize;
    while k <= m {
        let mut j = k / 2;
        while j > 0 {
            // One full compare-exchange pass (data-parallel in a real
            // kernel; sequential sweep here — the partners are disjoint).
            for i in 0..m {
                let partner = i ^ j;
                if partner > i {
                    let ascending = i & k == 0;
                    let (a, b) = (idx[i], idx[partner]);
                    if (key_of(a) > key_of(b)) == ascending {
                        idx.swap(i, partner);
                    }
                }
            }
            j /= 2;
        }
        k *= 2;
    }
    let order: Vec<usize> = idx.into_iter().filter(|&i| i < n).collect();
    Ok(input.gathered(&order))
}

/// Number of compare-exchange passes a bitonic network over `n` elements
/// performs — the quantity the SORT cost model charges global-memory
/// traffic for.
pub fn bitonic_pass_count(n: u64) -> u64 {
    if n <= 1 {
        return 0;
    }
    let lg = 64 - (n.next_power_of_two() - 1).leading_zeros() as u64;
    lg * (lg + 1) / 2
}

/// UNIQUE: drop consecutive duplicate tuples (full-width comparison) from a
/// sorted relation.
pub fn unique(input: &Relation) -> Result<Relation, RelError> {
    input.require_sorted()?;
    let mut out = input.empty_like();
    for i in 0..input.len() {
        let dup = i > 0 && input.tuple_eq(i, input, i - 1);
        if !dup {
            out.push_row_from(input, i);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Column;

    #[test]
    fn sort_by_key_small() {
        let r = Relation::new(vec![3, 1, 2], vec![Column::I64(vec![30, 10, 20])]).unwrap();
        let out = sort(&r, SortBy::Key).unwrap();
        assert_eq!(out.key, vec![1, 2, 3]);
        assert_eq!(out.cols[0].as_i64().unwrap(), &[10, 20, 30]);
    }

    #[test]
    fn sort_by_column_carries_key() {
        let r = Relation::new(vec![1, 2, 3], vec![Column::I64(vec![30, 10, 20])]).unwrap();
        let out = sort(&r, SortBy::I64Col(0)).unwrap();
        assert_eq!(out.cols[0].as_i64().unwrap(), &[10, 20, 30]);
        assert_eq!(out.key, vec![2, 3, 1]);
    }

    #[test]
    fn sort_handles_negative_column_values() {
        let r = Relation::new(vec![1, 2, 3], vec![Column::I64(vec![5, -7, 0])]).unwrap();
        let out = sort(&r, SortBy::I64Col(0)).unwrap();
        assert_eq!(out.cols[0].as_i64().unwrap(), &[-7, 0, 5]);
    }

    #[test]
    fn large_parallel_sort_is_correct_and_stable() {
        // Big enough to force multiple chunks and merge rounds.
        let n = 300_000usize;
        let key: Vec<u64> = (0..n as u64).map(|i| (i * 2_654_435_761) % 1000).collect();
        let payload: Vec<i64> = (0..n as i64).collect();
        let r = Relation::new(key.clone(), vec![Column::I64(payload)]).unwrap();
        let out = sort(&r, SortBy::Key).unwrap();
        assert!(out.is_key_sorted());
        assert_eq!(out.len(), n);
        // Stability: within equal keys, original order (= payload order).
        let pay = out.cols[0].as_i64().unwrap();
        for w in 0..n - 1 {
            if out.key[w] == out.key[w + 1] {
                assert!(pay[w] < pay[w + 1], "unstable at {w}");
            }
        }
    }

    #[test]
    fn counting_and_merge_paths_produce_identical_permutations() {
        // Both index sorts are stable on (rank, index), so they must agree
        // exactly — this is what makes the fast path invisible to callers.
        for (n, modulus) in [(0usize, 1u64), (1, 1), (977, 7), (50_000, 1000), (10_000, 3)] {
            let rank: Vec<u64> =
                (0..n as u64).map(|i| (i.wrapping_mul(2_654_435_761)) % modulus).collect();
            let fast = counting_sort_index(
                &rank,
                rank.iter().copied().min().unwrap_or(0),
                modulus as usize,
            );
            let general = merge_sort_index(&rank);
            assert_eq!(fast, general, "n={n} modulus={modulus}");
        }
    }

    #[test]
    fn wide_rank_range_takes_merge_path_and_sorts() {
        // Ranks spread across the full u64 range exceed the counting-sort
        // threshold; the merge path must still produce a stable order.
        let n = 10_000usize;
        let key: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect();
        let r = Relation::from_keys(key);
        let out = sort(&r, SortBy::Key).unwrap();
        assert!(out.is_key_sorted());
        assert_eq!(out.len(), n);
    }

    #[test]
    fn empty_sort() {
        let r = Relation::from_keys(vec![]);
        assert!(sort(&r, SortBy::Key).unwrap().is_empty());
    }

    #[test]
    fn typed_sort_rejects_mismatched_column() {
        // An i64 sort over an f64 column (and vice versa) is a schema
        // error, not a silent reinterpretation.
        let f = Relation::new(vec![1], vec![Column::F64(vec![1.0])]).unwrap();
        assert!(matches!(sort(&f, SortBy::I64Col(0)), Err(RelError::SchemaMismatch)));
        let i = Relation::new(vec![1], vec![Column::I64(vec![1])]).unwrap();
        assert!(matches!(sort(&i, SortBy::F64Col(0)), Err(RelError::SchemaMismatch)));
    }

    #[test]
    fn sort_by_f64_column_uses_total_order() {
        let vals = vec![1.5, f64::NAN, -0.0, 0.0, f64::NEG_INFINITY, -2.5, f64::INFINITY];
        let r = Relation::new(vec![0, 1, 2, 3, 4, 5, 6], vec![Column::F64(vals.clone())]).unwrap();
        let out = sort(&r, SortBy::F64Col(0)).unwrap();
        let got = out.cols[0].as_f64().unwrap();
        let mut expect = vals;
        expect.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            expect.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "total_cmp order incl. -0.0 < 0.0 and NaN at the top"
        );
    }

    #[test]
    fn sort_by_f64_column_is_stable() {
        let r = Relation::new(
            vec![10, 11, 12, 13],
            vec![Column::F64(vec![2.0, 1.0, 2.0, 1.0]), Column::I64(vec![0, 1, 2, 3])],
        )
        .unwrap();
        let out = sort(&r, SortBy::F64Col(0)).unwrap();
        assert_eq!(out.key, vec![11, 13, 10, 12]);
    }

    #[test]
    fn descending_sorts_reverse_rank_but_stay_stable() {
        let r = Relation::new(
            vec![1, 2, 3, 4],
            vec![Column::I64(vec![7, 9, 7, 8]), Column::F64(vec![0.5, -1.5, 0.5, 2.5])],
        )
        .unwrap();
        let by_i = sort(&r, SortBy::I64ColDesc(0)).unwrap();
        // 9, 8, then the two 7s in original order (stable).
        assert_eq!(by_i.cols[0].as_i64().unwrap(), &[9, 8, 7, 7]);
        assert_eq!(by_i.key, vec![2, 4, 1, 3]);
        let by_f = sort(&r, SortBy::F64ColDesc(1)).unwrap();
        assert_eq!(by_f.cols[1].as_f64().unwrap(), &[2.5, 0.5, 0.5, -1.5]);
        assert_eq!(by_f.key, vec![4, 1, 3, 2]);
        let by_k = sort(&r, SortBy::KeyDesc).unwrap();
        assert_eq!(by_k.key, vec![4, 3, 2, 1]);
    }

    #[test]
    fn bitonic_matches_merge_for_new_variants() {
        let n = 2000usize;
        let key: Vec<u64> = (0..n as u64).map(|i| (i * 37) % 101).collect();
        let f: Vec<f64> = (0..n).map(|i| ((i * 2_654_435_761) % 997) as f64 - 500.0).collect();
        let r = Relation::new(key, vec![Column::F64(f)]).unwrap();
        for by in [SortBy::F64Col(0), SortBy::F64ColDesc(0), SortBy::KeyDesc] {
            let merge = sort(&r, by).unwrap();
            let bitonic = bitonic_sort(&r, by).unwrap();
            assert_eq!(merge, bitonic, "{by:?}");
        }
    }

    #[test]
    fn bitonic_matches_merge_sort() {
        let n = 10_000usize;
        let key: Vec<u64> = (0..n as u64).map(|i| (i * 2_654_435_761) % 5000).collect();
        let payload: Vec<i64> = (0..n as i64).collect();
        let r = Relation::new(key, vec![Column::I64(payload)]).unwrap();
        let merge = sort(&r, SortBy::Key).unwrap();
        let bitonic = bitonic_sort(&r, SortBy::Key).unwrap();
        // Both orderings are stable-equivalent on (key, original index).
        assert_eq!(bitonic.key, merge.key);
        assert_eq!(
            bitonic.cols[0].as_i64().unwrap(),
            merge.cols[0].as_i64().unwrap(),
            "tie-broken by original index, both sorts agree exactly"
        );
    }

    #[test]
    fn bitonic_handles_non_power_of_two_and_tiny() {
        for n in [0usize, 1, 2, 3, 5, 7, 100, 1023] {
            let key: Vec<u64> = (0..n as u64).map(|i| (i * 37) % 13).collect();
            let r = Relation::from_keys(key);
            let out = bitonic_sort(&r, SortBy::Key).unwrap();
            assert!(out.is_key_sorted(), "n={n}");
            assert_eq!(out.len(), n);
        }
    }

    #[test]
    fn bitonic_by_column() {
        let r = Relation::new(vec![1, 2, 3], vec![Column::I64(vec![5, -7, 0])]).unwrap();
        let out = bitonic_sort(&r, SortBy::I64Col(0)).unwrap();
        assert_eq!(out.cols[0].as_i64().unwrap(), &[-7, 0, 5]);
    }

    #[test]
    fn pass_count_matches_cost_model_shape() {
        // The cost model charges log2(n)(log2(n)+1)/4 global passes — half
        // the true network (early passes run in shared memory). Verify the
        // 2x relationship against the real network's count.
        use crate::profiles::sort_kernel;
        for n in [1u64 << 10, 1 << 16, 1 << 20] {
            let real = bitonic_pass_count(n) as f64;
            let k = sort_kernel(n, 8.0);
            let model_passes = k.bytes_read_per_elem / 8.0;
            let ratio = real / model_passes;
            assert!(
                (1.7..2.4).contains(&ratio),
                "n={n}: network {real} vs model {model_passes} (ratio {ratio})"
            );
        }
    }

    #[test]
    fn unique_drops_consecutive_duplicates() {
        let r = Relation::new(vec![1, 1, 2, 2, 2, 3], vec![Column::I64(vec![9, 9, 8, 8, 7, 6])])
            .unwrap();
        let out = unique(&r).unwrap();
        // (2,8) and (2,7) differ in payload: both kept.
        assert_eq!(out.key, vec![1, 2, 2, 3]);
        assert_eq!(out.cols[0].as_i64().unwrap(), &[9, 8, 7, 6]);
    }

    #[test]
    fn unique_requires_sorted() {
        let r = Relation::from_keys(vec![2, 1]);
        assert!(matches!(unique(&r), Err(RelError::NotSorted)));
    }

    #[test]
    fn unique_of_distinct_is_identity() {
        let r = Relation::from_keys(vec![1, 2, 3]);
        assert_eq!(unique(&r).unwrap(), r);
    }
}
