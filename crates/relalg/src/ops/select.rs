//! SELECT: filter tuples by a predicate.
//!
//! The GPU implementation (paper Fig. 3, after Diamos et al.) runs in four
//! stages: **partition** the input across CTAs, **filter** in parallel,
//! **buffer** survivors per CTA, then — after a global synchronization —
//! **gather** the per-CTA buffers into the dense result. The functional
//! implementation below executes literally that structure on host threads:
//! `par_range_map` is partition+filter+buffer, the final concatenation is
//! the gather. The first three stages are one CUDA kernel, the gather a
//! second; [`crate::profiles`] prices them accordingly.
//!
//! Predicates are evaluated by the vectorized batch engine when the body
//! compiles against the relation's column types ([`crate::engine`]): each
//! CTA runs a [`BatchMachine`] over [`BATCH_ROWS`]-row batches and gathers
//! survivors from the resulting selection bitmask. Bodies that fail batch
//! compilation fall back to the per-tuple interpreter, preserving its error
//! behavior exactly.

use crate::data::{
    col_windows, resize_zeroed_vec, slice_windows, ColWindow, Column, RelError, Relation,
};
use crate::engine;
use kfusion_ir::batch::{CompiledKernel, BATCH_ROWS};
use kfusion_ir::interp::Machine;
use kfusion_ir::{KernelBody, Ty, Value};
use kfusion_vgpu::exec::{cta_ranges, par_range_map, DEFAULT_CTA_CHUNK};

/// Compile `predicate` for batch execution over `input`'s columns, if the
/// engine is on and the body both resolves to concrete types and yields a
/// boolean in output slot 0.
fn compile_predicate(input: &Relation, predicate: &KernelBody) -> Option<CompiledKernel> {
    if !engine::batch_enabled() || input.is_empty() {
        return None;
    }
    let compiled = (|| {
        if predicate.outputs.is_empty() {
            return None;
        }
        let k = CompiledKernel::compile(predicate, &input.ir_slot_types()).ok()?;
        if k.output_ty(0) != Ty::Bool || k.check_binding(&input.ir_cols()).is_err() {
            return None;
        }
        Some(k)
    })();
    if compiled.is_none() {
        kfusion_trace::counter("kfusion_batch_fallback_total{op=\"select\"}", 1);
    }
    compiled
}

/// Visit each selected row index in `range`, reading the predicate's
/// selection bitmask batch by batch. The machine comes from (and returns
/// to) this worker's scratch arena.
fn for_each_selected(
    k: &CompiledKernel,
    input: &Relation,
    range: std::ops::Range<usize>,
    mut visit: impl FnMut(usize),
) {
    let cols = input.ir_cols();
    crate::scratch::with_scratch(|s| {
        let mut bm = s.machine(k);
        let mut base = range.start;
        while base < range.end {
            let n = (range.end - base).min(BATCH_ROWS);
            bm.run(k, &cols, base, n);
            let mask = bm.selection_mask(k);
            for (w, &word) in mask.iter().enumerate().take(n.div_ceil(64)) {
                let lo = w * 64;
                let mut m = word;
                if n - lo < 64 {
                    m &= (1u64 << (n - lo)) - 1; // tail lanes are unspecified
                }
                while m != 0 {
                    visit(base + lo + m.trailing_zeros() as usize);
                    m &= m - 1;
                }
            }
            base += n;
        }
        s.put_machine(k, bm);
    });
}

/// Copy one CTA's survivors (the set bits of `words`, lane 0 = input row
/// `start`) into its output windows, column at a time — the gather stage of
/// the two-phase batch SELECT. The windows are exactly as long as the
/// survivor count, so a full walk fills them completely.
fn scatter_window(
    input: &Relation,
    start: usize,
    words: &[u64],
    kw: &mut [u64],
    cw: Vec<ColWindow<'_>>,
) {
    scatter_col(&input.key, start, words, kw);
    for (win, col) in cw.into_iter().zip(&input.cols) {
        match (win, col) {
            (ColWindow::I64(d), Column::I64(s)) => scatter_col(s, start, words, d),
            (ColWindow::F64(d), Column::F64(s)) => scatter_col(s, start, words, d),
            _ => unreachable!("output schema reset from input"),
        }
    }
}

/// Compact `src`'s selected lanes into `dst`: one value per set bit of
/// `words`, in lane order.
fn scatter_col<T: Copy>(src: &[T], start: usize, words: &[u64], dst: &mut [T]) {
    let mut pos = 0;
    for (w, &word) in words.iter().enumerate() {
        let base = start + w * 64;
        let mut m = word;
        while m != 0 {
            dst[pos] = src[base + m.trailing_zeros() as usize];
            pos += 1;
            m &= m - 1;
        }
    }
}

/// Filter `input` to the tuples satisfying `predicate`.
///
/// The predicate is an IR body with the library calling convention: input
/// slot 0 is the key (as `i64`), slot `1+c` is payload column `c`; output 0
/// must be a boolean.
pub fn select(input: &Relation, predicate: &KernelBody) -> Result<Relation, RelError> {
    let mut out = input.empty_like();
    select_into(input, predicate, &mut out)?;
    Ok(out)
}

/// [`select`] writing into a caller-owned relation: `out` is cleared (its
/// capacity retained) and filled with the surviving tuples, so a caller
/// that filters repeatedly can reuse one output allocation across calls
/// (the `_into` contract, DESIGN.md §14).
///
/// # Panics
/// If `out`'s schema differs from `input`'s.
pub fn select_into(
    input: &Relation,
    predicate: &KernelBody,
    out: &mut Relation,
) -> Result<(), RelError> {
    out.clear();
    kfusion_trace::counter("kfusion_rows_in_total{op=\"select\"}", input.len() as u64);
    if let Some(k) = compile_predicate(input, predicate) {
        // Phase 1 — partition + filter: each CTA evaluates the predicate
        // batch-at-a-time and keeps only the selection bitmask plus its
        // popcount (selection is bitmap-only — unselected lanes are never
        // written anywhere). Mask storage is one word per 64 rows, sized in
        // the per-morsel setup; the per-batch loop inside the steady-state
        // region allocates nothing. `BATCH_ROWS` is 64-divisible, so every
        // non-final batch contributes whole words and the chunk's words
        // concatenate exactly.
        let parts: Vec<(Vec<u64>, usize)> =
            par_range_map(input.len(), DEFAULT_CTA_CHUNK, |_cta, range| {
                crate::scratch::with_scratch(|s| {
                    let cols = input.ir_cols();
                    let mut bm = s.machine(&k);
                    let mut words: Vec<u64> = Vec::with_capacity(range.len().div_ceil(64) + 16);
                    let mut count = 0usize;
                    {
                        let _steady = kfusion_trace::allocwatch::region();
                        let mut base = range.start;
                        while base < range.end {
                            let n = (range.end - base).min(BATCH_ROWS);
                            bm.run(&k, &cols, base, n);
                            let mask = bm.selection_mask(&k);
                            for (w, &word) in mask.iter().enumerate().take(n.div_ceil(64)) {
                                let lo = w * 64;
                                let mut m = word;
                                if n - lo < 64 {
                                    m &= (1u64 << (n - lo)) - 1; // tail lanes are unspecified
                                }
                                count += m.count_ones() as usize;
                                words.push(m);
                            }
                            base += n;
                        }
                    }
                    s.put_machine(&k, bm);
                    (words, count)
                })
            });
        // Phase 2 — global sync + gather: survivors copy straight from the
        // input into disjoint windows of the output, one worker per CTA, so
        // the result is materialized exactly once.
        let counts: Vec<usize> = parts.iter().map(|p| p.1).collect();
        let total: usize = counts.iter().sum();
        out.reset_like(input);
        resize_zeroed_vec(&mut out.key, total);
        for c in &mut out.cols {
            c.resize_zeroed(total);
        }
        let ranges = cta_ranges(input.len(), DEFAULT_CTA_CHUNK);
        let key_wins = slice_windows(&mut out.key, &counts);
        let col_wins = col_windows(&mut out.cols, &counts);
        std::thread::scope(|scope| {
            for (((range, (words, _)), kw), cw) in
                ranges.into_iter().zip(&parts).zip(key_wins).zip(col_wins)
            {
                scope.spawn(move || scatter_window(input, range.start, words, kw, cw));
            }
        });
        kfusion_trace::counter("kfusion_rows_out_total{op=\"select\"}", total as u64);
        return Ok(());
    }
    // Scalar fallback: per-tuple interpretation.
    let parts: Vec<Result<Relation, RelError>> =
        par_range_map(input.len(), DEFAULT_CTA_CHUNK, |_cta, range| {
            let mut m = Machine::for_body(predicate);
            let mut row: Vec<Value> = Vec::with_capacity(1 + input.n_cols());
            let mut buf = input.empty_like();
            for i in range {
                input.ir_inputs(i, &mut row);
                if m.run_predicate(predicate, &row)? {
                    buf.push_row_from(input, i);
                }
            }
            Ok(buf)
        });
    for p in parts {
        out.extend_from(&p?);
    }
    kfusion_trace::counter("kfusion_rows_out_total{op=\"select\"}", out.len() as u64);
    Ok(())
}

/// SELECT with a *chain* of predicates applied as separate passes — the
/// unfused back-to-back configuration the paper measures against. Returns
/// every intermediate cardinality alongside the final relation, because the
/// executor prices each pass's kernels with the real intermediate sizes.
pub fn select_chain_unfused(
    input: &Relation,
    predicates: &[KernelBody],
) -> Result<(Relation, Vec<usize>), RelError> {
    // Ping-pong two buffers through the chain: each pass filters `cur`
    // into `next`, then the buffers swap — after the first pass no pass
    // allocates beyond capacity growth.
    let mut cur = input.clone();
    let mut next = input.empty_like();
    let mut cards = Vec::with_capacity(predicates.len());
    for p in predicates {
        select_into(&cur, p, &mut next)?;
        std::mem::swap(&mut cur, &mut next);
        cards.push(cur.len());
    }
    Ok((cur, cards))
}

/// Count (without materializing) how many tuples satisfy `predicate` — used
/// by harnesses that only need cardinalities.
pub fn count_selected(input: &Relation, predicate: &KernelBody) -> Result<usize, RelError> {
    if let Some(k) = compile_predicate(input, predicate) {
        let parts: Vec<usize> = par_range_map(input.len(), DEFAULT_CTA_CHUNK, |_cta, range| {
            let mut n = 0usize;
            for_each_selected(&k, input, range, |_| n += 1);
            n
        });
        return Ok(parts.into_iter().sum());
    }
    let parts: Vec<Result<usize, RelError>> =
        par_range_map(input.len(), DEFAULT_CTA_CHUNK, |_cta, range| {
            let mut m = Machine::for_body(predicate);
            let mut row: Vec<Value> = Vec::with_capacity(1 + input.n_cols());
            let mut n = 0usize;
            for i in range {
                input.ir_inputs(i, &mut row);
                if m.run_predicate(predicate, &row)? {
                    n += 1;
                }
            }
            Ok(n)
        });
    let mut total = 0;
    for p in parts {
        total += p?;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Column;
    use crate::predicates;
    use kfusion_ir::builder::{BodyBuilder, Expr};

    /// Table I SELECT example: x = {(3,True,a), (4,True,a), (2,False,b)};
    /// select [field.0==2] x → (2,False,b).
    #[test]
    fn table1_select_example() {
        // Encode True/False as 1/0 and a/b as 1/2.
        let x = Relation::new(
            vec![3, 4, 2],
            vec![Column::I64(vec![1, 1, 0]), Column::I64(vec![1, 1, 2])],
        )
        .unwrap();
        let pred = predicates::key_eq(2);
        let out = select(&x, &pred).unwrap();
        assert_eq!(out.key, vec![2]);
        assert_eq!(out.cols[0].as_i64().unwrap(), &[0]);
        assert_eq!(out.cols[1].as_i64().unwrap(), &[2]);
    }

    #[test]
    fn select_keeps_input_order() {
        let r = Relation::from_keys(vec![5, 1, 9, 3, 7]);
        let out = select(&r, &predicates::key_lt(8)).unwrap();
        assert_eq!(out.key, vec![5, 1, 3, 7]);
    }

    #[test]
    fn select_on_payload_column() {
        let r = Relation::new(vec![1, 2, 3], vec![Column::F64(vec![0.5, 1.5, 2.5])]).unwrap();
        let mut b = BodyBuilder::new(2);
        b.emit_output(Expr::input(1).gt(Expr::lit(1.0f64)));
        let out = select(&r, &b.build()).unwrap();
        assert_eq!(out.key, vec![2, 3]);
    }

    #[test]
    fn empty_input_empty_output() {
        let r = Relation::from_keys(vec![]);
        let out = select(&r, &predicates::key_lt(5)).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn select_all_and_none() {
        let r = Relation::from_keys((0..1000).collect());
        assert_eq!(select(&r, &predicates::key_lt(10_000)).unwrap().len(), 1000);
        assert_eq!(select(&r, &predicates::key_lt(0)).unwrap().len(), 0);
    }

    #[test]
    fn large_parallel_select_matches_sequential_count() {
        let n = 300_000u64;
        let r = Relation::from_keys((0..n).rev().collect());
        let out = select(&r, &predicates::key_lt(12345)).unwrap();
        assert_eq!(out.len(), 12345);
        // Partition order preserved: descending keys filtered keep order.
        assert_eq!(out.key[0], 12344);
        assert_eq!(*out.key.last().unwrap(), 0);
    }

    #[test]
    fn chain_unfused_reports_intermediates() {
        let r = Relation::from_keys((0..100).collect());
        let (out, cards) =
            select_chain_unfused(&r, &[predicates::key_lt(50), predicates::key_lt(25)]).unwrap();
        assert_eq!(cards, vec![50, 25]);
        assert_eq!(out.len(), 25);
    }

    #[test]
    fn count_matches_select_len() {
        let r = Relation::from_keys((0..10_000).map(|k| k * 7 % 1000).collect());
        let p = predicates::key_lt(500);
        assert_eq!(count_selected(&r, &p).unwrap(), select(&r, &p).unwrap().len());
    }

    #[test]
    fn type_error_is_surfaced_not_panicked() {
        let r = Relation::from_keys(vec![1, 2]);
        // Predicate output is i64, not bool.
        let mut b = BodyBuilder::new(1);
        b.emit_output(Expr::input(0).add(Expr::lit(1i64)));
        assert!(matches!(select(&r, &b.build()), Err(RelError::Eval(_))));
    }

    #[test]
    fn batch_and_scalar_engines_agree() {
        let keys: Vec<u64> = (0..40_000u64).map(|k| k.wrapping_mul(2654435761) % 100_000).collect();
        let f: Vec<f64> = keys.iter().map(|&k| k as f64 / 1000.0).collect();
        let r = Relation::new(keys, vec![Column::F64(f)]).unwrap();
        let mut b = BodyBuilder::new(2);
        b.emit_output(
            Expr::input(0)
                .lt(Expr::lit(60_000i64))
                .and(Expr::input(1).gt(Expr::lit(12.5f64)).or(Expr::input(1).lt(Expr::lit(3.0)))),
        );
        let pred = b.build();
        engine::set_batch_enabled(false);
        let scalar = select(&r, &pred);
        engine::set_batch_enabled(true);
        let batch = select(&r, &pred);
        assert_eq!(scalar.unwrap(), batch.unwrap());
    }
}
