//! Columnar relation storage.
//!
//! Following Diamos et al. (GIT-CERCS-12-01), the substrate the paper builds
//! on, a relation is a densely packed array of tuples sorted by an integer
//! *key*, with fixed-width payload fields. We store it columnar: one `u64`
//! key vector plus typed payload columns. The key doubles as the join/set
//! attribute; the "first field is the key" convention of the paper's
//! Table I.

use std::fmt;

/// A typed payload column.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// 64-bit signed integers.
    I64(Vec<i64>),
    /// 64-bit floats.
    F64(Vec<f64>),
}

impl Column {
    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            Column::I64(v) => v.len(),
            Column::F64(v) => v.len(),
        }
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remove all values, keeping the allocated capacity.
    pub fn clear(&mut self) {
        match self {
            Column::I64(v) => v.clear(),
            Column::F64(v) => v.clear(),
        }
    }

    /// An empty column of the same type.
    pub fn empty_like(&self) -> Column {
        match self {
            Column::I64(_) => Column::I64(Vec::new()),
            Column::F64(_) => Column::F64(Vec::new()),
        }
    }

    /// An empty column of the same type with reserved capacity.
    pub fn empty_like_with_capacity(&self, cap: usize) -> Column {
        match self {
            Column::I64(_) => Column::I64(Vec::with_capacity(cap)),
            Column::F64(_) => Column::F64(Vec::with_capacity(cap)),
        }
    }

    /// Value at `i` as an IR [`kfusion_ir::Value`].
    pub fn value(&self, i: usize) -> kfusion_ir::Value {
        match self {
            Column::I64(v) => kfusion_ir::Value::I64(v[i]),
            Column::F64(v) => kfusion_ir::Value::F64(v[i]),
        }
    }

    /// Append the value at `src[i]` (same-typed column) to `self`.
    ///
    /// # Panics
    /// If the column types differ.
    pub fn push_from(&mut self, src: &Column, i: usize) {
        match (self, src) {
            (Column::I64(d), Column::I64(s)) => d.push(s[i]),
            (Column::F64(d), Column::F64(s)) => d.push(s[i]),
            _ => panic!("column type mismatch in push_from"),
        }
    }

    /// Append a [`kfusion_ir::Value`] of the matching type.
    ///
    /// # Panics
    /// If the value type does not match the column type.
    pub fn push_value(&mut self, v: kfusion_ir::Value) {
        match (self, v) {
            (Column::I64(d), kfusion_ir::Value::I64(x)) => d.push(x),
            (Column::F64(d), kfusion_ir::Value::F64(x)) => d.push(x),
            _ => panic!("value type mismatch in push_value"),
        }
    }

    /// Bytes per value (both variants are 8-byte scalars).
    pub const BYTES_PER_VALUE: u64 = 8;

    /// The i64 payload, if this is an integer column.
    pub fn as_i64(&self) -> Option<&[i64]> {
        match self {
            Column::I64(v) => Some(v),
            _ => None,
        }
    }

    /// The f64 payload, if this is a float column.
    pub fn as_f64(&self) -> Option<&[f64]> {
        match self {
            Column::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Concatenate `other` onto the end of `self`.
    ///
    /// # Panics
    /// If the column types differ.
    pub fn extend_from(&mut self, other: &Column) {
        match (self, other) {
            (Column::I64(d), Column::I64(s)) => d.extend_from_slice(s),
            (Column::F64(d), Column::F64(s)) => d.extend_from_slice(s),
            _ => panic!("column type mismatch in extend_from"),
        }
    }

    /// Take the rows at `idx`, in order.
    pub fn gather(&self, idx: &[usize]) -> Column {
        match self {
            Column::I64(v) => Column::I64(idx.iter().map(|&i| v[i]).collect()),
            Column::F64(v) => Column::F64(idx.iter().map(|&i| v[i]).collect()),
        }
    }

    /// [`Column::gather`] into a caller-owned column: replaces `dst`'s
    /// contents with the rows at `idx`, reusing its capacity. The `_into`
    /// shape the zero-allocation runtime uses wherever a gather repeats
    /// (DESIGN.md §14).
    ///
    /// # Panics
    /// If the column types differ.
    pub fn gather_into(&self, idx: &[usize], dst: &mut Column) {
        match (self, dst) {
            (Column::I64(s), Column::I64(d)) => {
                d.clear();
                d.extend(idx.iter().map(|&i| s[i]));
            }
            (Column::F64(s), Column::F64(d)) => {
                d.clear();
                d.extend(idx.iter().map(|&i| s[i]));
            }
            _ => panic!("column type mismatch in gather_into"),
        }
    }

    /// Append the rows at `base + idx[..]` (same-typed column) onto `dst` —
    /// the columnar inner loop of the batch SELECT: one type dispatch per
    /// column per batch instead of one per row. Within reserved capacity
    /// this never allocates.
    ///
    /// # Panics
    /// If the column types differ.
    pub fn gather_append(&self, base: usize, idx: &[u32], dst: &mut Column) {
        match (self, dst) {
            (Column::I64(s), Column::I64(d)) => {
                d.extend(idx.iter().map(|&i| s[base + i as usize]));
            }
            (Column::F64(s), Column::F64(d)) => {
                d.extend(idx.iter().map(|&i| s[base + i as usize]));
            }
            _ => panic!("column type mismatch in gather_append"),
        }
    }

    /// Whether `other` stores the same value type.
    pub fn same_type(&self, other: &Column) -> bool {
        matches!((self, other), (Column::I64(_), Column::I64(_)) | (Column::F64(_), Column::F64(_)))
    }

    /// Resize to exactly `n` values, zero-filled. When the current buffer
    /// cannot hold `n`, the old allocation is dropped and a fresh
    /// zero-initialized one is requested instead of growing in place —
    /// large zeroed requests come back as lazily-mapped zero pages, so the
    /// page-fault cost of first touch lands on whichever worker thread
    /// writes each region rather than serially on the caller.
    pub fn resize_zeroed(&mut self, n: usize) {
        match self {
            Column::I64(v) => resize_zeroed_vec(v, n),
            Column::F64(v) => resize_zeroed_vec(v, n),
        }
    }
}

pub(crate) fn resize_zeroed_vec<T: Clone + Default>(v: &mut Vec<T>, n: usize) {
    if v.capacity() < n {
        *v = vec![T::default(); n];
    } else {
        v.clear();
        v.resize(n, T::default());
    }
}

/// A disjoint mutable row-window over one column's buffer — the unit of
/// work for parallel materialization (each worker owns one window of every
/// column, so scoped threads write without locks).
pub(crate) enum ColWindow<'a> {
    /// Window of an i64 column.
    I64(&'a mut [i64]),
    /// Window of an f64 column.
    F64(&'a mut [f64]),
}

impl ColWindow<'_> {
    /// Copy a whole same-typed column into this window.
    ///
    /// # Panics
    /// If types or lengths differ.
    pub(crate) fn copy_from(&mut self, src: &Column) {
        match (self, src) {
            (ColWindow::I64(d), Column::I64(s)) => d.copy_from_slice(s),
            (ColWindow::F64(d), Column::F64(s)) => d.copy_from_slice(s),
            _ => panic!("column type mismatch in ColWindow::copy_from"),
        }
    }

    /// Fill this window with `src[idx[j]]` for each position `j`.
    ///
    /// # Panics
    /// If types differ or `idx` is shorter than the window.
    pub(crate) fn gather_from(&mut self, src: &Column, idx: &[usize]) {
        match (self, src) {
            (ColWindow::I64(d), Column::I64(s)) => {
                for (o, &i) in d.iter_mut().zip(idx) {
                    *o = s[i];
                }
            }
            (ColWindow::F64(d), Column::F64(s)) => {
                for (o, &i) in d.iter_mut().zip(idx) {
                    *o = s[i];
                }
            }
            _ => panic!("column type mismatch in ColWindow::gather_from"),
        }
    }
}

/// Split `s` into consecutive disjoint mutable windows of the given
/// lengths. The lengths must sum to at most `s.len()`.
pub(crate) fn slice_windows<'a, T>(mut s: &'a mut [T], lens: &[usize]) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(lens.len());
    for &len in lens {
        let (head, tail) = std::mem::take(&mut s).split_at_mut(len);
        out.push(head);
        s = tail;
    }
    out
}

/// Split every column into consecutive disjoint row-windows of the given
/// lengths: result `[w][c]` is window `w` of column `c`.
pub(crate) fn col_windows<'a>(cols: &'a mut [Column], lens: &[usize]) -> Vec<Vec<ColWindow<'a>>> {
    let mut rests: Vec<ColWindow<'a>> = cols
        .iter_mut()
        .map(|c| match c {
            Column::I64(v) => ColWindow::I64(v.as_mut_slice()),
            Column::F64(v) => ColWindow::F64(v.as_mut_slice()),
        })
        .collect();
    let mut out = Vec::with_capacity(lens.len());
    for &len in lens {
        let mut row = Vec::with_capacity(rests.len());
        for rest in rests.iter_mut() {
            match rest {
                ColWindow::I64(s) => {
                    let (head, tail) = std::mem::take(s).split_at_mut(len);
                    row.push(ColWindow::I64(head));
                    *s = tail;
                }
                ColWindow::F64(s) => {
                    let (head, tail) = std::mem::take(s).split_at_mut(len);
                    row.push(ColWindow::F64(head));
                    *s = tail;
                }
            }
        }
        out.push(row);
    }
    out
}

/// Row count below which the parallel materialization helpers fall back to
/// their serial equivalents (thread spawn would cost more than the copy).
pub(crate) const PAR_COPY_MIN_ROWS: usize = 64 * 1024;

/// Structural errors on relations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelError {
    /// Columns have differing lengths.
    RaggedColumns {
        /// Key length.
        key_len: usize,
        /// Offending column index.
        col: usize,
        /// Its length.
        col_len: usize,
    },
    /// An operator required key-sorted input but the keys are unsorted.
    NotSorted,
    /// An operator referenced a column that does not exist.
    NoSuchColumn {
        /// Requested index.
        col: usize,
        /// Available count.
        available: usize,
    },
    /// Two relations were expected to have the same schema.
    SchemaMismatch,
    /// A predicate or expression failed to evaluate.
    Eval(kfusion_ir::interp::EvalError),
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::RaggedColumns { key_len, col, col_len } => {
                write!(f, "column {col} has {col_len} rows, key has {key_len}")
            }
            RelError::NotSorted => write!(f, "relation is not key-sorted"),
            RelError::NoSuchColumn { col, available } => {
                write!(f, "no column {col} (relation has {available})")
            }
            RelError::SchemaMismatch => write!(f, "relations have different schemas"),
            RelError::Eval(e) => write!(f, "expression evaluation failed: {e}"),
        }
    }
}

impl std::error::Error for RelError {}

impl From<kfusion_ir::interp::EvalError> for RelError {
    fn from(e: kfusion_ir::interp::EvalError) -> Self {
        RelError::Eval(e)
    }
}

/// A relation: a key vector plus payload columns of equal length.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Relation {
    /// Tuple keys (the first field in the paper's Table I examples).
    pub key: Vec<u64>,
    /// Payload columns.
    pub cols: Vec<Column>,
}

impl Relation {
    /// A relation of bare keys (the paper's compressed-row SELECT inputs).
    pub fn from_keys(key: Vec<u64>) -> Self {
        Relation { key, cols: Vec::new() }
    }

    /// A relation with payload columns.
    ///
    /// # Errors
    /// [`RelError::RaggedColumns`] if lengths differ.
    pub fn new(key: Vec<u64>, cols: Vec<Column>) -> Result<Self, RelError> {
        let r = Relation { key, cols };
        r.check_rect()?;
        Ok(r)
    }

    fn check_rect(&self) -> Result<(), RelError> {
        for (i, c) in self.cols.iter().enumerate() {
            if c.len() != self.key.len() {
                return Err(RelError::RaggedColumns {
                    key_len: self.key.len(),
                    col: i,
                    col_len: c.len(),
                });
            }
        }
        Ok(())
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.key.len()
    }

    /// Whether the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.key.is_empty()
    }

    /// Number of payload columns.
    pub fn n_cols(&self) -> usize {
        self.cols.len()
    }

    /// Stored bytes per tuple (8-byte key + 8 bytes per payload column).
    pub fn row_bytes(&self) -> u64 {
        8 + self.cols.len() as u64 * Column::BYTES_PER_VALUE
    }

    /// Total stored bytes.
    pub fn total_bytes(&self) -> u64 {
        self.row_bytes() * self.len() as u64
    }

    /// Whether keys are non-decreasing.
    pub fn is_key_sorted(&self) -> bool {
        self.key.windows(2).all(|w| w[0] <= w[1])
    }

    /// Error unless key-sorted (operators with merge-based implementations
    /// require it, like the substrate's sorted key-value arrays).
    pub fn require_sorted(&self) -> Result<(), RelError> {
        if self.is_key_sorted() {
            Ok(())
        } else {
            Err(RelError::NotSorted)
        }
    }

    /// Sort tuples by key (stable), carrying payload columns along.
    pub fn sort_by_key(&mut self) {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.sort_by_key(|&i| self.key[i]);
        self.permute(&idx);
    }

    /// Reorder tuples so that row `i` of the result is row `idx[i]` of the
    /// input.
    pub fn permute(&mut self, idx: &[usize]) {
        self.key = idx.iter().map(|&i| self.key[i]).collect();
        for c in &mut self.cols {
            *c = c.gather(idx);
        }
    }

    /// Remove all tuples, keeping the schema and every column's allocated
    /// capacity — the reset step of the `_into` operator variants.
    pub fn clear(&mut self) {
        self.key.clear();
        for c in &mut self.cols {
            c.clear();
        }
    }

    /// An empty relation with the same schema.
    pub fn empty_like(&self) -> Relation {
        Relation { key: Vec::new(), cols: self.cols.iter().map(Column::empty_like).collect() }
    }

    /// An empty relation with the same schema and `cap` rows of reserved
    /// capacity in the key and every column — so appends up to `cap` rows
    /// never reallocate.
    pub fn empty_like_with_capacity(&self, cap: usize) -> Relation {
        Relation {
            key: Vec::with_capacity(cap),
            cols: self.cols.iter().map(|c| c.empty_like_with_capacity(cap)).collect(),
        }
    }

    /// Clear `self` and make it share `src`'s schema, reusing each column
    /// buffer whose type already matches — the reset step of the `_into`
    /// operator variants when the caller-owned output may have come from a
    /// different operator.
    pub fn reset_like(&mut self, src: &Relation) {
        self.key.clear();
        if self.cols.len() == src.cols.len()
            && self.cols.iter().zip(&src.cols).all(|(a, b)| a.same_type(b))
        {
            for c in &mut self.cols {
                c.clear();
            }
        } else {
            self.cols = src.cols.iter().map(Column::empty_like).collect();
        }
    }

    /// Replace `self`'s rows with the concatenation of `parts` (which must
    /// share `self`'s schema), copying the parts in parallel — one worker
    /// per part, each writing a disjoint row-window sized up front. Small
    /// totals fall back to serial appends.
    ///
    /// # Panics
    /// If schemas differ.
    pub fn concat_from_parallel(&mut self, parts: &[Relation]) {
        let lens: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        let total: usize = lens.iter().sum();
        if total < PAR_COPY_MIN_ROWS || parts.len() < 2 {
            self.clear();
            for p in parts {
                self.extend_from(p);
            }
            return;
        }
        resize_zeroed_vec(&mut self.key, total);
        for c in &mut self.cols {
            c.resize_zeroed(total);
        }
        let key_wins = slice_windows(&mut self.key, &lens);
        let col_wins = col_windows(&mut self.cols, &lens);
        std::thread::scope(|scope| {
            for ((kw, cw), part) in key_wins.into_iter().zip(col_wins).zip(parts) {
                scope.spawn(move || {
                    kw.copy_from_slice(&part.key);
                    for (mut w, s) in cw.into_iter().zip(&part.cols) {
                        w.copy_from(s);
                    }
                });
            }
        });
    }

    /// The relation whose row `i` is row `idx[i]` of `self` — `permute`
    /// without first cloning the unpermuted payload (SORT's output step
    /// builds each column exactly once this way). Large gathers run in
    /// parallel over disjoint output windows.
    pub fn gathered(&self, idx: &[usize]) -> Relation {
        let n = idx.len();
        if n < PAR_COPY_MIN_ROWS {
            return Relation {
                key: idx.iter().map(|&i| self.key[i]).collect(),
                cols: self.cols.iter().map(|c| c.gather(idx)).collect(),
            };
        }
        let mut out = self.empty_like();
        resize_zeroed_vec(&mut out.key, n);
        for c in &mut out.cols {
            c.resize_zeroed(n);
        }
        let lens: Vec<usize> = {
            let mut v = Vec::new();
            let mut rest = n;
            while rest > 0 {
                let take = rest.min(PAR_COPY_MIN_ROWS);
                v.push(take);
                rest -= take;
            }
            v
        };
        let key_wins = slice_windows(&mut out.key, &lens);
        let col_wins = col_windows(&mut out.cols, &lens);
        std::thread::scope(|scope| {
            let mut start = 0usize;
            for ((kw, cw), &len) in key_wins.into_iter().zip(col_wins).zip(&lens) {
                let ids = &idx[start..start + len];
                start += len;
                scope.spawn(move || {
                    for (o, &i) in kw.iter_mut().zip(ids) {
                        *o = self.key[i];
                    }
                    for (mut w, c) in cw.into_iter().zip(&self.cols) {
                        w.gather_from(c, ids);
                    }
                });
            }
        });
        out
    }

    /// Append the rows at `base + idx[..]` of `src` (same schema) onto
    /// `self`, column at a time. Within reserved capacity this never
    /// allocates — the batch SELECT's output path.
    ///
    /// # Panics
    /// If schemas differ.
    pub fn gather_append(&mut self, src: &Relation, base: usize, idx: &[u32]) {
        self.key.extend(idx.iter().map(|&i| src.key[base + i as usize]));
        for (d, s) in self.cols.iter_mut().zip(&src.cols) {
            s.gather_append(base, idx, d);
        }
    }

    /// The IR input row for tuple `i`: slot 0 = key (as i64), slot `1+c` =
    /// column `c`. This is the calling convention every predicate and
    /// arithmetic expression in the library uses.
    pub fn ir_inputs(&self, i: usize, out: &mut Vec<kfusion_ir::Value>) {
        out.clear();
        out.push(kfusion_ir::Value::I64(self.key[i] as i64));
        for c in &self.cols {
            out.push(c.value(i));
        }
    }

    /// The batch-engine view of the same calling convention as
    /// [`Relation::ir_inputs`]: one [`kfusion_ir::batch::ColRef`] per input
    /// slot — the key column at slot 0 (loaded as `i64`), payload column `c`
    /// at slot `1+c`.
    pub fn ir_cols(&self) -> Vec<kfusion_ir::batch::ColRef<'_>> {
        use kfusion_ir::batch::ColRef;
        let mut out = Vec::with_capacity(1 + self.cols.len());
        out.push(ColRef::KeyU64(&self.key));
        for c in &self.cols {
            out.push(match c {
                Column::I64(v) => ColRef::I64(v),
                Column::F64(v) => ColRef::F64(v),
            });
        }
        out
    }

    /// The concrete IR type of each input slot under the library calling
    /// convention — the seeds batch compilation resolves register types
    /// against.
    pub fn ir_slot_types(&self) -> Vec<Option<kfusion_ir::Ty>> {
        use kfusion_ir::Ty;
        let mut out = Vec::with_capacity(1 + self.cols.len());
        out.push(Some(Ty::I64));
        for c in &self.cols {
            out.push(Some(match c {
                Column::I64(_) => Ty::I64,
                Column::F64(_) => Ty::F64,
            }));
        }
        out
    }

    /// Append row `i` of `src` (same schema).
    ///
    /// # Panics
    /// If schemas differ.
    pub fn push_row_from(&mut self, src: &Relation, i: usize) {
        self.key.push(src.key[i]);
        for (d, s) in self.cols.iter_mut().zip(&src.cols) {
            d.push_from(s, i);
        }
    }

    /// Concatenate `other` (same schema) onto `self`.
    ///
    /// # Panics
    /// If schemas differ.
    pub fn extend_from(&mut self, other: &Relation) {
        self.key.extend_from_slice(&other.key);
        for (d, s) in self.cols.iter_mut().zip(&other.cols) {
            d.extend_from(s);
        }
    }

    /// Compare full tuples at `(self, i)` and `(other, j)` for equality
    /// (used by the set operators, which work on whole tuples per Table I).
    pub fn tuple_eq(&self, i: usize, other: &Relation, j: usize) -> bool {
        if self.key[i] != other.key[j] || self.cols.len() != other.cols.len() {
            return false;
        }
        self.cols.iter().zip(&other.cols).all(|(a, b)| match (a, b) {
            (Column::I64(x), Column::I64(y)) => x[i] == y[j],
            (Column::F64(x), Column::F64(y)) => x[i].to_bits() == y[j].to_bits(),
            _ => false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel() -> Relation {
        Relation::new(
            vec![1, 2, 3],
            vec![Column::I64(vec![10, 20, 30]), Column::F64(vec![0.1, 0.2, 0.3])],
        )
        .unwrap()
    }

    #[test]
    fn construction_checks_rectangularity() {
        let bad = Relation::new(vec![1, 2], vec![Column::I64(vec![1])]);
        assert!(matches!(bad, Err(RelError::RaggedColumns { col: 0, .. })));
    }

    #[test]
    fn row_bytes_counts_key_and_columns() {
        assert_eq!(rel().row_bytes(), 24);
        assert_eq!(Relation::from_keys(vec![1]).row_bytes(), 8);
        assert_eq!(rel().total_bytes(), 72);
    }

    #[test]
    fn sortedness_checks() {
        assert!(rel().is_key_sorted());
        let mut r = Relation::from_keys(vec![3, 1, 2]);
        assert!(!r.is_key_sorted());
        assert!(r.require_sorted().is_err());
        r.sort_by_key();
        assert_eq!(r.key, vec![1, 2, 3]);
    }

    #[test]
    fn sort_carries_payload() {
        let mut r = Relation::new(vec![3, 1, 2], vec![Column::I64(vec![30, 10, 20])]).unwrap();
        r.sort_by_key();
        assert_eq!(r.key, vec![1, 2, 3]);
        assert_eq!(r.cols[0].as_i64().unwrap(), &[10, 20, 30]);
    }

    #[test]
    fn sort_is_stable_for_equal_keys() {
        let mut r = Relation::new(vec![2, 1, 2, 1], vec![Column::I64(vec![1, 2, 3, 4])]).unwrap();
        r.sort_by_key();
        assert_eq!(r.key, vec![1, 1, 2, 2]);
        assert_eq!(r.cols[0].as_i64().unwrap(), &[2, 4, 1, 3]);
    }

    #[test]
    fn ir_inputs_layout() {
        let r = rel();
        let mut buf = Vec::new();
        r.ir_inputs(1, &mut buf);
        assert_eq!(buf.len(), 3);
        assert_eq!(buf[0].as_i64(), Some(2));
        assert_eq!(buf[1].as_i64(), Some(20));
        assert_eq!(buf[2].as_f64(), Some(0.2));
    }

    #[test]
    fn push_and_extend_preserve_schema() {
        let r = rel();
        let mut out = r.empty_like();
        out.push_row_from(&r, 2);
        assert_eq!(out.key, vec![3]);
        out.extend_from(&r);
        assert_eq!(out.len(), 4);
        assert_eq!(out.cols[0].as_i64().unwrap(), &[30, 10, 20, 30]);
    }

    #[test]
    fn tuple_equality_is_full_width() {
        let a = rel();
        let mut b = rel();
        assert!(a.tuple_eq(0, &b, 0));
        if let Column::I64(v) = &mut b.cols[0] {
            v[0] = 99;
        }
        assert!(!a.tuple_eq(0, &b, 0));
    }

    #[test]
    fn gather_reorders() {
        let c = Column::I64(vec![5, 6, 7]);
        assert_eq!(c.gather(&[2, 0]).as_i64().unwrap(), &[7, 5]);
    }

    #[test]
    #[should_panic(expected = "column type mismatch")]
    fn mixed_type_extend_panics() {
        let mut a = Column::I64(vec![]);
        a.extend_from(&Column::F64(vec![1.0]));
    }
}
