//! Stock predicate and expression builders in the library's IR calling
//! convention (slot 0 = key, slot `1+c` = payload column `c`).
//!
//! All builders lower *naively* (via [`BodyBuilder`]), producing the `-O0`
//! shape a front end would emit; the fusion machinery optimizes after
//! splicing, as the paper's compiler would.

use kfusion_ir::builder::{BodyBuilder, Expr};
use kfusion_ir::{CmpOp, KernelBody};

/// `key < threshold` — the canonical SELECT predicate; over uniform random
/// keys in `[0, max)`, a threshold of `frac * max` yields selectivity
/// `frac`, which is how the paper dials 10%/50%/90% (Fig. 4(a), Fig. 11(b)).
pub fn key_lt(threshold: u64) -> KernelBody {
    let mut b = BodyBuilder::new(1);
    b.emit_output(Expr::select(
        Expr::input(0).lt(Expr::lit(threshold as i64)),
        Expr::lit(true),
        Expr::lit(false),
    ));
    b.build()
}

/// `key == value` (Table I's `select [field.0==2]`).
pub fn key_eq(value: u64) -> KernelBody {
    let mut b = BodyBuilder::new(1);
    b.emit_output(Expr::select(
        Expr::input(0).eq(Expr::lit(value as i64)),
        Expr::lit(true),
        Expr::lit(false),
    ));
    b.build()
}

/// `lo <= key && key < hi` — a date-range filter in the paper's motivating
/// example (Fig. 2(a)).
pub fn key_in_range(lo: u64, hi: u64) -> KernelBody {
    let mut b = BodyBuilder::new(1);
    b.emit_output(
        Expr::input(0).ge(Expr::lit(lo as i64)).and(Expr::input(0).lt(Expr::lit(hi as i64))),
    );
    b.build()
}

/// `col <op> constant` over an i64 payload column.
pub fn col_cmp_i64(col: usize, op: CmpOp, value: i64) -> KernelBody {
    let mut b = BodyBuilder::new(col as u32 + 2);
    b.emit_output(Expr::input(col as u32 + 1).cmp(op, Expr::lit(value)));
    b.build()
}

/// `col <op> constant` over an f64 payload column.
pub fn col_cmp_f64(col: usize, op: CmpOp, value: f64) -> KernelBody {
    let mut b = BodyBuilder::new(col as u32 + 2);
    b.emit_output(Expr::input(col as u32 + 1).cmp(op, Expr::lit(value)));
    b.build()
}

/// `col_a <op> col_b` over two payload columns of the same type — e.g.
/// TPC-H Q21's "receiptdate > commitdate" late-shipment test.
pub fn col_cmp_col(col_a: usize, op: CmpOp, col_b: usize) -> KernelBody {
    let mut b = BodyBuilder::new(col_a.max(col_b) as u32 + 2);
    b.emit_output(Expr::input(col_a as u32 + 1).cmp(op, Expr::input(col_b as u32 + 1)));
    b.build()
}

/// The TPC-H Q1 money expression `(1 - discount) * extendedprice` over two
/// f64 columns (paper Fig. 2(h)).
pub fn discounted_price(price_col: usize, discount_col: usize) -> KernelBody {
    let mut b = BodyBuilder::new(price_col.max(discount_col) as u32 + 2);
    b.emit_output(
        Expr::lit(1.0f64)
            .sub(Expr::input(discount_col as u32 + 1))
            .mul(Expr::input(price_col as u32 + 1)),
    );
    b.build()
}

/// Its extension `price * (1 - discount) * (1 + tax)` (Q1's `sum_charge`).
pub fn charged_price(price_col: usize, discount_col: usize, tax_col: usize) -> KernelBody {
    let top = price_col.max(discount_col).max(tax_col);
    let mut b = BodyBuilder::new(top as u32 + 2);
    b.emit_output(
        Expr::input(price_col as u32 + 1)
            .mul(Expr::lit(1.0f64).sub(Expr::input(discount_col as u32 + 1)))
            .mul(Expr::lit(1.0f64).add(Expr::input(tax_col as u32 + 1))),
    );
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kfusion_ir::interp::Machine;
    use kfusion_ir::Value;

    #[test]
    fn key_lt_semantics() {
        let p = key_lt(10);
        let mut m = Machine::new();
        assert!(m.run_predicate(&p, &[Value::I64(9)]).unwrap());
        assert!(!m.run_predicate(&p, &[Value::I64(10)]).unwrap());
    }

    #[test]
    fn key_range_semantics() {
        let p = key_in_range(5, 8);
        let mut m = Machine::new();
        for (k, expect) in [(4, false), (5, true), (7, true), (8, false)] {
            assert_eq!(m.run_predicate(&p, &[Value::I64(k)]).unwrap(), expect, "key {k}");
        }
    }

    #[test]
    fn col_compare_reads_correct_slot() {
        let p = col_cmp_i64(1, CmpOp::Ge, 7);
        let mut m = Machine::new();
        // slots: key, col0, col1
        let row = [Value::I64(0), Value::I64(100), Value::I64(7)];
        assert!(m.run_predicate(&p, &row).unwrap());
        let row = [Value::I64(0), Value::I64(100), Value::I64(6)];
        assert!(!m.run_predicate(&p, &row).unwrap());
    }

    #[test]
    fn discounted_price_formula() {
        let e = discounted_price(0, 1);
        let mut m = Machine::new();
        let row = [Value::I64(0), Value::F64(100.0), Value::F64(0.25)];
        let v = m.run_output(&e, &row, 0).unwrap();
        assert_eq!(v.as_f64(), Some(75.0));
    }

    #[test]
    fn charged_price_formula() {
        let e = charged_price(0, 1, 2);
        let mut m = Machine::new();
        let row = [Value::I64(0), Value::F64(100.0), Value::F64(0.25), Value::F64(0.08)];
        let v = m.run_output(&e, &row, 0).unwrap().as_f64().unwrap();
        assert!((v - 81.0).abs() < 1e-12);
    }
}
