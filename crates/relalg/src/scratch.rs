//! Per-worker scratch arenas for the batch operators (DESIGN.md §14).
//!
//! Each morsel worker thread owns one [`Scratch`] in a thread-local. The
//! morsel executors ([`kfusion_vgpu::exec::par_range_map`] and friends)
//! hand every worker a *run* of chunks, so a machine checked out for the
//! first chunk is checked back in and reused for every later chunk that
//! thread processes — construction (bank allocation, constant splatting)
//! happens once per worker per kernel, not once per morsel.
//!
//! Arenas die with their worker thread (the executors use scoped threads),
//! so there is no cross-query state to invalidate; the reuse/poison toggles
//! in [`crate::engine`] govern behavior inside a run.

use kfusion_ir::batch::Scratch;
use std::cell::RefCell;

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
}

/// Run `f` with this thread's scratch arena.
///
/// Do not call re-entrantly from inside `f` (operators never need to); the
/// `RefCell` will panic if you do.
pub fn with_scratch<R>(f: impl FnOnce(&mut Scratch) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}
