//! Property tests: every relational operator agrees with an obviously
//! correct (naive) model implementation on random inputs, and the
//! substrate's invariants (sortedness, schema preservation) hold.
//!
//! Cases come from a seeded loop over `kfusion-prng` streams; each case
//! index reproduces independently.

use kfusion_prng::Rng;
use kfusion_relalg::ops;
use kfusion_relalg::predicates;
use kfusion_relalg::{Column, Relation};
use std::collections::HashSet;

const CASES: u64 = 128;

fn rng_for(tag: u64, case: u64) -> Rng {
    Rng::seed_from_u64(tag << 32 | case)
}

fn keys(rng: &mut Rng, max_key: u64, max_len: usize) -> Vec<u64> {
    let len = rng.gen_range(0..max_len + 1);
    (0..len).map(|_| rng.gen_range(0..max_key)).collect()
}

fn rel_keys(rng: &mut Rng, max_key: u64, max_len: usize) -> Relation {
    Relation::from_keys(keys(rng, max_key, max_len))
}

fn sorted_rel(rng: &mut Rng, max_key: u64, max_len: usize) -> Relation {
    let len = rng.gen_range(0..max_len + 1);
    let mut rows: Vec<(u64, i64)> =
        (0..len).map(|_| (rng.gen_range(0..max_key), rng.gen_range(-50i64..50))).collect();
    rows.sort_by_key(|r| r.0);
    Relation::new(
        rows.iter().map(|r| r.0).collect(),
        vec![Column::I64(rows.iter().map(|r| r.1).collect())],
    )
    .unwrap()
}

/// SELECT == the obvious filter.
#[test]
fn select_matches_filter() {
    for case in 0..CASES {
        let mut rng = rng_for(0xA1, case);
        let r = rel_keys(&mut rng, 1000, 200);
        let t = rng.gen_range(0u64..1000);
        let out = ops::select(&r, &predicates::key_lt(t)).unwrap();
        let expect: Vec<u64> = r.key.iter().copied().filter(|&k| k < t).collect();
        assert_eq!(out.key, expect, "case {case}");
    }
}

/// SELECT then SELECT == SELECT of the conjunction, and cardinality is
/// monotonically non-increasing.
#[test]
fn select_chain_shrinks() {
    for case in 0..CASES {
        let mut rng = rng_for(0xA2, case);
        let r = rel_keys(&mut rng, 1000, 200);
        let (t1, t2) = (rng.gen_range(0u64..1000), rng.gen_range(0u64..1000));
        let (out, cards) =
            ops::select_chain_unfused(&r, &[predicates::key_lt(t1), predicates::key_lt(t2)])
                .unwrap();
        assert!(cards[0] >= cards[1], "case {case}");
        let direct = ops::select(&r, &predicates::key_lt(t1.min(t2))).unwrap();
        assert_eq!(out, direct, "case {case}");
    }
}

/// Sort-merge JOIN == nested-loop join (as multisets of key pairs, in
/// any order): compare sorted pair lists.
#[test]
fn join_matches_nested_loop() {
    for case in 0..CASES {
        let mut rng = rng_for(0xA3, case);
        let a = sorted_rel(&mut rng, 40, 60);
        let b = sorted_rel(&mut rng, 40, 60);
        let out = ops::join(&a, &b).unwrap();
        let mut got: Vec<(u64, i64, i64)> = (0..out.len())
            .map(|i| {
                (out.key[i], out.cols[0].as_i64().unwrap()[i], out.cols[1].as_i64().unwrap()[i])
            })
            .collect();
        got.sort_unstable();
        let mut expect = Vec::new();
        for i in 0..a.len() {
            for j in 0..b.len() {
                if a.key[i] == b.key[j] {
                    expect.push((
                        a.key[i],
                        a.cols[0].as_i64().unwrap()[i],
                        b.cols[0].as_i64().unwrap()[j],
                    ));
                }
            }
        }
        expect.sort_unstable();
        assert_eq!(got, expect, "case {case}");
    }
}

/// Semijoin + antijoin partition the left side.
#[test]
fn semi_plus_anti_partition() {
    for case in 0..CASES {
        let mut rng = rng_for(0xA4, case);
        let a = sorted_rel(&mut rng, 50, 80);
        let b = sorted_rel(&mut rng, 50, 80);
        let semi = ops::semijoin(&a, &b).unwrap();
        let anti = ops::antijoin(&a, &b).unwrap();
        assert_eq!(semi.len() + anti.len(), a.len(), "case {case}");
        let b_keys: HashSet<u64> = b.key.iter().copied().collect();
        assert!(semi.key.iter().all(|k| b_keys.contains(k)), "case {case}");
        assert!(anti.key.iter().all(|k| !b_keys.contains(k)), "case {case}");
    }
}

/// Set-operator algebra: membership laws and union dedup.
#[test]
fn set_op_identities() {
    for case in 0..CASES {
        let mut rng = rng_for(0xA5, case);
        let a = rel_keys(&mut rng, 30, 50);
        let b = rel_keys(&mut rng, 30, 50);
        let inter = ops::intersection(&a, &b).unwrap();
        let diff = ops::difference(&a, &b).unwrap();
        let uni = ops::union(&a, &b).unwrap();
        // difference keeps duplicates of a; intersection dedups — compare
        // against per-tuple membership instead of cardinality arithmetic.
        let b_set: HashSet<u64> = b.key.iter().copied().collect();
        let expect_diff: Vec<u64> = a.key.iter().copied().filter(|k| !b_set.contains(k)).collect();
        assert_eq!(&diff.key, &expect_diff, "case {case}");
        let uni_set: HashSet<u64> = uni.key.iter().copied().collect();
        assert!(a.key.iter().all(|k| uni_set.contains(k)), "case {case}");
        assert!(b.key.iter().all(|k| uni_set.contains(k)), "case {case}");
        let a_set: HashSet<u64> = a.key.iter().copied().collect();
        assert!(inter.key.iter().all(|k| a_set.contains(k) && b_set.contains(k)), "case {case}");
        // Union has no duplicate tuples (bare keys: no duplicate keys).
        assert_eq!(uni_set.len(), uni.len(), "case {case}");
    }
}

/// SORT produces a sorted permutation; UNIQUE of it dedups.
#[test]
fn sort_then_unique() {
    for case in 0..CASES {
        let mut rng = rng_for(0xA6, case);
        let keys = keys(&mut rng, 100, 300);
        let r = Relation::from_keys(keys.clone());
        let sorted = ops::sort(&r, ops::SortBy::Key).unwrap();
        assert!(sorted.is_key_sorted(), "case {case}");
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(&sorted.key, &expect, "case {case}");
        let uniq = ops::unique(&sorted).unwrap();
        expect.dedup();
        assert_eq!(&uniq.key, &expect, "case {case}");
    }
}

/// AGGREGATE sums match a HashMap fold.
#[test]
fn aggregate_matches_hashmap() {
    for case in 0..CASES {
        let mut rng = rng_for(0xA7, case);
        let r = sorted_rel(&mut rng, 20, 150);
        let out = ops::aggregate_by_key(&r, &[ops::Agg::Sum(0), ops::Agg::Count]).unwrap();
        let mut expect: std::collections::BTreeMap<u64, (i64, i64)> = Default::default();
        for i in 0..r.len() {
            let e = expect.entry(r.key[i]).or_insert((0, 0));
            e.0 += r.cols[0].as_i64().unwrap()[i];
            e.1 += 1;
        }
        assert_eq!(out.key.len(), expect.len(), "case {case}");
        for (i, (k, (sum, count))) in expect.iter().enumerate() {
            assert_eq!(out.key[i], *k, "case {case}");
            assert_eq!(out.cols[0].as_i64().unwrap()[i], *sum, "case {case}");
            assert_eq!(out.cols[1].as_i64().unwrap()[i], *count, "case {case}");
        }
    }
}

/// PRODUCT cardinality and key structure.
#[test]
fn product_shape() {
    for case in 0..CASES {
        let mut rng = rng_for(0xA8, case);
        let a = rel_keys(&mut rng, 100, 20);
        let b = rel_keys(&mut rng, 100, 20);
        let out = ops::product(&a, &b).unwrap();
        assert_eq!(out.len(), a.len() * b.len(), "case {case}");
        if !b.is_empty() {
            for (i, &k) in a.key.iter().enumerate() {
                assert_eq!(out.key[i * b.len()], k, "case {case}");
            }
        }
    }
}

/// column_join then project recovers both sides.
#[test]
fn column_join_roundtrip() {
    for case in 0..CASES {
        let mut rng = rng_for(0xA9, case);
        let len = rng.gen_range(1usize..50);
        let rows: Vec<(i64, i64)> =
            (0..len).map(|_| (rng.gen_range(-50i64..50), rng.gen_range(-50i64..50))).collect();
        let key: Vec<u64> = (0..rows.len() as u64).collect();
        let a = Relation::new(key.clone(), vec![Column::I64(rows.iter().map(|r| r.0).collect())])
            .unwrap();
        let b = Relation::new(key, vec![Column::I64(rows.iter().map(|r| r.1).collect())]).unwrap();
        let wide = ops::column_join(&a, &b).unwrap();
        assert_eq!(ops::project(&wide, &[0]).unwrap(), a, "case {case}");
        assert_eq!(ops::project(&wide, &[1]).unwrap(), b, "case {case}");
    }
}

/// rekey moves values to keys; a subsequent sort groups them.
#[test]
fn rekey_then_sort_groups() {
    for case in 0..CASES {
        let mut rng = rng_for(0xAA, case);
        let len = rng.gen_range(1usize..100);
        let vals: Vec<i64> = (0..len).map(|_| rng.gen_range(0i64..10)).collect();
        let key: Vec<u64> = (0..vals.len() as u64).collect();
        let r = Relation::new(key, vec![Column::I64(vals.clone())]).unwrap();
        let rk = ops::rekey(&r, 0).unwrap();
        assert_eq!(rk.n_cols(), 0, "case {case}");
        let sorted = ops::sort(&rk, ops::SortBy::Key).unwrap();
        assert!(sorted.is_key_sorted(), "case {case}");
        let mut expect: Vec<u64> = vals.iter().map(|&v| v as u64).collect();
        expect.sort_unstable();
        assert_eq!(sorted.key, expect, "case {case}");
    }
}

mod compress_props {
    use kfusion_prng::Rng;
    use kfusion_relalg::compress::{best_for, compress, decompress, Scheme};

    const CASES: u64 = 192;

    /// Bit packing round-trips arbitrary values.
    #[test]
    fn bitpack_roundtrips() {
        for case in 0..CASES {
            let mut rng = Rng::seed_from_u64(0xB1 << 32 | case);
            let len = rng.gen_range(0usize..300);
            let vals: Vec<u64> = (0..len).map(|_| rng.next_u64()).collect();
            let b = compress(&vals, Scheme::BitPack).unwrap();
            assert_eq!(decompress(&b), vals, "case {case}");
        }
    }

    /// RLE round-trips arbitrary values (runs or not).
    #[test]
    fn rle_roundtrips() {
        for case in 0..CASES {
            let mut rng = Rng::seed_from_u64(0xB2 << 32 | case);
            let len = rng.gen_range(0usize..400);
            let vals: Vec<u64> = (0..len).map(|_| rng.gen_range(0u64..32)).collect();
            let b = compress(&vals, Scheme::Rle).unwrap();
            assert_eq!(decompress(&b), vals, "case {case}");
        }
    }

    /// Delta round-trips any sorted input.
    #[test]
    fn delta_roundtrips_sorted() {
        for case in 0..CASES {
            let mut rng = Rng::seed_from_u64(0xB3 << 32 | case);
            let len = rng.gen_range(0usize..300);
            let mut vals: Vec<u64> = (0..len).map(|_| rng.next_u64() & 0xFFFF_FFFF).collect();
            vals.sort_unstable();
            let b = compress(&vals, Scheme::Delta).unwrap();
            assert_eq!(decompress(&b), vals, "case {case}");
        }
    }

    /// best_for always round-trips and never exceeds raw u64 size by
    /// more than the header.
    #[test]
    fn best_for_is_sound() {
        for case in 0..CASES {
            let mut rng = Rng::seed_from_u64(0xB4 << 32 | case);
            let len = rng.gen_range(1usize..300);
            let vals: Vec<u64> = (0..len).map(|_| rng.next_u64()).collect();
            let b = best_for(&vals);
            assert_eq!(decompress(&b), vals, "case {case}");
            assert!(b.wire_bytes() <= vals.len() as u64 * 8 + 64, "case {case}");
        }
    }
}
