//! Property tests: every relational operator agrees with an obviously
//! correct (naive) model implementation on random inputs, and the
//! substrate's invariants (sortedness, schema preservation) hold.

use kfusion_relalg::ops;
use kfusion_relalg::predicates;
use kfusion_relalg::{Column, Relation};
use proptest::prelude::*;
use std::collections::HashSet;

fn rel_keys(max_key: u64, max_len: usize) -> impl Strategy<Value = Relation> {
    proptest::collection::vec(0..max_key, 0..max_len).prop_map(Relation::from_keys)
}

fn sorted_rel(max_key: u64, max_len: usize) -> impl Strategy<Value = Relation> {
    proptest::collection::vec((0..max_key, -50i64..50), 0..max_len).prop_map(|mut rows| {
        rows.sort_by_key(|r| r.0);
        Relation::new(
            rows.iter().map(|r| r.0).collect(),
            vec![Column::I64(rows.iter().map(|r| r.1).collect())],
        )
        .unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// SELECT == the obvious filter.
    #[test]
    fn select_matches_filter(r in rel_keys(1000, 200), t in 0u64..1000) {
        let out = ops::select(&r, &predicates::key_lt(t)).unwrap();
        let expect: Vec<u64> = r.key.iter().copied().filter(|&k| k < t).collect();
        prop_assert_eq!(out.key, expect);
    }

    /// SELECT then SELECT == SELECT of the conjunction, and cardinality is
    /// monotonically non-increasing.
    #[test]
    fn select_chain_shrinks(r in rel_keys(1000, 200), t1 in 0u64..1000, t2 in 0u64..1000) {
        let (out, cards) = ops::select_chain_unfused(
            &r,
            &[predicates::key_lt(t1), predicates::key_lt(t2)],
        )
        .unwrap();
        prop_assert!(cards[0] >= cards[1]);
        let direct = ops::select(&r, &predicates::key_lt(t1.min(t2))).unwrap();
        prop_assert_eq!(out, direct);
    }

    /// Sort-merge JOIN == nested-loop join (as multisets of key pairs, in
    /// any order): compare sorted pair lists.
    #[test]
    fn join_matches_nested_loop(a in sorted_rel(40, 60), b in sorted_rel(40, 60)) {
        let out = ops::join(&a, &b).unwrap();
        let mut got: Vec<(u64, i64, i64)> = (0..out.len())
            .map(|i| {
                (
                    out.key[i],
                    out.cols[0].as_i64().unwrap()[i],
                    out.cols[1].as_i64().unwrap()[i],
                )
            })
            .collect();
        got.sort_unstable();
        let mut expect = Vec::new();
        for i in 0..a.len() {
            for j in 0..b.len() {
                if a.key[i] == b.key[j] {
                    expect.push((
                        a.key[i],
                        a.cols[0].as_i64().unwrap()[i],
                        b.cols[0].as_i64().unwrap()[j],
                    ));
                }
            }
        }
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// Semijoin + antijoin partition the left side.
    #[test]
    fn semi_plus_anti_partition(a in sorted_rel(50, 80), b in sorted_rel(50, 80)) {
        let semi = ops::semijoin(&a, &b).unwrap();
        let anti = ops::antijoin(&a, &b).unwrap();
        prop_assert_eq!(semi.len() + anti.len(), a.len());
        let b_keys: HashSet<u64> = b.key.iter().copied().collect();
        prop_assert!(semi.key.iter().all(|k| b_keys.contains(k)));
        prop_assert!(anti.key.iter().all(|k| !b_keys.contains(k)));
    }

    /// Set-operator algebra: |A∩B| + |A−B| == |A dedup|; union contains both.
    #[test]
    fn set_op_identities(a in rel_keys(30, 50), b in rel_keys(30, 50)) {
        let inter = ops::intersection(&a, &b).unwrap();
        let diff = ops::difference(&a, &b).unwrap();
        let uni = ops::union(&a, &b).unwrap();
        // difference keeps duplicates of a; intersection dedups — compare
        // against per-tuple membership instead of cardinality arithmetic.
        let b_set: HashSet<u64> = b.key.iter().copied().collect();
        let expect_diff: Vec<u64> =
            a.key.iter().copied().filter(|k| !b_set.contains(k)).collect();
        prop_assert_eq!(&diff.key, &expect_diff);
        let uni_set: HashSet<u64> = uni.key.iter().copied().collect();
        prop_assert!(a.key.iter().all(|k| uni_set.contains(k)));
        prop_assert!(b.key.iter().all(|k| uni_set.contains(k)));
        let a_set: HashSet<u64> = a.key.iter().copied().collect();
        prop_assert!(inter.key.iter().all(|k| a_set.contains(k) && b_set.contains(k)));
        // Union has no duplicate tuples (bare keys: no duplicate keys).
        prop_assert_eq!(uni_set.len(), uni.len());
    }

    /// SORT produces a sorted permutation; UNIQUE of it dedups.
    #[test]
    fn sort_then_unique(keys in proptest::collection::vec(0u64..100, 0..300)) {
        let r = Relation::from_keys(keys.clone());
        let sorted = ops::sort(&r, ops::SortBy::Key).unwrap();
        prop_assert!(sorted.is_key_sorted());
        let mut expect = keys.clone();
        expect.sort_unstable();
        prop_assert_eq!(&sorted.key, &expect);
        let uniq = ops::unique(&sorted).unwrap();
        expect.dedup();
        prop_assert_eq!(&uniq.key, &expect);
    }

    /// AGGREGATE sums match a HashMap fold.
    #[test]
    fn aggregate_matches_hashmap(r in sorted_rel(20, 150)) {
        let out = ops::aggregate_by_key(&r, &[ops::Agg::Sum(0), ops::Agg::Count]).unwrap();
        let mut expect: std::collections::BTreeMap<u64, (i64, i64)> = Default::default();
        for i in 0..r.len() {
            let e = expect.entry(r.key[i]).or_insert((0, 0));
            e.0 += r.cols[0].as_i64().unwrap()[i];
            e.1 += 1;
        }
        prop_assert_eq!(out.key.len(), expect.len());
        for (i, (k, (sum, count))) in expect.iter().enumerate() {
            prop_assert_eq!(out.key[i], *k);
            prop_assert_eq!(out.cols[0].as_i64().unwrap()[i], *sum);
            prop_assert_eq!(out.cols[1].as_i64().unwrap()[i], *count);
        }
    }

    /// PRODUCT cardinality and key structure.
    #[test]
    fn product_shape(a in rel_keys(100, 20), b in rel_keys(100, 20)) {
        let out = ops::product(&a, &b).unwrap();
        prop_assert_eq!(out.len(), a.len() * b.len());
        if !b.is_empty() {
            for (i, &k) in a.key.iter().enumerate() {
                prop_assert_eq!(out.key[i * b.len()], k);
            }
        }
    }

    /// column_join then project recovers both sides.
    #[test]
    fn column_join_roundtrip(rows in proptest::collection::vec((-50i64..50, -50i64..50), 1..50)) {
        let key: Vec<u64> = (0..rows.len() as u64).collect();
        let a = Relation::new(key.clone(), vec![Column::I64(rows.iter().map(|r| r.0).collect())]).unwrap();
        let b = Relation::new(key, vec![Column::I64(rows.iter().map(|r| r.1).collect())]).unwrap();
        let wide = ops::column_join(&a, &b).unwrap();
        prop_assert_eq!(ops::project(&wide, &[0]).unwrap(), a);
        prop_assert_eq!(ops::project(&wide, &[1]).unwrap(), b);
    }

    /// rekey moves values to keys; a subsequent sort groups them.
    #[test]
    fn rekey_then_sort_groups(vals in proptest::collection::vec(0i64..10, 1..100)) {
        let key: Vec<u64> = (0..vals.len() as u64).collect();
        let r = Relation::new(key, vec![Column::I64(vals.clone())]).unwrap();
        let rk = ops::rekey(&r, 0).unwrap();
        prop_assert_eq!(rk.n_cols(), 0);
        let sorted = ops::sort(&rk, ops::SortBy::Key).unwrap();
        prop_assert!(sorted.is_key_sorted());
        let mut expect: Vec<u64> = vals.iter().map(|&v| v as u64).collect();
        expect.sort_unstable();
        prop_assert_eq!(sorted.key, expect);
    }
}

mod compress_props {
    use kfusion_relalg::compress::{best_for, compress, decompress, Scheme};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]

        /// Bit packing round-trips arbitrary values.
        #[test]
        fn bitpack_roundtrips(vals in proptest::collection::vec(any::<u64>(), 0..300)) {
            let b = compress(&vals, Scheme::BitPack).unwrap();
            prop_assert_eq!(decompress(&b), vals);
        }

        /// RLE round-trips arbitrary values (runs or not).
        #[test]
        fn rle_roundtrips(vals in proptest::collection::vec(0u64..32, 0..400)) {
            let b = compress(&vals, Scheme::Rle).unwrap();
            prop_assert_eq!(decompress(&b), vals);
        }

        /// Delta round-trips any sorted input.
        #[test]
        fn delta_roundtrips_sorted(mut vals in proptest::collection::vec(any::<u32>(), 0..300)) {
            vals.sort_unstable();
            let vals: Vec<u64> = vals.into_iter().map(u64::from).collect();
            let b = compress(&vals, Scheme::Delta).unwrap();
            prop_assert_eq!(decompress(&b), vals);
        }

        /// best_for always round-trips and never exceeds raw u64 size by
        /// more than the header.
        #[test]
        fn best_for_is_sound(vals in proptest::collection::vec(any::<u64>(), 1..300)) {
            let b = best_for(&vals);
            prop_assert_eq!(decompress(&b), vals.clone());
            prop_assert!(b.wire_bytes() <= vals.len() as u64 * 8 + 64);
        }
    }
}
