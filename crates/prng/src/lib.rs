//! `kfusion-prng` — a tiny seeded pseudo-random number generator.
//!
//! Every workload in this repository is seeded so every figure regenerates
//! identically; the generator therefore needs to be *deterministic and
//! self-contained*, not cryptographic. This crate implements splitmix64
//! (Steele, Lea & Flood, OOPSLA'14 — the stream-splitting mix function also
//! used to seed xoshiro) with a `rand`-shaped surface (`seed_from_u64`,
//! `gen_range`, `gen_bool`) so workload-generation code reads as it would
//! against the `rand` crate, without an external dependency.
//!
//! Integer ranges are sampled with Lemire's multiply-shift reduction; the
//! bias is at most `len / 2^64`, irrelevant at test and figure scale.

use std::ops::{Range, RangeInclusive};

/// A seeded splitmix64 generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `u64` in `[0, n)`; `n` must be nonzero.
    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "empty sample range");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// A uniform sample from `range` (half-open or inclusive integer ranges,
    /// half-open `f64` ranges).
    ///
    /// # Panics
    /// If the range is empty.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// Range types [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform sample.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

impl SampleRange for Range<u64> {
    type Output = u64;
    fn sample(self, rng: &mut Rng) -> u64 {
        assert!(self.start < self.end, "empty range {self:?}");
        self.start + rng.below(self.end - self.start)
    }
}

impl SampleRange for Range<u32> {
    type Output = u32;
    fn sample(self, rng: &mut Rng) -> u32 {
        assert!(self.start < self.end, "empty range {self:?}");
        self.start + rng.below((self.end - self.start) as u64) as u32
    }
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut Rng) -> usize {
        assert!(self.start < self.end, "empty range {self:?}");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SampleRange for Range<i64> {
    type Output = i64;
    fn sample(self, rng: &mut Rng) -> i64 {
        assert!(self.start < self.end, "empty range {self:?}");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(rng.below(span) as i64)
    }
}

impl SampleRange for RangeInclusive<i64> {
    type Output = i64;
    fn sample(self, rng: &mut Rng) -> i64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = hi.wrapping_sub(lo) as u64;
        if span == u64::MAX {
            return rng.next_u64() as i64;
        }
        lo.wrapping_add(rng.below(span + 1) as i64)
    }
}

impl SampleRange for RangeInclusive<u64> {
    type Output = u64;
    fn sample(self, rng: &mut Rng) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = hi - lo;
        if span == u64::MAX {
            return rng.next_u64();
        }
        lo + rng.below(span + 1)
    }
}

// `i32` impls exist so unsuffixed integer-literal ranges (`gen_range(1..=7)`)
// resolve via the default integer type at call sites that never pin a width.
impl SampleRange for Range<i32> {
    type Output = i32;
    fn sample(self, rng: &mut Rng) -> i32 {
        assert!(self.start < self.end, "empty range {self:?}");
        let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
        (self.start as i64).wrapping_add(rng.below(span) as i64) as i32
    }
}

impl SampleRange for RangeInclusive<i32> {
    type Output = i32;
    fn sample(self, rng: &mut Rng) -> i32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = (hi as i64 - lo as i64) as u64;
        (lo as i64 + rng.below(span + 1) as i64) as i32
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "empty range {self:?}");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        let mut c = Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn splitmix64_reference_vector() {
        // Published splitmix64 outputs for seed 1234567.
        let mut r = Rng::seed_from_u64(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
        assert_eq!(r.next_u64(), 9817491932198370423);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::seed_from_u64(42);
        for _ in 0..10_000 {
            let u = r.gen_range(5u64..17);
            assert!((5..17).contains(&u));
            let i = r.gen_range(-50i64..50);
            assert!((-50..50).contains(&i));
            let ii = r.gen_range(1i64..=7);
            assert!((1..=7).contains(&ii));
            let f = r.gen_range(900.0..105000.0);
            assert!((900.0..105000.0).contains(&f));
            let s = r.gen_range(0usize..3);
            assert!(s < 3);
        }
    }

    #[test]
    fn uniformity_is_rough_but_real() {
        let mut r = Rng::seed_from_u64(1);
        let n = 100_000;
        let mut buckets = [0u32; 10];
        for _ in 0..n {
            buckets[r.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            let frac = b as f64 / n as f64;
            assert!((frac - 0.1).abs() < 0.01, "bucket fraction {frac}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Rng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "{frac}");
        let mut r = Rng::seed_from_u64(4);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn inclusive_extremes_do_not_overflow() {
        let mut r = Rng::seed_from_u64(9);
        let _ = r.gen_range(i64::MIN..=i64::MAX);
        let _ = r.gen_range(0u64..=u64::MAX);
        let _ = r.gen_range(i64::MAX - 1..i64::MAX);
    }
}
